//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the (small) subset of the `rand` 0.8 API that the workspace
//! actually uses: [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64.  It is
//! deterministic for a given seed, which is all the synthetic data generators
//! and property tests in this workspace rely on; it makes no attempt to match
//! the stream of the real `rand::rngs::StdRng`.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its "standard" distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A type that can be drawn from the standard distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that values of type `T` can be drawn from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % width;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % width;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + <$t as Standard>::sample_standard(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                start + <$t as Standard>::sample_standard(rng) * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// A generator that can be constructed from a seed, mirroring
/// `rand::SeedableRng` (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&w));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }
}
