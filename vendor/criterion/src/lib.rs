//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of the criterion API the benches in `crates/bench`
//! use: [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — a warm-up iteration followed by
//! `sample_size` timed iterations, reporting min/mean — with no statistical
//! analysis, plots, or saved baselines.  Benchmark *names and structure* are
//! identical to real criterion, so swapping the real crate back in requires no
//! changes to the benches.  A positional command-line argument filters
//! benchmarks by substring, mirroring `cargo bench -- <filter>`.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark-harness entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes the harness with flags such as `--bench`;
        // the first non-flag argument is a substring filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark named `name` parameterised by `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A benchmark identified by its parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        bencher.report(&full);
        self
    }

    /// Finishes the group (kept for API parity; reporting is per-benchmark).
    pub fn finish(self) {}
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `sample_size` executions of `routine` after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        self.samples = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(routine());
                start.elapsed()
            })
            .collect();
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{name:<48} mean {:>12?}  min {:>12?}  ({} samples)",
            mean,
            min,
            self.samples.len()
        );
    }
}

/// Bundles benchmark functions into a single group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates a `main` that runs the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}
