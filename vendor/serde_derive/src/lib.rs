//! No-op derive macros backing the vendored `serde` stub.
//!
//! Each derive accepts the `#[serde(…)]` helper attribute (so annotations like
//! `#[serde(skip)]` parse) and expands to nothing: the marker traits in the
//! stub `serde` crate have no methods, and nothing in the workspace serializes
//! values yet.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
