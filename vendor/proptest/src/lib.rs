//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest used by the workspace's property tests:
//! the [`proptest!`] macro (with optional `#![proptest_config(…)]`),
//! [`prop_assert!`]/[`prop_assert_eq!`], range and tuple strategies, and
//! [`collection::vec`]/[`collection::btree_set`].
//!
//! Inputs are drawn deterministically (the seed is derived from the test's
//! module path and name), so failures are reproducible run-to-run.  Unlike the
//! real proptest there is **no shrinking**: a failing case panics with the
//! case number so it can be re-run under a debugger.

#![warn(missing_docs)]

#[doc(hidden)]
pub use rand as __rand;

/// Test-runner configuration, mirroring `proptest::test_runner`.
pub mod test_runner {
    /// Configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test function.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases (other fields default).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// FNV-1a hash used to derive a stable per-test seed from its name.
    #[doc(hidden)]
    pub fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        h
    }
}

/// Input-generation strategies, mirroring `proptest::strategy`.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating random values of an associated type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from the strategy.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (
                self.0.sample(rng),
                self.1.sample(rng),
                self.2.sample(rng),
                self.3.sample(rng),
            )
        }
    }

    /// A strategy producing a fixed value, mirroring `proptest::strategy::Just`.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s with a random length drawn from a size range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, size)` — a `Vec<S::Value>` whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty size range for collection::vec");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with a random target size drawn from a range.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `btree_set(element, size)` — a `BTreeSet<S::Value>` with roughly
    /// `size`-many elements (duplicates drawn by the element strategy may make
    /// the set smaller, as in real proptest).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        assert!(
            !size.is_empty(),
            "empty size range for collection::btree_set"
        );
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let target = rng.gen_range(self.size.clone());
            (0..target).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// One-stop imports for property tests, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Property-test assertion; panics (failing the current case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, …) { … }` inside the
/// block becomes a `#[test]` that runs the body for `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config = $cfg;
            let __seed = $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let __run = || {
                    $crate::__proptest_bind!(__rng $($args)*);
                    $body
                };
                if let Err(payload) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (seed {:#x})",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __seed,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident) => {};
    ($rng:ident $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng $($rest)*);
    };
    ($rng:ident $arg:ident in $strat:expr) => {
        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
}
