//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io.  The workspace only uses
//! serde for `#[derive(Serialize, Deserialize)]` annotations (no code actually
//! serializes anything yet), so this vendored crate provides the two marker
//! traits and re-exports no-op derive macros that accept the full `#[serde(…)]`
//! attribute grammar and expand to nothing.
//!
//! When real serialization is needed (e.g. a wire format for a query service),
//! replace this stub with the actual `serde` crate — call sites will not have
//! to change.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
