//! # lcmsr
//!
//! A Rust implementation of **Length-Constrained Maximum-Sum Region (LCMSR)**
//! queries over road networks — a reproduction of *"Retrieving Regions of
//! Interest for User Exploration"* (Xin Cao, Gao Cong, Christian S. Jensen,
//! Man Lung Yiu; PVLDB 7(9): 733–744, 2014).
//!
//! Given a road network whose nodes host geo-textual objects (points of
//! interest with textual descriptions), an LCMSR query `⟨ψ, ∆, Λ⟩` finds the
//! connected subgraph inside the rectangle `Λ` whose total road length is at
//! most `∆` and whose objects are most relevant to the keywords `ψ` — the
//! "best neighbourhood to explore" for a user who wants to browse several
//! relevant places on foot.
//!
//! This crate is a facade over the workspace:
//!
//! * [`roadnet`] — road-network graph substrate (graph model, DIMACS reader,
//!   traversal, synthetic generators),
//! * [`geotext`] — geo-textual objects, TF–IDF scoring, grid index, inverted
//!   lists over a paged B⁺-tree,
//! * [`datagen`] — synthetic NY-like / USANW-like data sets and query workloads,
//! * [`core`] — the LCMSR algorithms: APP (5+ε approximation), TGEN, Greedy,
//!   their top-k variants, an exact reference solver and the MaxRS baseline,
//! * [`service`] — a concurrent HTTP serving subsystem: micro-batching
//!   scheduler over `run_batch`, hand-rolled JSON codec, `/healthz` and
//!   `/metrics`.
//!
//! # Quick start
//!
//! ```
//! use lcmsr::prelude::*;
//!
//! // Build a small synthetic city and index its points of interest.
//! let dataset = Dataset::build(DatasetConfig::tiny(42));
//! let engine = LcmsrEngine::new(&dataset.network, &dataset.collection);
//!
//! // Ask for a walkable region of restaurants.
//! let roi = dataset.network.bounding_rect().unwrap();
//! let query = LcmsrQuery::new(["restaurant"], 1_500.0, roi).unwrap();
//! let request = QueryRequest::new(&query, Algorithm::Tgen(TgenParams { alpha: 50.0 }));
//! let result = engine.execute(&request).unwrap().into_single();
//! if let Some(region) = result.region {
//!     assert!(region.length <= 1_500.0);
//!     assert!(region.weight > 0.0);
//! }
//! ```

pub use lcmsr_core as core;
pub use lcmsr_datagen as datagen;
pub use lcmsr_geotext as geotext;
pub use lcmsr_roadnet as roadnet;
pub use lcmsr_service as service;

/// One-stop re-exports for applications.
pub mod prelude {
    pub use lcmsr_core::prelude::*;
    pub use lcmsr_datagen::prelude::*;
    pub use lcmsr_geotext::prelude::*;
    pub use lcmsr_roadnet::prelude::*;
    // The wire DTO is aliased so the engine's `QueryRequest` — the primary
    // query surface since PR 6 — keeps the unqualified name.
    pub use lcmsr_service::{
        leak_engine, serve, BatchConfig, HttpClient, QueryRequest as WireQueryRequest,
        QueryResponse, ServiceConfig,
    };
}
