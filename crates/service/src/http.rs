//! A minimal HTTP/1.1 server on `std::net`: one acceptor thread feeding a
//! worker-thread pool through a condvar-signalled connection queue, with
//! keep-alive support and graceful shutdown.
//!
//! The server is deliberately small: `GET`/`POST`, `Content-Length` framing
//! only (no chunked transfer), byte-limited headers and bodies, and a
//! [`Handler`] trait the LCMSR service implements.  Anything malformed gets a
//! clean `400` and the connection closed — a bad client can cost the worker
//! one response, never a panic.

use crate::sync::{lock_or_recover, wait_or_recover};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Largest accepted request head (request line + headers), bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Connection-handling worker threads.
    pub http_workers: usize,
    /// Largest accepted request body, bytes; larger bodies get a `400`.
    pub max_body_bytes: usize,
    /// Per-read socket timeout.  A silent or idle connection releases its
    /// worker after this long instead of parking it forever — without it a
    /// handful of open-and-say-nothing clients would wedge the whole pool.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            http_workers: 8,
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method, upper-case (`GET`, `POST`, …).
    pub method: String,
    /// Request path, without the query string.
    pub path: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body.
    pub body: Vec<u8>,
    /// Whether the client asked to close the connection after this exchange.
    pub wants_close: bool,
}

impl HttpRequest {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, if it is valid.
    pub fn body_utf8(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Force-close the connection after sending.
    pub close: bool,
    /// Extra response headers (name, value), emitted verbatim after the
    /// standard ones.  Callers must pass CRLF-free values (the service layer
    /// only puts validated request ids here).
    pub headers: Vec<(String, String)>,
}

impl HttpResponse {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        HttpResponse {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            close: false,
            headers: Vec::new(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        HttpResponse {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            close: false,
            headers: Vec::new(),
        }
    }

    /// Attaches an extra response header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }

    fn write_to(&self, stream: &mut TcpStream, close: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            Self::reason(self.status),
            self.content_type,
            self.body.len()
        );
        // Fallback only: the service layer attaches a scheduler-derived
        // Retry-After estimate to shed responses; a bare 503 from anywhere
        // else still promises *some* retry hint rather than none.
        let has_retry_after = self
            .headers
            .iter()
            .any(|(name, _)| name.eq_ignore_ascii_case("retry-after"));
        if self.status == 503 && !has_retry_after {
            head.push_str("Retry-After: 1\r\n");
        }
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(if close {
            "Connection: close\r\n\r\n"
        } else {
            "Connection: keep-alive\r\n\r\n"
        });
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Request handler implemented by the service layer.
pub trait Handler: Send + Sync + 'static {
    /// Produces the response for one request.
    fn handle(&self, request: &HttpRequest) -> HttpResponse;
}

/// Reasons a request could not be parsed off the wire.
enum ReadOutcome {
    /// A complete request.
    Request(HttpRequest),
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The bytes on the wire were not a valid request; respond 400 and close.
    Malformed(String),
}

/// Result of reading one head line against the remaining byte budget.
enum HeadLine {
    /// A complete line is in the buffer.
    Line,
    /// Clean end of stream before any byte of this line.
    Eof,
    /// The line would exceed the head budget — stop before buffering it.
    TooLarge,
    /// The line is not UTF-8 text.
    NotText,
}

/// Reads one line, never buffering more than `budget + 1` bytes (the hard cap
/// a hostile client cannot push past by simply omitting newlines).
fn read_head_line(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    budget: &mut usize,
) -> std::io::Result<HeadLine> {
    line.clear();
    let mut limited = Read::by_ref(reader).take(*budget as u64 + 1);
    let read = match limited.read_line(line) {
        Ok(n) => n,
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => return Ok(HeadLine::NotText),
        Err(e) => return Err(e),
    };
    if read == 0 {
        return Ok(HeadLine::Eof);
    }
    if read > *budget {
        return Ok(HeadLine::TooLarge);
    }
    *budget -= read;
    Ok(HeadLine::Line)
}

fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body_bytes: usize,
) -> std::io::Result<ReadOutcome> {
    let mut line = String::new();
    let mut head_budget = MAX_HEAD_BYTES;
    match read_head_line(reader, &mut line, &mut head_budget)? {
        HeadLine::Eof => return Ok(ReadOutcome::Closed),
        HeadLine::TooLarge => return Ok(ReadOutcome::Malformed("request head too large".into())),
        HeadLine::NotText => return Ok(ReadOutcome::Malformed("request head is not text".into())),
        HeadLine::Line => {}
    }
    let request_line = line.trim_end().to_string();
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(ReadOutcome::Malformed("malformed request line".into()));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Ok(ReadOutcome::Malformed("malformed request line".into()));
    }
    let http10 = version == "HTTP/1.0";

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        match read_head_line(reader, &mut line, &mut head_budget)? {
            HeadLine::Eof => {
                return Ok(ReadOutcome::Malformed(
                    "connection closed mid-headers".into(),
                ))
            }
            HeadLine::TooLarge => {
                return Ok(ReadOutcome::Malformed("request head too large".into()))
            }
            HeadLine::NotText => {
                return Ok(ReadOutcome::Malformed("request head is not text".into()))
            }
            HeadLine::Line => {}
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Ok(ReadOutcome::Malformed("malformed header line".into()));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Ok(ReadOutcome::Malformed(
            "chunked transfer encoding is not supported".into(),
        ));
    }
    // Like Transfer-Encoding above, duplicate Content-Length headers are an
    // invitation to framing desync (request smuggling behind a proxy that
    // picks the other one) — reject rather than pick a winner.
    if headers
        .iter()
        .filter(|(k, _)| k == "content-length")
        .count()
        > 1
    {
        return Ok(ReadOutcome::Malformed(
            "duplicate Content-Length headers".into(),
        ));
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0usize,
        Some((_, v)) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Ok(ReadOutcome::Malformed("malformed Content-Length".into())),
        },
    };
    if content_length > max_body_bytes {
        return Ok(ReadOutcome::Malformed(format!(
            "request body of {content_length} bytes exceeds the {max_body_bytes}-byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    if let Err(e) = reader.read_exact(&mut body) {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            // A truncated body (client hung up or lied about Content-Length).
            return Ok(ReadOutcome::Malformed("truncated request body".into()));
        }
        return Err(e);
    }

    let connection = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let wants_close = match connection.as_deref() {
        Some("close") => true,
        Some("keep-alive") => false,
        _ => http10,
    };
    let path = target.split('?').next().unwrap_or(target).to_string();
    Ok(ReadOutcome::Request(HttpRequest {
        method: method.to_ascii_uppercase(),
        path,
        headers,
        body,
        wants_close,
    }))
}

#[derive(Debug)]
struct ServerShared {
    shutdown: AtomicBool,
    /// Accepted connections waiting for a worker, oldest first (FIFO).
    pending: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    /// `try_clone`d handles of live connections, shut down to unblock workers
    /// parked in `read` during graceful shutdown.
    open: Mutex<Vec<(u64, TcpStream)>>,
    next_conn_id: AtomicU64,
    max_body_bytes: usize,
    /// Cap on connections parked in `pending`; the acceptor drops beyond it.
    max_pending: usize,
    /// Per-read socket timeout applied to every accepted connection.
    read_timeout: Duration,
}

impl ServerShared {
    fn register(&self, stream: &TcpStream) -> u64 {
        let id = self.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            lock_or_recover(&self.open).push((id, clone));
        }
        // Close the register-vs-shutdown race: if shutdown swept the registry
        // before this connection appeared in it (the worker popped it from
        // `pending` just as shutdown began), unpark its reader ourselves so
        // the worker cannot block forever on a silent client.
        if self.shutdown.load(Ordering::SeqCst) {
            let _ = stream.shutdown(Shutdown::Read);
        }
        id
    }

    fn deregister(&self, id: u64) {
        lock_or_recover(&self.open).retain(|(conn_id, _)| *conn_id != id);
    }
}

/// A running HTTP server.
#[derive(Debug)]
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on (useful with `:0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Gracefully shuts down: stop accepting, unblock parked reads, let
    /// in-flight responses finish, join every thread.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    /// Blocks until the server stops (i.e. forever, for a foreground server
    /// that only dies with the process).
    pub fn wait(mut self) {
        // Join errors mean a thread panicked; the panic is already on stderr
        // and re-raising it here would only take the supervisor down too.
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    fn shutdown_in_place(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a wake-up connection to ourselves.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Never-served connections are dropped (reset), not handed to workers.
        lock_or_recover(&self.shared.pending).clear();
        // Unblock workers parked reading the next keep-alive request.  The
        // pending guard above is a temporary dropped at its statement's end,
        // so it cannot still be held when the open registry is locked here.
        // lcmsr-lint: allow(lock_nesting) — the pending guard dies at its own
        // statement; the two guards can never be held at the same time.
        for (_, stream) in lock_or_recover(&self.shared.open).iter() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.workers.is_empty() {
            self.shutdown_in_place();
        }
    }
}

/// Starts the server: binds, spawns the acceptor and `http_workers` workers.
// By-value by design: the caller hands over its share of the handler; a
// `&Arc` parameter would just move the clone to every call site.
#[allow(clippy::needless_pass_by_value)]
pub fn start(config: &ServerConfig, handler: Arc<dyn Handler>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let shared = Arc::new(ServerShared {
        shutdown: AtomicBool::new(false),
        pending: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        open: Mutex::new(Vec::new()),
        next_conn_id: AtomicU64::new(0),
        max_body_bytes: config.max_body_bytes,
        max_pending: (config.http_workers * 16).max(64),
        read_timeout: config.read_timeout,
    });

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("lcmsr-acceptor".into())
            .spawn(move || {
                for incoming in listener.incoming() {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = incoming else {
                        // Persistent accept failures (e.g. fd exhaustion
                        // under overload) must not busy-spin a core.
                        std::thread::sleep(Duration::from_millis(10));
                        continue;
                    };
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(Some(shared.read_timeout));
                    let mut pending = lock_or_recover(&shared.pending);
                    if pending.len() >= shared.max_pending {
                        // A connection flood: drop the newcomer (reset) rather
                        // than queueing unboundedly behind connections we can
                        // already not keep up with.
                        continue;
                    }
                    pending.push_back(stream);
                    drop(pending);
                    shared.available.notify_one();
                }
            })?
    };

    let workers = (0..config.http_workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            let handler = Arc::clone(&handler);
            std::thread::Builder::new()
                .name(format!("lcmsr-http-{i}"))
                .spawn(move || worker_loop(&shared, handler.as_ref()))
        })
        .collect::<std::io::Result<Vec<_>>>()?;

    Ok(ServerHandle {
        local_addr,
        shared,
        acceptor: Some(acceptor),
        workers,
    })
}

fn worker_loop(shared: &ServerShared, handler: &dyn Handler) {
    loop {
        let stream = {
            let mut pending = lock_or_recover(&shared.pending);
            loop {
                // FIFO: the connection waiting longest is served next.
                if let Some(stream) = pending.pop_front() {
                    break stream;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                pending = wait_or_recover(&shared.available, pending);
            }
        };
        handle_connection(shared, handler, stream);
        // The first pending guard was confined to the block that produced
        // `stream` and is long dead by the time this drain check re-locks.
        // lcmsr-lint: allow(lock_nesting) — re-acquisition after the first
        // guard's block closed; the two guards can never overlap.
        if shared.shutdown.load(Ordering::SeqCst) && lock_or_recover(&shared.pending).is_empty() {
            return;
        }
    }
}

fn handle_connection(shared: &ServerShared, handler: &dyn Handler, stream: TcpStream) {
    let conn_id = shared.register(&stream);
    let Ok(read_half) = stream.try_clone() else {
        shared.deregister(conn_id);
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut write_half = stream;
    loop {
        match read_request(&mut reader, shared.max_body_bytes) {
            Err(_) | Ok(ReadOutcome::Closed) => break,
            Ok(ReadOutcome::Malformed(message)) => {
                // A framing error: answer 400 and drop the connection (we can
                // no longer tell where the next request would start).
                let response = HttpResponse::json(
                    400,
                    crate::api::error_body(&format!("malformed request: {message}")),
                );
                let _ = response.write_to(&mut write_half, true);
                break;
            }
            Ok(ReadOutcome::Request(request)) => {
                let response = handler.handle(&request);
                let close =
                    response.close || request.wants_close || shared.shutdown.load(Ordering::SeqCst);
                if response.write_to(&mut write_half, close).is_err() || close {
                    break;
                }
            }
        }
    }
    shared.deregister(conn_id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;

    /// Echoes method, path and body length; `/close` forces connection close.
    struct EchoHandler;

    impl Handler for EchoHandler {
        fn handle(&self, request: &HttpRequest) -> HttpResponse {
            let mut response = HttpResponse::text(
                200,
                format!("{} {} {}", request.method, request.path, request.body.len()),
            );
            if request.path == "/close" {
                response.close = true;
            }
            response
        }
    }

    fn start_echo() -> ServerHandle {
        start(
            &ServerConfig {
                addr: "127.0.0.1:0".into(),
                http_workers: 2,
                max_body_bytes: 1024,
                ..ServerConfig::default()
            },
            Arc::new(EchoHandler),
        )
        .unwrap()
    }

    #[test]
    fn silent_connections_release_their_worker_after_the_read_timeout() {
        let server = start(
            &ServerConfig {
                addr: "127.0.0.1:0".into(),
                http_workers: 1,
                max_body_bytes: 1024,
                read_timeout: Duration::from_millis(150),
            },
            Arc::new(EchoHandler),
        )
        .unwrap();
        // A client that connects and says nothing: with only one worker this
        // would wedge the whole server if the timeout did not fire.
        let silent = TcpStream::connect(server.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(300));
        // The worker must be free again to serve a real client.
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let (status, _) = client.get("/after-timeout").unwrap();
        assert_eq!(status, 200);
        drop(silent);
        server.shutdown();
    }

    #[test]
    fn serves_requests_with_keep_alive() {
        let server = start_echo();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        for i in 0..3 {
            let (status, body) = client
                .post("/echo", &format!("body{i}"))
                .expect("keep-alive request");
            assert_eq!(status, 200);
            assert_eq!(body, "POST /echo 5");
        }
        let (status, body) = client.get("/plain?x=1").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "GET /plain 0", "query string is stripped from path");
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = start_echo();
        let addr = server.addr();
        std::thread::scope(|scope| {
            for t in 0..4 {
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).unwrap();
                    for i in 0..5 {
                        let (status, body) = client.post("/t", &format!("{t}:{i}")).unwrap();
                        assert_eq!(status, 200);
                        assert_eq!(body, "POST /t 3");
                    }
                });
            }
        });
        server.shutdown();
    }

    #[test]
    fn malformed_framing_gets_a_400_and_close() {
        let server = start_echo();
        // Not HTTP at all.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut response = String::new();
        BufReader::new(&stream)
            .read_to_string(&mut response)
            .unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");

        // Oversized body (limit is 1024 in the fixture).
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"POST /x HTTP/1.1\r\ncontent-length: 99999\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        BufReader::new(&stream)
            .read_to_string(&mut response)
            .unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("exceeds"), "{response}");

        // Truncated body: promised 10 bytes, sent 3, hung up.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc")
            .unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let mut response = String::new();
        BufReader::new(&stream)
            .read_to_string(&mut response)
            .unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");

        // Chunked transfer encoding is refused, not mis-framed.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        BufReader::new(&stream)
            .read_to_string(&mut response)
            .unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");

        // Duplicate Content-Length headers are a framing ambiguity → 400.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"POST /x HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 4\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        BufReader::new(&stream)
            .read_to_string(&mut response)
            .unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("duplicate Content-Length"), "{response}");

        // The server survives all of that.
        let mut client = HttpClient::connect(server.addr()).unwrap();
        assert_eq!(client.get("/alive").unwrap().0, 200);
        server.shutdown();
    }

    #[test]
    fn oversized_request_heads_are_bounded_not_buffered() {
        let server = start_echo();

        // A request line longer than MAX_HEAD_BYTES with no newline at all:
        // the server must answer 400 after the budget, not buffer forever.
        // Payloads are sized to exactly what the server will read, so its
        // close sends a clean FIN (no unread bytes → no RST eating the 400).
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let prefix = b"GET /";
        let filler = vec![b'a'; MAX_HEAD_BYTES + 1 - prefix.len()];
        stream.write_all(prefix).unwrap();
        stream.write_all(&filler).unwrap();
        let mut response = String::new();
        BufReader::new(&stream)
            .read_to_string(&mut response)
            .unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("head too large"), "{response}");

        // A single giant header line trips the same cumulative budget.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let request_line = b"GET /x HTTP/1.1\r\n";
        let header_prefix = b"x-big: ";
        let remaining = MAX_HEAD_BYTES - request_line.len();
        let filler = vec![b'b'; remaining + 1 - header_prefix.len()];
        stream.write_all(request_line).unwrap();
        stream.write_all(header_prefix).unwrap();
        stream.write_all(&filler).unwrap();
        let mut response = String::new();
        BufReader::new(&stream)
            .read_to_string(&mut response)
            .unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("head too large"), "{response}");

        // Non-UTF-8 head bytes get a clean 400 too (the line is consumed in
        // full through its newline, so the close is again a clean FIN).
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"GET /\xff\xfe\xfd HTTP/1.1\r\n").unwrap();
        let mut response = String::new();
        BufReader::new(&stream)
            .read_to_string(&mut response)
            .unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("not text"), "{response}");

        // And the server still serves.
        let mut client = HttpClient::connect(server.addr()).unwrap();
        assert_eq!(client.get("/alive").unwrap().0, 200);
        server.shutdown();
    }

    #[test]
    fn graceful_shutdown_unblocks_idle_keep_alive_connections() {
        let server = start_echo();
        let addr = server.addr();
        // An idle keep-alive connection parks a worker in read.
        let mut idle = HttpClient::connect(addr).unwrap();
        assert_eq!(idle.get("/x").unwrap().0, 200);
        let start = std::time::Instant::now();
        server.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "shutdown must not wait for idle connections"
        );
        // New connections are refused (or reset) after shutdown.
        assert!(
            HttpClient::connect(addr).is_err() || {
                let mut c = HttpClient::connect(addr).unwrap();
                c.get("/x").is_err()
            }
        );
    }

    /// Sheds everything: `/estimated` carries an explicit Retry-After, the
    /// other routes rely on the bare-503 fallback.
    struct ShedHandler;

    impl Handler for ShedHandler {
        fn handle(&self, request: &HttpRequest) -> HttpResponse {
            let response = HttpResponse::text(503, "shed");
            if request.path == "/estimated" {
                response.with_header("Retry-After", "7")
            } else {
                response
            }
        }
    }

    #[test]
    fn explicit_retry_after_suppresses_the_fallback() {
        let server = start(
            &ServerConfig {
                addr: "127.0.0.1:0".into(),
                http_workers: 1,
                ..ServerConfig::default()
            },
            Arc::new(ShedHandler),
        )
        .unwrap();
        let raw_503 = |path: &str| {
            let mut stream = TcpStream::connect(server.addr()).unwrap();
            stream
                .write_all(format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes())
                .unwrap();
            let mut response = String::new();
            BufReader::new(&stream)
                .read_to_string(&mut response)
                .unwrap();
            response
        };
        // An explicit estimate travels alone — no duplicate fallback header.
        let estimated = raw_503("/estimated");
        assert!(estimated.contains("Retry-After: 7\r\n"), "{estimated}");
        assert_eq!(
            estimated
                .to_ascii_lowercase()
                .matches("retry-after")
                .count(),
            1,
            "{estimated}"
        );
        // A bare 503 still promises the 1 s fallback.
        let bare = raw_503("/bare");
        assert!(bare.contains("Retry-After: 1\r\n"), "{bare}");
        server.shutdown();
    }

    #[test]
    fn http_response_reasons_cover_service_statuses() {
        for (status, reason) in [
            (200, "OK"),
            (400, "Bad Request"),
            (404, "Not Found"),
            (405, "Method Not Allowed"),
            (500, "Internal Server Error"),
            (503, "Service Unavailable"),
            (418, "Response"),
        ] {
            assert_eq!(HttpResponse::reason(status), reason);
        }
    }
}
