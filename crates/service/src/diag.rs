//! Per-query diagnostics: request-id propagation, a ring of recently
//! completed query traces, and the slow-query log.
//!
//! Every request gets an id — the client's `X-Request-Id` header when it
//! sends a well-formed one, a generated `q`-prefixed id otherwise — and the
//! id is echoed on the response, stamped on slow-query log lines, and carried
//! by every retained trace so a client can correlate its own request with
//! what `/debug/trace/recent` and `/debug/slow` show.
//!
//! Retention is two fixed-size rings of [`CompletedTrace`]s behind per-slot
//! `try_lock`s: a writer that loses the race for a slot drops its trace
//! instead of blocking the query path, and `/debug` readers only ever clone
//! `Arc`s out of the slots.  Which queries are retained is decided by
//! [`DiagnosticsConfig`]: every query at least `slow_ms` slow enters the slow
//! ring (and logs one stderr line), and 1-in-`trace_sample` queries run with
//! span tracing enabled and enter the recent ring.

use crate::json::Json;
use lcmsr_core::trace::{QueryTrace, SpanRecord};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Longest accepted client-sent `X-Request-Id`.
pub const MAX_REQUEST_ID_LEN: usize = 64;

/// The response/request header carrying the request id.
pub const REQUEST_ID_HEADER: &str = "x-request-id";

/// Whether a client-sent request id is acceptable: 1..=64 characters from
/// `[A-Za-z0-9_-]`.  Anything else is replaced by a generated id rather than
/// echoed back (an unconstrained header would let a client inject arbitrary
/// bytes into log lines and response headers).
pub fn valid_request_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_REQUEST_ID_LEN
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

/// Generates process-unique request ids without touching any clock: a
/// Weyl-sequence counter (odd increment) bit-mixed so consecutive ids do not
/// look sequential, formatted as `q` + 16 hex digits.
#[derive(Debug, Default)]
pub struct RequestIdGen {
    counter: AtomicU64,
}

impl RequestIdGen {
    /// Creates a generator starting at its fixed seed.
    pub fn new() -> Self {
        Self::default()
    }

    /// The next request id.
    pub fn next_id(&self) -> String {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        // splitmix64's finalizer: a bijection, so ids never collide before
        // the counter itself wraps.
        let mut z = n.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        format!("q{z:016x}")
    }
}

/// One finished query retained for diagnostics.
#[derive(Debug, Clone)]
pub struct CompletedTrace {
    /// The request id (client-sent or generated).
    pub request_id: String,
    /// Algorithm name from the run's stats.
    pub algorithm: String,
    /// End-to-end service latency (decode → response ready), nanoseconds.
    pub elapsed_ns: u64,
    /// Scheduler queue wait, nanoseconds.
    pub queue_ns: u64,
    /// Whether the answer was a best-so-far partial result.
    pub partial: bool,
    /// Whether the query met the slow threshold.
    pub slow: bool,
    /// The span tree, when the query ran with tracing enabled.
    pub trace: Option<QueryTrace>,
}

impl CompletedTrace {
    /// Renders the record as JSON, the span tree nested under `"spans"`.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("request_id".into(), Json::String(self.request_id.clone())),
            ("algorithm".into(), Json::String(self.algorithm.clone())),
            ("elapsed_ns".into(), Json::Number(self.elapsed_ns as f64)),
            ("queue_ns".into(), Json::Number(self.queue_ns as f64)),
            ("partial".into(), Json::Bool(self.partial)),
            ("slow".into(), Json::Bool(self.slow)),
        ];
        if let Some(trace) = &self.trace {
            fields.push(("dropped_spans".into(), Json::Number(trace.dropped as f64)));
            fields.push(("spans".into(), span_forest(trace)));
        }
        Json::Object(fields)
    }
}

/// Renders a trace's root spans (children nested recursively).
fn span_forest(trace: &QueryTrace) -> Json {
    let roots: Vec<u32> = (0..trace.spans.len() as u32)
        .filter(|&i| trace.spans[i as usize].parent == SpanRecord::ROOT)
        .collect();
    Json::Array(roots.iter().map(|&i| span_node(trace, i)).collect())
}

/// Renders one span with its attributes and nested children.
fn span_node(trace: &QueryTrace, index: u32) -> Json {
    let span = &trace.spans[index as usize];
    let mut fields = vec![
        ("label".into(), Json::String(span.label.into())),
        ("start_ns".into(), Json::Number(span.start_ns as f64)),
        (
            "duration_ns".into(),
            Json::Number(span.duration_ns() as f64),
        ),
    ];
    let attrs: Vec<(String, Json)> = trace
        .attrs_of(index)
        .map(|(key, value)| (key.to_string(), Json::Number(value as f64)))
        .collect();
    if !attrs.is_empty() {
        fields.push(("attrs".into(), Json::Object(attrs)));
    }
    let children: Vec<Json> = trace
        .children_of(index)
        .map(|child| span_node(trace, child))
        .collect();
    if !children.is_empty() {
        fields.push(("children".into(), Json::Array(children)));
    }
    Json::Object(fields)
}

/// A fixed-size ring of completed traces: per-slot `try_lock` writes that
/// never block the query path, `Arc` clones out for readers.
#[derive(Debug)]
pub struct TraceRing {
    slots: Vec<Mutex<Option<Arc<CompletedTrace>>>>,
    cursor: AtomicUsize,
}

impl TraceRing {
    /// Creates a ring holding up to `capacity` traces (at least 1).
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Inserts a trace, overwriting the oldest slot.  A slot contended by a
    /// concurrent reader or writer drops the trace instead of blocking.
    pub fn push(&self, trace: Arc<CompletedTrace>) {
        let index = self.cursor.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        if let Ok(mut slot) = self.slots[index].try_lock() {
            *slot = Some(trace);
        }
    }

    /// The retained traces, newest first.
    pub fn snapshot(&self) -> Vec<Arc<CompletedTrace>> {
        let len = self.slots.len();
        let next = self.cursor.load(Ordering::Relaxed);
        let mut out = Vec::with_capacity(len);
        // Walk backwards from the most recently written slot.
        for back in 1..=len {
            let index = (next + len - back) % len;
            if let Ok(slot) = self.slots[index].try_lock() {
                if let Some(trace) = slot.as_ref() {
                    out.push(Arc::clone(trace));
                }
            }
        }
        out
    }
}

/// Diagnostics knobs carried by the service configuration.
#[derive(Debug, Clone)]
pub struct DiagnosticsConfig {
    /// Queries at least this slow always enter the slow ring and log one
    /// stderr line.  `0` disables the slow-query log.
    pub slow_ms: u64,
    /// Span tracing runs on 1-in-`trace_sample` queries (1 = every query,
    /// 0 = never).  Sampled traces land in the recent ring.
    pub trace_sample: u64,
    /// Capacity of the recent-traces ring.
    pub recent_capacity: usize,
    /// Capacity of the slow-query ring.
    pub slow_capacity: usize,
}

impl Default for DiagnosticsConfig {
    fn default() -> Self {
        DiagnosticsConfig {
            slow_ms: 500,
            trace_sample: 16,
            recent_capacity: 32,
            slow_capacity: 32,
        }
    }
}

/// The service's diagnostics state: id generation, sampling, both rings.
#[derive(Debug)]
pub struct Diagnostics {
    config: DiagnosticsConfig,
    ids: RequestIdGen,
    sample_counter: AtomicU64,
    /// Recently completed traced queries, newest first on read.
    pub recent: TraceRing,
    /// Recently completed slow queries, newest first on read.
    pub slow: TraceRing,
}

impl Diagnostics {
    /// Creates diagnostics state from its configuration.
    pub fn new(config: DiagnosticsConfig) -> Self {
        let recent = TraceRing::new(config.recent_capacity);
        let slow = TraceRing::new(config.slow_capacity);
        Diagnostics {
            config,
            ids: RequestIdGen::new(),
            sample_counter: AtomicU64::new(0),
            recent,
            slow,
        }
    }

    /// The configuration this state was built from.
    pub fn config(&self) -> &DiagnosticsConfig {
        &self.config
    }

    /// Resolves the request id: the client's header value when well-formed,
    /// a generated id otherwise.
    pub fn resolve_request_id(&self, client_sent: Option<&str>) -> String {
        match client_sent {
            Some(id) if valid_request_id(id) => id.to_string(),
            _ => self.ids.next_id(),
        }
    }

    /// Whether the next query should run with span tracing enabled
    /// (1-in-`trace_sample` round-robin; 0 disables sampling).
    pub fn should_trace(&self) -> bool {
        let every = self.config.trace_sample;
        if every == 0 {
            return false;
        }
        self.sample_counter.fetch_add(1, Ordering::Relaxed) % every == 0
    }

    /// The slow threshold, `None` when the slow-query log is disabled.
    pub fn slow_threshold(&self) -> Option<Duration> {
        (self.config.slow_ms > 0).then(|| Duration::from_millis(self.config.slow_ms))
    }

    /// Folds one finished query into the rings and the slow-query log.
    /// Returns the retained record when anything kept it.
    pub fn observe(
        &self,
        request_id: &str,
        algorithm: &str,
        elapsed: Duration,
        queue_time: Duration,
        partial: bool,
        trace: Option<QueryTrace>,
    ) -> Option<Arc<CompletedTrace>> {
        let slow = self
            .slow_threshold()
            .is_some_and(|threshold| elapsed >= threshold);
        let traced = trace.is_some();
        if !slow && !traced {
            return None;
        }
        let completed = Arc::new(CompletedTrace {
            request_id: request_id.to_string(),
            algorithm: algorithm.to_string(),
            elapsed_ns: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            queue_ns: u64::try_from(queue_time.as_nanos()).unwrap_or(u64::MAX),
            partial,
            slow,
            trace,
        });
        if traced {
            self.recent.push(Arc::clone(&completed));
        }
        if slow {
            self.slow.push(Arc::clone(&completed));
            eprintln!(
                "slow query: request_id={request_id} algorithm={algorithm} \
                 elapsed_ms={:.2} queue_ms={:.2} partial={partial} traced={traced}",
                elapsed.as_secs_f64() * 1_000.0,
                queue_time.as_secs_f64() * 1_000.0,
            );
        }
        Some(completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmsr_core::trace::TraceCollector;

    #[test]
    fn request_id_validation() {
        assert!(valid_request_id("abc-DEF_123"));
        assert!(valid_request_id("q0123456789abcdef"));
        assert!(!valid_request_id(""));
        assert!(!valid_request_id("has space"));
        assert!(!valid_request_id("semi;colon"));
        assert!(!valid_request_id("new\nline"));
        assert!(!valid_request_id(&"x".repeat(MAX_REQUEST_ID_LEN + 1)));
        assert!(valid_request_id(&"x".repeat(MAX_REQUEST_ID_LEN)));
    }

    #[test]
    fn generated_ids_are_unique_and_well_formed() {
        let ids = RequestIdGen::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = ids.next_id();
            assert!(valid_request_id(&id), "{id}");
            assert!(id.starts_with('q') && id.len() == 17, "{id}");
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn ring_retains_newest_first_and_overwrites_oldest() {
        let ring = TraceRing::new(3);
        let mk = |n: u64| {
            Arc::new(CompletedTrace {
                request_id: format!("r{n}"),
                algorithm: "TGEN".into(),
                elapsed_ns: n,
                queue_ns: 0,
                partial: false,
                slow: false,
                trace: None,
            })
        };
        assert!(ring.snapshot().is_empty());
        for n in 0..5 {
            ring.push(mk(n));
        }
        let kept: Vec<u64> = ring.snapshot().iter().map(|t| t.elapsed_ns).collect();
        assert_eq!(kept, vec![4, 3, 2], "newest first, oldest overwritten");
    }

    #[test]
    fn sampling_hits_one_in_n() {
        let diag = Diagnostics::new(DiagnosticsConfig {
            trace_sample: 4,
            ..DiagnosticsConfig::default()
        });
        let hits = (0..16).filter(|_| diag.should_trace()).count();
        assert_eq!(hits, 4);
        let never = Diagnostics::new(DiagnosticsConfig {
            trace_sample: 0,
            ..DiagnosticsConfig::default()
        });
        assert!((0..16).all(|_| !never.should_trace()));
        let always = Diagnostics::new(DiagnosticsConfig {
            trace_sample: 1,
            ..DiagnosticsConfig::default()
        });
        assert!((0..16).all(|_| always.should_trace()));
    }

    #[test]
    fn observe_routes_slow_and_traced_queries() {
        let diag = Diagnostics::new(DiagnosticsConfig {
            slow_ms: 100,
            trace_sample: 1,
            ..DiagnosticsConfig::default()
        });
        // Fast and untraced: dropped.
        assert!(diag
            .observe(
                "a",
                "TGEN",
                Duration::from_millis(1),
                Duration::ZERO,
                false,
                None
            )
            .is_none());
        // Fast but traced: recent ring only.
        let mut tracer = TraceCollector::disabled();
        tracer.begin(true);
        let span = tracer.start("query");
        tracer.end(span);
        let trace = tracer.finish();
        assert!(trace.is_some());
        diag.observe(
            "b",
            "TGEN",
            Duration::from_millis(1),
            Duration::ZERO,
            false,
            trace,
        );
        // Slow and untraced: slow ring only.
        diag.observe(
            "c",
            "Exact",
            Duration::from_millis(250),
            Duration::from_millis(3),
            true,
            None,
        );
        let recent: Vec<String> = diag
            .recent
            .snapshot()
            .iter()
            .map(|t| t.request_id.clone())
            .collect();
        assert_eq!(recent, vec!["b".to_string()]);
        let slow = diag.slow.snapshot();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].request_id, "c");
        assert!(slow[0].slow);
        assert!(slow[0].partial);
        assert!(slow[0].trace.is_none());
    }

    #[test]
    fn completed_trace_renders_nested_spans() {
        let mut tracer = TraceCollector::disabled();
        tracer.begin(true);
        let root = tracer.start("query");
        let prepare = tracer.start("prepare");
        let score = tracer.start("grid_score");
        tracer.end(score);
        tracer.end_with(prepare, &[("nodes", 25)]);
        tracer.end(root);
        let trace = tracer.finish().inspect(|t| {
            assert!(t.validate().is_ok());
        });
        let record = CompletedTrace {
            request_id: "req-1".into(),
            algorithm: "APP".into(),
            elapsed_ns: 1_000,
            queue_ns: 10,
            partial: false,
            slow: true,
            trace,
        };
        let body = record.to_json().encode();
        assert!(body.contains("\"request_id\":\"req-1\""), "{body}");
        assert!(body.contains("\"label\":\"query\""), "{body}");
        assert!(body.contains("\"label\":\"prepare\""), "{body}");
        assert!(body.contains("\"label\":\"grid_score\""), "{body}");
        assert!(body.contains("\"nodes\":25"), "{body}");
        // grid_score nests inside prepare which nests inside query.
        let query_at = body.find("\"label\":\"query\"").unwrap();
        let prepare_at = body.find("\"label\":\"prepare\"").unwrap();
        let score_at = body.find("\"label\":\"grid_score\"").unwrap();
        assert!(query_at < prepare_at && prepare_at < score_at);
    }
}
