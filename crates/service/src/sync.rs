//! Poison-tolerant synchronization helpers for the serving path.
//!
//! `std`'s lock APIs return `Err` when another thread panicked while holding
//! the lock.  In a server that error is not actionable at the call site —
//! aborting the request (or the whole worker) over someone *else's* panic
//! just amplifies the failure — so serving code recovers the guard and
//! carries on.  Every state these locks protect is safe to observe after an
//! interrupted critical section: queues of owned jobs/connections, `Option`
//! slots, and join-handle registries, none of which have multi-step
//! invariants that a panic could leave half-applied.
//!
//! Centralizing the recovery here also keeps the `panic_free` lint rule
//! meaningful: the serving crates contain no `.lock().expect(…)` at all, and
//! `lcmsr-lint`'s `lock_nesting` rule counts calls to these helpers exactly
//! like raw `.lock()` calls, so routing through them never hides a
//! double-acquisition from the audit.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Acquires `mutex`, recovering the guard if a panicking thread poisoned it.
pub(crate) fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`], recovering the guard on poison.
pub(crate) fn wait_or_recover<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`], recovering the guard on poison.
pub(crate) fn wait_timeout_or_recover<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    condvar
        .wait_timeout(guard, timeout)
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn lock_or_recover_survives_poison() {
        let mutex = Arc::new(Mutex::new(7_u32));
        let poisoner = Arc::clone(&mutex);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(mutex.lock().is_err(), "the lock should be poisoned");
        assert_eq!(*lock_or_recover(&mutex), 7);
    }

    #[test]
    fn wait_timeout_or_recover_times_out() {
        let mutex = Mutex::new(());
        let condvar = Condvar::new();
        let guard = lock_or_recover(&mutex);
        let (_guard, timeout) = wait_timeout_or_recover(&condvar, guard, Duration::from_millis(1));
        assert!(timeout.timed_out());
    }
}
