//! # lcmsr-service
//!
//! A concurrent query-serving subsystem for the LCMSR engine: the paper
//! frames region-of-interest retrieval as an *interactive* primitive — many
//! users issue queries against one shared road network and expect sub-second
//! answers — and this crate is the front-end that carries
//! [`lcmsr_core::engine::LcmsrEngine`] from a library to a service.
//!
//! Everything is hand-rolled on `std::net` (the build environment has no
//! crates.io access):
//!
//! * [`http`] — a minimal HTTP/1.1 listener: acceptor thread + worker pool,
//!   keep-alive, byte limits, graceful shutdown;
//! * [`json`] — a JSON codec (encoder + recursive-descent decoder with a
//!   nesting cap) whose `f64` round-trip is bit-exact;
//! * [`api`] — the wire types: query requests (`algorithm`, `keywords`,
//!   `rect`, `budget`, optional `k`) and region responses with full
//!   [`lcmsr_core::stats::RunStats`] including queue wait;
//! * [`scheduler`] — the heart: a **micro-batching scheduler** with two
//!   priority lanes (interactive preempts batch).  Requests park on a
//!   bounded queue; a dispatcher drains up to `max_batch` of them (or
//!   whatever accumulated within `max_delay` of the oldest), groups by
//!   algorithm, and fans each group through `execute_batch_with` on the
//!   shared engine, completing requests via per-request condvar slots.  A
//!   full queue sheds new requests with `503`, and a request whose
//!   `deadline_ms` is already blown — or predicted to be blown by queue
//!   wait — is shed up front with `503` + `Retry-After` instead of burning
//!   engine time; deadlines that expire mid-solve yield the solver's
//!   best-so-far answer with `"partial": true`;
//! * [`metrics`] — atomically-maintained counters and a fixed-bucket latency
//!   histogram behind `/metrics`, plus `/healthz`;
//! * [`client`] — a tiny blocking client for tests, smoke checks and the
//!   closed-loop throughput benchmark;
//! * [`diag`] — per-query diagnostics: `X-Request-Id` propagation, rings of
//!   recently completed and slow query traces behind `/debug/trace/recent`
//!   and `/debug/slow`, and the sampled slow-query log.
//!
//! ## Starting a server
//!
//! ```no_run
//! use lcmsr_datagen::prelude::*;
//! use lcmsr_service::{leak_engine, serve, ServiceConfig};
//!
//! let dataset = Dataset::build(DatasetConfig::tiny(42));
//! let engine = leak_engine(dataset.network, dataset.collection);
//! let handle = serve(engine, ServiceConfig::default()).unwrap();
//! println!("listening on http://{}", handle.addr());
//! handle.wait();
//! ```
//!
//! The engine must be `'static` because handler threads outlive any stack
//! frame; [`leak_engine`] trades one permanent allocation for that (a server
//! holds its dataset for the process lifetime anyway).

#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod diag;
pub mod http;
pub mod json;
pub mod metrics;
pub mod scheduler;
pub mod service;
mod sync;

pub use api::{QueryRequest, QueryResponse, RegionDto, StatsDto};
pub use client::{ClientResponse, HttpClient};
pub use diag::{Diagnostics, DiagnosticsConfig};
pub use metrics::ServiceMetrics;
pub use scheduler::{BatchConfig, JobKind, Scheduler};
pub use service::{serve, ServiceConfig, ServiceHandle};

use lcmsr_core::engine::LcmsrEngine;
use lcmsr_geotext::collection::ObjectCollection;
use lcmsr_roadnet::graph::RoadNetwork;

/// Leaks a network and collection to obtain a process-lifetime engine for
/// serving.
///
/// `LcmsrEngine` borrows its dataset; service threads need `'static`
/// references.  A server owns its dataset until the process exits, so leaking
/// the two allocations (plus the engine itself) is the honest way to express
/// that without `unsafe` (which the workspace denies) or reworking the
/// engine's borrow-based API that every solver test depends on.
pub fn leak_engine(
    network: RoadNetwork,
    collection: ObjectCollection,
) -> &'static LcmsrEngine<'static> {
    let network: &'static RoadNetwork = Box::leak(Box::new(network));
    let collection: &'static ObjectCollection = Box::leak(Box::new(collection));
    Box::leak(Box::new(LcmsrEngine::new(network, collection)))
}
