//! The service's wire types: query requests and region responses.
//!
//! A request is a JSON object
//!
//! ```json
//! {
//!   "algorithm": "tgen",            // "app" | "tgen" | "greedy" | "exact"
//!   "keywords": ["restaurant"],
//!   "rect": [min_x, min_y, max_x, max_y],
//!   "budget": 1500.0,               // the length constraint Q.∆, metres
//!   "k": 3,                         // optional: top-k instead of single-best
//!   "alpha": 1.0,                   // optional: APP/TGEN scaling override
//!   "beta": 0.1,                    // optional: APP binary-search override
//!   "mu": 0.2,                      // optional: Greedy trade-off override
//!   "deadline_ms": 50,              // optional: anytime-answer deadline
//!   "priority": "interactive",      // optional: "interactive" | "batch" lane
//!   "cache": true                   // optional: response cache + sessions
//! }
//! ```
//!
//! `cache` opts a query in or out of the engine's response cache and
//! incremental re-query sessions; unset, it defaults to **on** for the
//! interactive lane and off for the batch lane.  Cache replays are
//! byte-identical to cold runs, so the knob never changes an answer — only
//! `stats.cache_hit` / `stats.delta_prepare` reveal which path ran.
//!
//! `rect` corners are order-normalized at admission (swapped corners denote
//! the same rectangle), while non-finite or zero-area rectangles are
//! rejected.
//!
//! `deadline_ms` starts counting when the service decodes the request, so
//! queue wait spends the same budget the solver does.  A response produced
//! under an expired deadline carries the solver's best-so-far region with
//! `"partial": true` and a `"partial_cause"` of `"deadline_exceeded"`; a
//! request whose deadline cannot even survive the predicted queue wait is
//! shed up front with `503` + `Retry-After`.
//!
//! and a response carries the regions (one for a single query, up to `k` for
//! top-k) plus [`RunStats`] including the scheduler's queue wait:
//!
//! ```json
//! {"regions": [{"nodes": [...], "edges": [...], "length": ..., "weight": ...,
//!               "scaled_weight": ...}],
//!  "stats": {"algorithm": "TGEN", "elapsed_ns": ..., "prepare_ns": ...,
//!            "grid_score_ns": ..., "graph_build_ns": ...,
//!            "solve_ns": ..., "queue_ns": ..., ...}}
//! ```
//!
//! Durations travel as integer nanoseconds and floats print in Rust's
//! shortest-round-trip form, so a response decodes back to bit-identical
//! measures — the end-to-end tests compare served responses against direct
//! [`lcmsr_core::engine::LcmsrEngine::run`] calls with `==`.

use crate::json::{parse, Json, JsonError};
use lcmsr_core::engine::{QueryResult, TopKResult};
use lcmsr_core::prelude::*;
use lcmsr_core::{AppParams, GreedyParams, TgenParams};
use lcmsr_roadnet::edge::EdgeId;
use lcmsr_roadnet::geo::Rect;
use lcmsr_roadnet::node::NodeId;
use std::time::Duration;

/// Largest `k` a top-k request may ask for.
pub const MAX_TOPK: usize = 64;

/// A malformed or invalid request body.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiError {
    /// Human-readable description, returned in the `400` body.
    pub message: String,
}

impl ApiError {
    fn new(message: impl Into<String>) -> Self {
        ApiError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ApiError {}

impl From<JsonError> for ApiError {
    fn from(e: JsonError) -> Self {
        ApiError::new(e.to_string())
    }
}

/// A decoded query request.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Algorithm name: `app`, `tgen`, `greedy` or `exact` (case-insensitive).
    pub algorithm: String,
    /// Query keywords `Q.ψ`.
    pub keywords: Vec<String>,
    /// Region of interest `Q.Λ`.
    pub rect: Rect,
    /// Length constraint `Q.∆` in metres.
    pub budget: f64,
    /// `Some(k)` for a top-k query, `None` for single-best.
    pub k: Option<usize>,
    /// Optional scaling override (APP and TGEN).
    pub alpha: Option<f64>,
    /// Optional binary-search override (APP).
    pub beta: Option<f64>,
    /// Optional trade-off override (Greedy).
    pub mu: Option<f64>,
    /// Optional anytime-answer deadline in milliseconds, counted from the
    /// moment the service decodes the request.
    pub deadline_ms: Option<u64>,
    /// Optional scheduling lane: `"interactive"` (default) or `"batch"`.
    pub priority: Option<String>,
    /// Optional response-cache opt-in/out; unset defaults to the lane's
    /// policy (on for interactive, off for batch).
    pub cache: Option<bool>,
}

fn field_f64(obj: &Json, key: &str) -> Result<f64, ApiError> {
    obj.get(key)
        .ok_or_else(|| ApiError::new(format!("missing field \"{key}\"")))?
        .as_f64()
        .ok_or_else(|| ApiError::new(format!("field \"{key}\" must be a number")))
}

fn optional_f64(obj: &Json, key: &str) -> Result<Option<f64>, ApiError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| ApiError::new(format!("field \"{key}\" must be a number"))),
    }
}

impl QueryRequest {
    /// Decodes a request from a JSON body.
    pub fn from_body(body: &str) -> Result<Self, ApiError> {
        Self::from_json(&parse(body)?)
    }

    /// Decodes a request from a parsed JSON value.
    pub fn from_json(value: &Json) -> Result<Self, ApiError> {
        if !matches!(value, Json::Object(_)) {
            return Err(ApiError::new("request body must be a JSON object"));
        }
        let algorithm = value
            .get("algorithm")
            .ok_or_else(|| ApiError::new("missing field \"algorithm\""))?
            .as_str()
            .ok_or_else(|| ApiError::new("field \"algorithm\" must be a string"))?
            .to_string();
        let keywords = value
            .get("keywords")
            .ok_or_else(|| ApiError::new("missing field \"keywords\""))?
            .as_array()
            .ok_or_else(|| ApiError::new("field \"keywords\" must be an array of strings"))?
            .iter()
            .map(|k| {
                k.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| ApiError::new("field \"keywords\" must be an array of strings"))
            })
            .collect::<Result<Vec<String>, ApiError>>()?;
        let rect_values = value
            .get("rect")
            .ok_or_else(|| ApiError::new("missing field \"rect\""))?
            .as_array()
            .ok_or_else(|| ApiError::new("field \"rect\" must be [min_x, min_y, max_x, max_y]"))?;
        if rect_values.len() != 4 {
            return Err(ApiError::new(
                "field \"rect\" must be [min_x, min_y, max_x, max_y]",
            ));
        }
        let mut corners = [0.0f64; 4];
        for (i, v) in rect_values.iter().enumerate() {
            corners[i] = v
                .as_f64()
                .ok_or_else(|| ApiError::new("field \"rect\" must contain numbers"))?;
            if !corners[i].is_finite() {
                return Err(ApiError::new("field \"rect\" must contain finite numbers"));
            }
        }
        // Swapped corners denote the same rectangle — Rect::new normalizes
        // the order below, so only genuinely degenerate (zero-extent)
        // rectangles are rejected.
        if corners[0] == corners[2] || corners[1] == corners[3] {
            return Err(ApiError::new(
                "field \"rect\" must have positive extent (min_x != max_x and min_y != max_y)",
            ));
        }
        let budget = field_f64(value, "budget")?;
        let k = match value.get("k") {
            None | Some(Json::Null) => None,
            Some(v) => {
                let k = v
                    .as_u64()
                    .ok_or_else(|| ApiError::new("field \"k\" must be a positive integer"))?;
                if k == 0 || k as usize > MAX_TOPK {
                    return Err(ApiError::new(format!(
                        "field \"k\" must be in 1..={MAX_TOPK}"
                    )));
                }
                Some(k as usize)
            }
        };
        let deadline_ms = match value.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                ApiError::new("field \"deadline_ms\" must be a non-negative integer")
            })?),
        };
        let priority = match value.get("priority") {
            None | Some(Json::Null) => None,
            Some(v) => {
                let lane = v.as_str().ok_or_else(|| {
                    ApiError::new("field \"priority\" must be \"interactive\" or \"batch\"")
                })?;
                if Priority::parse(lane).is_none() {
                    return Err(ApiError::new(format!(
                        "field \"priority\" must be \"interactive\" or \"batch\", got \"{lane}\""
                    )));
                }
                Some(lane.to_string())
            }
        };
        let cache = match value.get("cache") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_bool()
                    .ok_or_else(|| ApiError::new("field \"cache\" must be a boolean"))?,
            ),
        };
        Ok(QueryRequest {
            algorithm,
            keywords,
            rect: Rect::new(corners[0], corners[1], corners[2], corners[3]),
            budget,
            k,
            alpha: optional_f64(value, "alpha")?,
            beta: optional_f64(value, "beta")?,
            mu: optional_f64(value, "mu")?,
            deadline_ms,
            priority,
            cache,
        })
    }

    /// Encodes the request as a JSON value (used by clients and round-trip
    /// tests; the server only decodes).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("algorithm".into(), Json::String(self.algorithm.clone())),
            (
                "keywords".into(),
                Json::Array(
                    self.keywords
                        .iter()
                        .map(|k| Json::String(k.clone()))
                        .collect(),
                ),
            ),
            (
                "rect".into(),
                Json::Array(vec![
                    Json::Number(self.rect.min_x),
                    Json::Number(self.rect.min_y),
                    Json::Number(self.rect.max_x),
                    Json::Number(self.rect.max_y),
                ]),
            ),
            ("budget".into(), Json::Number(self.budget)),
        ];
        if let Some(k) = self.k {
            fields.push(("k".into(), Json::Number(k as f64)));
        }
        for (name, v) in [("alpha", self.alpha), ("beta", self.beta), ("mu", self.mu)] {
            if let Some(v) = v {
                fields.push((name.into(), Json::Number(v)));
            }
        }
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms".into(), Json::Number(ms as f64)));
        }
        if let Some(priority) = &self.priority {
            fields.push(("priority".into(), Json::String(priority.clone())));
        }
        if let Some(cache) = self.cache {
            fields.push(("cache".into(), Json::Bool(cache)));
        }
        Json::Object(fields)
    }

    /// Encodes the request as a JSON body.
    pub fn to_body(&self) -> String {
        self.to_json().encode()
    }

    /// Resolves the algorithm to run, applying parameter overrides.
    pub fn to_algorithm(&self) -> Result<Algorithm, ApiError> {
        match self.algorithm.to_ascii_lowercase().as_str() {
            "app" => {
                let mut params = AppParams::default();
                if let Some(alpha) = self.alpha {
                    params.alpha = alpha;
                }
                if let Some(beta) = self.beta {
                    params.beta = beta;
                }
                Ok(Algorithm::App(params))
            }
            "tgen" => {
                let mut params = TgenParams::default();
                if let Some(alpha) = self.alpha {
                    params.alpha = alpha;
                }
                Ok(Algorithm::Tgen(params))
            }
            "greedy" => {
                let mut params = GreedyParams::default();
                if let Some(mu) = self.mu {
                    params.mu = mu;
                }
                Ok(Algorithm::Greedy(params))
            }
            "exact" => Ok(Algorithm::Exact),
            other => Err(ApiError::new(format!(
                "unknown algorithm \"{other}\" (expected app, tgen, greedy or exact)"
            ))),
        }
    }

    /// Resolves the scheduling lane (interactive when unset).
    pub fn to_priority(&self) -> Result<Priority, ApiError> {
        match &self.priority {
            None => Ok(Priority::default()),
            Some(lane) => Priority::parse(lane).ok_or_else(|| {
                ApiError::new(format!(
                    "field \"priority\" must be \"interactive\" or \"batch\", got \"{lane}\""
                ))
            }),
        }
    }

    /// Builds and validates the engine-level query.
    pub fn to_query(&self) -> Result<LcmsrQuery, ApiError> {
        LcmsrQuery::new(self.keywords.clone(), self.budget, self.rect)
            .map_err(|e| ApiError::new(e.to_string()))
    }
}

/// A served region in global ids, mirroring [`Region`].
#[derive(Debug, Clone, PartialEq)]
pub struct RegionDto {
    /// Global node ids, sorted.
    pub nodes: Vec<u32>,
    /// Global edge ids, sorted.
    pub edges: Vec<u32>,
    /// Total road length, metres.
    pub length: f64,
    /// Total relevance weight.
    pub weight: f64,
    /// Scaled weight under the algorithm's scaling.
    pub scaled_weight: u64,
}

impl RegionDto {
    /// Converts an engine region into its wire form.
    pub fn from_region(region: &Region) -> Self {
        RegionDto {
            nodes: region.nodes.iter().map(|n| n.0).collect(),
            edges: region.edges.iter().map(|e| e.0).collect(),
            length: region.length,
            weight: region.weight,
            scaled_weight: region.scaled_weight,
        }
    }

    /// Converts back into an engine [`Region`] (clients, tests).
    pub fn to_region(&self) -> Region {
        Region {
            nodes: self.nodes.iter().map(|&n| NodeId(n)).collect(),
            edges: self.edges.iter().map(|&e| EdgeId(e)).collect(),
            length: self.length,
            weight: self.weight,
            scaled_weight: self.scaled_weight,
        }
    }

    fn to_json(&self) -> Json {
        Json::Object(vec![
            (
                "nodes".into(),
                Json::Array(self.nodes.iter().map(|&n| Json::Number(n as f64)).collect()),
            ),
            (
                "edges".into(),
                Json::Array(self.edges.iter().map(|&e| Json::Number(e as f64)).collect()),
            ),
            ("length".into(), Json::Number(self.length)),
            ("weight".into(), Json::Number(self.weight)),
            (
                "scaled_weight".into(),
                Json::Number(self.scaled_weight as f64),
            ),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, ApiError> {
        let ids = |key: &str| -> Result<Vec<u32>, ApiError> {
            value
                .get(key)
                .and_then(Json::as_array)
                .ok_or_else(|| ApiError::new(format!("region field \"{key}\" must be an array")))?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .filter(|&id| id <= u32::MAX as u64)
                        .map(|id| id as u32)
                        .ok_or_else(|| {
                            ApiError::new(format!("region field \"{key}\" must hold u32 ids"))
                        })
                })
                .collect()
        };
        Ok(RegionDto {
            nodes: ids("nodes")?,
            edges: ids("edges")?,
            length: field_f64(value, "length")?,
            weight: field_f64(value, "weight")?,
            scaled_weight: value
                .get("scaled_weight")
                .and_then(Json::as_u64)
                .ok_or_else(|| {
                    ApiError::new("region field \"scaled_weight\" must be an integer")
                })?,
        })
    }
}

/// Wire form of [`RunStats`]; durations in integer nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsDto {
    /// Algorithm name.
    pub algorithm: String,
    /// Engine wall-clock, nanoseconds.
    pub elapsed_ns: u64,
    /// Preparation time, nanoseconds.
    pub prepare_ns: u64,
    /// Grid-scoring component of the preparation time, nanoseconds.
    pub grid_score_ns: u64,
    /// Graph-build component of the preparation time, nanoseconds.
    pub graph_build_ns: u64,
    /// Solver time, nanoseconds.
    pub solve_ns: u64,
    /// Scheduler queue wait, nanoseconds.
    pub queue_ns: u64,
    /// `|V_Q|`.
    pub nodes_in_region: u64,
    /// `|E_Q|`.
    pub edges_in_region: u64,
    /// Nodes with positive query weight.
    pub relevant_nodes: u64,
    /// k-MST oracle invocations (APP).
    pub kmst_calls: u64,
    /// Tuples materialised (APP/TGEN).
    pub tuples_generated: u64,
    /// Greedy expansion steps.
    pub greedy_steps: u64,
    /// Combine pairs skipped by the tuple-array length-budget pruning
    /// (APP/TGEN).
    pub pruned_pairs: u64,
    /// Tuples resident across the solve phase's frontier arrays (APP/TGEN).
    pub frontier_tuples: u64,
    /// Largest single frontier array during the solve phase.
    pub frontier_peak: u64,
    /// Frontier entries evicted by dominating inserts.
    pub dominance_evictions: u64,
    /// Whether the result is a best-so-far partial answer (deadline expired
    /// or the query was cancelled mid-solve).
    pub partial: bool,
    /// Why the result is partial: `"deadline_exceeded"` or `"cancelled"`
    /// (absent for complete runs).
    pub partial_cause: Option<String>,
    /// The deadline budget the query ran under, in nanoseconds (absent when
    /// no deadline was set).
    pub deadline_ns: Option<u64>,
    /// Whether the query ran in cache mode (response cache consulted).
    pub cache: bool,
    /// Whether the response was replayed from the response cache.
    pub cache_hit: bool,
    /// Whether the lookup evicted a stale-epoch entry before recomputing.
    pub cache_stale: bool,
    /// Whether the prepare phase was delta-built from the previous session
    /// step's keyword scores.
    pub delta_prepare: bool,
}

fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Decodes an optional boolean stats flag (absent means `false`, so bodies
/// from peers predating the cache layer still decode).
fn optional_flag(value: &Json, key: &str) -> Result<bool, ApiError> {
    match value.get(key) {
        None | Some(Json::Null) => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| ApiError::new(format!("stats field \"{key}\" must be a boolean"))),
    }
}

impl StatsDto {
    /// Converts engine statistics into their wire form.
    pub fn from_stats(stats: &RunStats) -> Self {
        StatsDto {
            algorithm: stats.algorithm.clone(),
            elapsed_ns: duration_ns(stats.elapsed),
            prepare_ns: duration_ns(stats.prepare_time),
            grid_score_ns: duration_ns(stats.grid_score_time),
            graph_build_ns: duration_ns(stats.graph_build_time),
            solve_ns: duration_ns(stats.solve_time),
            queue_ns: duration_ns(stats.queue_time),
            nodes_in_region: stats.nodes_in_region as u64,
            edges_in_region: stats.edges_in_region as u64,
            relevant_nodes: stats.relevant_nodes as u64,
            kmst_calls: stats.kmst_calls,
            tuples_generated: stats.tuples_generated,
            greedy_steps: stats.greedy_steps,
            pruned_pairs: stats.pruned_pairs,
            frontier_tuples: stats.frontier_tuples,
            frontier_peak: stats.frontier_peak,
            dominance_evictions: stats.dominance_evictions,
            partial: stats.partial,
            partial_cause: stats.partial_cause.map(|c| c.as_str().to_string()),
            deadline_ns: stats.deadline.map(duration_ns),
            cache: stats.cache,
            cache_hit: stats.cache_hit,
            cache_stale: stats.cache_stale,
            delta_prepare: stats.delta_prepare,
        }
    }

    fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![
            ("algorithm".into(), Json::String(self.algorithm.clone())),
            ("elapsed_ns".into(), Json::Number(self.elapsed_ns as f64)),
            ("prepare_ns".into(), Json::Number(self.prepare_ns as f64)),
            (
                "grid_score_ns".into(),
                Json::Number(self.grid_score_ns as f64),
            ),
            (
                "graph_build_ns".into(),
                Json::Number(self.graph_build_ns as f64),
            ),
            ("solve_ns".into(), Json::Number(self.solve_ns as f64)),
            ("queue_ns".into(), Json::Number(self.queue_ns as f64)),
            (
                "nodes_in_region".into(),
                Json::Number(self.nodes_in_region as f64),
            ),
            (
                "edges_in_region".into(),
                Json::Number(self.edges_in_region as f64),
            ),
            (
                "relevant_nodes".into(),
                Json::Number(self.relevant_nodes as f64),
            ),
            ("kmst_calls".into(), Json::Number(self.kmst_calls as f64)),
            (
                "tuples_generated".into(),
                Json::Number(self.tuples_generated as f64),
            ),
            (
                "greedy_steps".into(),
                Json::Number(self.greedy_steps as f64),
            ),
            (
                "pruned_pairs".into(),
                Json::Number(self.pruned_pairs as f64),
            ),
            (
                "frontier_tuples".into(),
                Json::Number(self.frontier_tuples as f64),
            ),
            (
                "frontier_peak".into(),
                Json::Number(self.frontier_peak as f64),
            ),
            (
                "dominance_evictions".into(),
                Json::Number(self.dominance_evictions as f64),
            ),
        ];
        fields.push(("partial".into(), Json::Bool(self.partial)));
        if let Some(cause) = &self.partial_cause {
            fields.push(("partial_cause".into(), Json::String(cause.clone())));
        }
        if let Some(ns) = self.deadline_ns {
            fields.push(("deadline_ns".into(), Json::Number(ns as f64)));
        }
        // Cache-path flags are emitted only when set, so classic (cache-off)
        // responses keep their pre-cache wire shape byte-for-byte.
        for (name, flag) in [
            ("cache", self.cache),
            ("cache_hit", self.cache_hit),
            ("cache_stale", self.cache_stale),
            ("delta_prepare", self.delta_prepare),
        ] {
            if flag {
                fields.push((name.into(), Json::Bool(true)));
            }
        }
        Json::Object(fields)
    }

    fn from_json(value: &Json) -> Result<Self, ApiError> {
        let int = |key: &str| -> Result<u64, ApiError> {
            value
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| ApiError::new(format!("stats field \"{key}\" must be an integer")))
        };
        Ok(StatsDto {
            algorithm: value
                .get("algorithm")
                .and_then(Json::as_str)
                .ok_or_else(|| ApiError::new("stats field \"algorithm\" must be a string"))?
                .to_string(),
            elapsed_ns: int("elapsed_ns")?,
            prepare_ns: int("prepare_ns")?,
            // Absent on responses from peers predating the prepare split.
            grid_score_ns: match value.get("grid_score_ns") {
                None | Some(Json::Null) => 0,
                Some(v) => v.as_u64().ok_or_else(|| {
                    ApiError::new("stats field \"grid_score_ns\" must be an integer")
                })?,
            },
            graph_build_ns: match value.get("graph_build_ns") {
                None | Some(Json::Null) => 0,
                Some(v) => v.as_u64().ok_or_else(|| {
                    ApiError::new("stats field \"graph_build_ns\" must be an integer")
                })?,
            },
            solve_ns: int("solve_ns")?,
            queue_ns: int("queue_ns")?,
            nodes_in_region: int("nodes_in_region")?,
            edges_in_region: int("edges_in_region")?,
            relevant_nodes: int("relevant_nodes")?,
            kmst_calls: int("kmst_calls")?,
            tuples_generated: int("tuples_generated")?,
            greedy_steps: int("greedy_steps")?,
            pruned_pairs: int("pruned_pairs")?,
            frontier_tuples: int("frontier_tuples")?,
            frontier_peak: int("frontier_peak")?,
            dominance_evictions: int("dominance_evictions")?,
            partial: match value.get("partial") {
                None | Some(Json::Null) => false,
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| ApiError::new("stats field \"partial\" must be a boolean"))?,
            },
            partial_cause: match value.get("partial_cause") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or_else(|| {
                            ApiError::new("stats field \"partial_cause\" must be a string")
                        })?
                        .to_string(),
                ),
            },
            deadline_ns: match value.get("deadline_ns") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    ApiError::new("stats field \"deadline_ns\" must be an integer")
                })?),
            },
            cache: optional_flag(value, "cache")?,
            cache_hit: optional_flag(value, "cache_hit")?,
            cache_stale: optional_flag(value, "cache_stale")?,
            delta_prepare: optional_flag(value, "delta_prepare")?,
        })
    }
}

/// A served query response: regions (0 or 1 for single-best, up to `k` for
/// top-k) plus statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The regions, best first.
    pub regions: Vec<RegionDto>,
    /// Execution statistics, including queue wait.
    pub stats: StatsDto,
}

impl QueryResponse {
    /// Builds the response for a single-best result.
    pub fn from_single(result: &QueryResult) -> Self {
        QueryResponse {
            regions: result.region.iter().map(RegionDto::from_region).collect(),
            stats: StatsDto::from_stats(&result.stats),
        }
    }

    /// Builds the response for a top-k result.
    pub fn from_topk(result: &TopKResult) -> Self {
        QueryResponse {
            regions: result.regions.iter().map(RegionDto::from_region).collect(),
            stats: StatsDto::from_stats(&result.stats),
        }
    }

    /// Encodes the response as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            (
                "regions".into(),
                Json::Array(self.regions.iter().map(RegionDto::to_json).collect()),
            ),
            ("stats".into(), self.stats.to_json()),
        ])
    }

    /// Encodes the response as a JSON body.
    pub fn to_body(&self) -> String {
        self.to_json().encode()
    }

    /// Decodes a response from a JSON body (clients, tests).
    pub fn from_body(body: &str) -> Result<Self, ApiError> {
        Self::from_json(&parse(body)?)
    }

    /// Decodes a response from a parsed JSON value.
    pub fn from_json(value: &Json) -> Result<Self, ApiError> {
        let regions = value
            .get("regions")
            .and_then(Json::as_array)
            .ok_or_else(|| ApiError::new("response field \"regions\" must be an array"))?
            .iter()
            .map(RegionDto::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let stats = StatsDto::from_json(
            value
                .get("stats")
                .ok_or_else(|| ApiError::new("missing response field \"stats\""))?,
        )?;
        Ok(QueryResponse { regions, stats })
    }
}

/// Encodes an error body `{"error": "..."}`.
pub fn error_body(message: &str) -> String {
    Json::Object(vec![("error".into(), Json::String(message.into()))]).encode()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> QueryRequest {
        QueryRequest {
            algorithm: "tgen".into(),
            keywords: vec!["restaurant".into(), "cafe".into()],
            rect: Rect::new(-50.0, -50.0, 550.0, 550.0),
            budget: 400.0,
            k: Some(3),
            alpha: Some(1.0),
            beta: None,
            mu: None,
            deadline_ms: None,
            priority: None,
            cache: None,
        }
    }

    #[test]
    fn request_round_trips_through_the_codec() {
        let req = sample_request();
        let body = req.to_body();
        let back = QueryRequest::from_body(&body).unwrap();
        assert_eq!(req, back);
        // Without optional fields too.
        let minimal = QueryRequest {
            k: None,
            alpha: None,
            ..sample_request()
        };
        assert_eq!(
            QueryRequest::from_body(&minimal.to_body()).unwrap(),
            minimal
        );
        // With deadline and priority set.
        let deadlined = QueryRequest {
            deadline_ms: Some(50),
            priority: Some("batch".into()),
            ..sample_request()
        };
        assert_eq!(
            QueryRequest::from_body(&deadlined.to_body()).unwrap(),
            deadlined
        );
        // The cache knob survives the round trip in both polarities.
        for cache in [Some(true), Some(false)] {
            let explicit = QueryRequest {
                cache,
                ..sample_request()
            };
            assert_eq!(
                QueryRequest::from_body(&explicit.to_body()).unwrap(),
                explicit
            );
        }
    }

    #[test]
    fn swapped_rect_corners_normalize_to_the_same_rectangle() {
        let canonical = r#"{"algorithm":"tgen","keywords":["x"],"rect":[0,0,10,20],"budget":1}"#;
        let swapped = r#"{"algorithm":"tgen","keywords":["x"],"rect":[10,20,0,0],"budget":1}"#;
        let a = QueryRequest::from_body(canonical).unwrap();
        let b = QueryRequest::from_body(swapped).unwrap();
        assert_eq!(a.rect, b.rect, "corner order must not matter");
        assert_eq!(a.rect, Rect::new(0.0, 0.0, 10.0, 20.0));
        // Signed zero folds at the engine's cache-key layer, not here; the
        // admission layer only guards finiteness and extent.
        for degenerate in [
            r#"{"algorithm":"tgen","keywords":["x"],"rect":[5,0,5,1],"budget":1}"#,
            r#"{"algorithm":"tgen","keywords":["x"],"rect":[0,3,1,3],"budget":1}"#,
        ] {
            let err = QueryRequest::from_body(degenerate).unwrap_err();
            assert!(err.message.contains("extent"), "{:?}", err.message);
        }
        let nan = r#"{"algorithm":"tgen","keywords":["x"],"rect":[0,0,1,null],"budget":1}"#;
        assert!(QueryRequest::from_body(nan).is_err());
    }

    #[test]
    fn request_maps_to_engine_types() {
        let req = sample_request();
        let algorithm = req.to_algorithm().unwrap();
        assert_eq!(algorithm, Algorithm::Tgen(TgenParams { alpha: 1.0 }));
        let query = req.to_query().unwrap();
        assert_eq!(query.delta, 400.0);
        assert_eq!(query.keywords, vec!["restaurant", "cafe"]);

        for (name, expected) in [
            ("app", Algorithm::App(AppParams::default())),
            ("APP", Algorithm::App(AppParams::default())),
            ("greedy", Algorithm::Greedy(GreedyParams::default())),
            ("Exact", Algorithm::Exact),
        ] {
            let req = QueryRequest {
                algorithm: name.into(),
                alpha: None,
                ..sample_request()
            };
            assert_eq!(req.to_algorithm().unwrap(), expected);
        }
        let bad = QueryRequest {
            algorithm: "magic".into(),
            ..sample_request()
        };
        assert!(bad.to_algorithm().is_err());
    }

    #[test]
    fn parameter_overrides_apply() {
        let req = QueryRequest {
            algorithm: "app".into(),
            alpha: Some(0.25),
            beta: Some(0.05),
            ..sample_request()
        };
        match req.to_algorithm().unwrap() {
            Algorithm::App(p) => {
                assert_eq!(p.alpha, 0.25);
                assert_eq!(p.beta, 0.05);
            }
            other => panic!("expected APP, got {other:?}"),
        }
        let req = QueryRequest {
            algorithm: "greedy".into(),
            mu: Some(0.7),
            ..sample_request()
        };
        assert_eq!(
            req.to_algorithm().unwrap(),
            Algorithm::Greedy(GreedyParams { mu: 0.7 })
        );
    }

    #[test]
    fn invalid_requests_are_rejected_with_messages() {
        for (body, needle) in [
            ("[]", "object"),
            ("{}", "algorithm"),
            (r#"{"algorithm":"tgen"}"#, "keywords"),
            (
                r#"{"algorithm":7,"keywords":[],"rect":[0,0,1,1],"budget":1}"#,
                "string",
            ),
            (
                r#"{"algorithm":"tgen","keywords":"x","rect":[0,0,1,1],"budget":1}"#,
                "array of strings",
            ),
            (
                r#"{"algorithm":"tgen","keywords":[1],"rect":[0,0,1,1],"budget":1}"#,
                "array of strings",
            ),
            (
                r#"{"algorithm":"tgen","keywords":["x"],"rect":[0,0,1],"budget":1}"#,
                "rect",
            ),
            (
                r#"{"algorithm":"tgen","keywords":["x"],"rect":[0,0,1,"y"],"budget":1}"#,
                "numbers",
            ),
            (
                r#"{"algorithm":"tgen","keywords":["x"],"rect":[5,0,5,1],"budget":1}"#,
                "extent",
            ),
            (
                r#"{"algorithm":"tgen","keywords":["x"],"rect":[0,0,1,1]}"#,
                "budget",
            ),
            (
                r#"{"algorithm":"tgen","keywords":["x"],"rect":[0,0,1,1],"budget":1,"k":0}"#,
                "k",
            ),
            (
                r#"{"algorithm":"tgen","keywords":["x"],"rect":[0,0,1,1],"budget":1,"k":1.5}"#,
                "k",
            ),
            (
                r#"{"algorithm":"tgen","keywords":["x"],"rect":[0,0,1,1],"budget":1,"k":10000}"#,
                "k",
            ),
            (
                r#"{"algorithm":"tgen","keywords":["x"],"rect":[0,0,1,1],"budget":1,"alpha":"big"}"#,
                "alpha",
            ),
            (
                r#"{"algorithm":"tgen","keywords":["x"],"rect":[0,0,1,1],"budget":1,"deadline_ms":-5}"#,
                "deadline_ms",
            ),
            (
                r#"{"algorithm":"tgen","keywords":["x"],"rect":[0,0,1,1],"budget":1,"deadline_ms":1.5}"#,
                "deadline_ms",
            ),
            (
                r#"{"algorithm":"tgen","keywords":["x"],"rect":[0,0,1,1],"budget":1,"priority":"urgent"}"#,
                "priority",
            ),
            (
                r#"{"algorithm":"tgen","keywords":["x"],"rect":[0,0,1,1],"budget":1,"priority":7}"#,
                "priority",
            ),
            (
                r#"{"algorithm":"tgen","keywords":["x"],"rect":[0,0,1,1],"budget":1,"cache":"yes"}"#,
                "cache",
            ),
            ("{not json", "invalid JSON"),
        ] {
            let err = QueryRequest::from_body(body).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{body}: expected {needle:?} in {:?}",
                err.message
            );
        }
        // Validation errors surface through to_query.
        let req = QueryRequest {
            budget: -1.0,
            ..sample_request()
        };
        assert!(req.to_query().is_err());
        let req = QueryRequest {
            keywords: vec![],
            ..sample_request()
        };
        assert!(req.to_query().is_err());
    }

    #[test]
    fn response_round_trips_bit_exactly() {
        let response = QueryResponse {
            regions: vec![RegionDto {
                nodes: vec![1, 5, 9],
                edges: vec![2, 7],
                length: 123.456789,
                weight: 0.1 + 0.2, // a value with an inexact decimal expansion
                scaled_weight: 110,
            }],
            stats: StatsDto {
                algorithm: "TGEN".into(),
                elapsed_ns: 1_234_567_891,
                prepare_ns: 23_456,
                grid_score_ns: 14_000,
                graph_build_ns: 9_000,
                solve_ns: 1_200_000_000,
                queue_ns: 11_111_111,
                nodes_in_region: 36,
                edges_in_region: 60,
                relevant_nodes: 5,
                kmst_calls: 0,
                tuples_generated: 420,
                greedy_steps: 0,
                pruned_pairs: 7_000,
                frontier_tuples: 96,
                frontier_peak: 12,
                dominance_evictions: 3,
                partial: false,
                partial_cause: None,
                deadline_ns: None,
                cache: false,
                cache_hit: false,
                cache_stale: false,
                delta_prepare: false,
            },
        };
        let body = response.to_body();
        let back = QueryResponse::from_body(&body).unwrap();
        assert_eq!(response, back);
        assert_eq!(
            back.regions[0].weight.to_bits(),
            (0.1f64 + 0.2).to_bits(),
            "floats survive the wire bit-exactly"
        );
        // DTO ↔ engine Region round-trip.
        let region = back.regions[0].to_region();
        assert_eq!(RegionDto::from_region(&region), back.regions[0]);
    }

    #[test]
    fn cache_stats_round_trip_and_stay_off_the_classic_wire() {
        // Classic (cache-off) responses carry none of the cache flags, so
        // their wire shape is byte-identical to a cacheless build's.
        let classic = QueryResponse {
            regions: vec![],
            stats: StatsDto::from_stats(&RunStats::new("TGEN")),
        };
        let body = classic.to_body();
        for flag in ["\"cache\"", "cache_hit", "cache_stale", "delta_prepare"] {
            assert!(!body.contains(flag), "unexpected {flag} in {body}");
        }
        assert_eq!(QueryResponse::from_body(&body).unwrap(), classic);
        // A cache-hit response carries its flags and round-trips.
        let mut stats = RunStats::new("TGEN");
        stats.cache = true;
        stats.cache_hit = true;
        let hit = QueryResponse {
            regions: vec![],
            stats: StatsDto::from_stats(&stats),
        };
        let body = hit.to_body();
        assert!(body.contains("\"cache\":true"), "{body}");
        assert!(body.contains("\"cache_hit\":true"), "{body}");
        assert!(!body.contains("cache_stale"), "{body}");
        assert_eq!(QueryResponse::from_body(&body).unwrap(), hit);
        // A delta-prepared recompute after a stale eviction round-trips too.
        let mut stats = RunStats::new("TGEN");
        stats.cache = true;
        stats.cache_stale = true;
        stats.delta_prepare = true;
        let delta = QueryResponse {
            regions: vec![],
            stats: StatsDto::from_stats(&stats),
        };
        let back = QueryResponse::from_body(&delta.to_body()).unwrap();
        assert_eq!(back, delta);
        assert!(back.stats.cache_stale && back.stats.delta_prepare);
        // Malformed flags are rejected with the field named.
        let bad = r#"{"regions":[],"stats":{"algorithm":"TGEN","elapsed_ns":0,
            "prepare_ns":0,"solve_ns":0,"queue_ns":0,"nodes_in_region":0,
            "edges_in_region":0,"relevant_nodes":0,"kmst_calls":0,
            "tuples_generated":0,"greedy_steps":0,"pruned_pairs":0,
            "frontier_tuples":0,"frontier_peak":0,"dominance_evictions":0,
            "cache_hit":1}}"#;
        let err = QueryResponse::from_body(bad).unwrap_err();
        assert!(err.message.contains("cache_hit"), "{:?}", err.message);
    }

    #[test]
    fn error_body_is_json() {
        let body = error_body("bad \"thing\"");
        let v = parse(&body).unwrap();
        assert_eq!(v.get("error").and_then(Json::as_str), Some("bad \"thing\""));
    }

    #[test]
    fn priority_resolves_with_interactive_default() {
        assert_eq!(
            sample_request().to_priority().unwrap(),
            Priority::Interactive
        );
        let batch = QueryRequest {
            priority: Some("batch".into()),
            ..sample_request()
        };
        assert_eq!(batch.to_priority().unwrap(), Priority::Batch);
        let bad = QueryRequest {
            priority: Some("urgent".into()),
            ..sample_request()
        };
        assert!(bad.to_priority().unwrap_err().message.contains("priority"));
    }

    #[test]
    fn partial_stats_round_trip_on_the_wire() {
        let mut stats = RunStats::new("Exact");
        stats.deadline = Some(Duration::from_millis(50));
        stats.mark_partial(PartialCause::DeadlineExceeded);
        let dto = StatsDto::from_stats(&stats);
        assert!(dto.partial);
        assert_eq!(dto.partial_cause.as_deref(), Some("deadline_exceeded"));
        assert_eq!(dto.deadline_ns, Some(50_000_000));
        let response = QueryResponse {
            regions: vec![],
            stats: dto,
        };
        let back = QueryResponse::from_body(&response.to_body()).unwrap();
        assert_eq!(response, back);
        let body = response.to_body();
        assert!(body.contains("\"partial\":true"), "body: {body}");
        assert!(body.contains("\"partial_cause\":\"deadline_exceeded\""));
        assert!(body.contains("\"deadline_ns\":50000000"));
        // Complete runs stay partial-free and omit the optional fields.
        let complete = QueryResponse {
            regions: vec![],
            stats: StatsDto::from_stats(&RunStats::new("TGEN")),
        };
        let body = complete.to_body();
        assert!(body.contains("\"partial\":false"));
        assert!(!body.contains("partial_cause"));
        assert!(!body.contains("deadline_ns"));
        assert_eq!(QueryResponse::from_body(&body).unwrap(), complete);
    }
}
