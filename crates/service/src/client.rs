//! A tiny blocking HTTP/1.1 client over one keep-alive connection — just
//! enough for the end-to-end tests, the CI smoke checks and the closed-loop
//! `service_throughput` benchmark clients.  Not a general HTTP client.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A decoded HTTP response: status, headers (names lower-cased) and body.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl ClientResponse {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive connection to one server.
#[derive(Debug)]
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connects to `addr` with a 30 s I/O timeout.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(HttpClient {
            reader,
            writer: stream,
        })
    }

    /// Sends a `GET` and returns `(status, body)`.
    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.request("GET", path, None, &[])
            .map(|r| (r.status, r.body))
    }

    /// Sends a `POST` with a JSON body and returns `(status, body)`.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.request("POST", path, Some(body), &[])
            .map(|r| (r.status, r.body))
    }

    /// Sends a `GET` and returns the full response including headers.
    pub fn get_full(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, None, &[])
    }

    /// Sends a `POST` and returns the full response including headers
    /// (e.g. `Retry-After` on a `503` shed).
    pub fn post_full(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body), &[])
    }

    /// Sends a `POST` with extra request headers (e.g. `X-Request-Id`) and
    /// returns the full response.  Header values must be CRLF-free.
    pub fn post_with_headers(
        &mut self,
        path: &str,
        body: &str,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body), extra_headers)
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        let body = body.unwrap_or("");
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: lcmsr\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
            body.len()
        );
        for (name, value) in extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(bad("connection closed before the status line"));
        }
        // "HTTP/1.1 200 OK"
        let status: u16 = line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut content_length = 0usize;
        let mut headers = Vec::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(bad("connection closed mid-headers"));
            }
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().map_err(|_| bad("malformed Content-Length"))?;
                }
                headers.push((name, value));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        String::from_utf8(body)
            .map(|body| ClientResponse {
                status,
                headers,
                body,
            })
            .map_err(|_| bad("response body is not UTF-8"))
    }
}
