//! A hand-rolled JSON codec (the build environment has no crates.io access,
//! so `serde_json` is not available; the vendored `serde` stub only provides
//! marker derives).
//!
//! The decoder is a recursive-descent parser over UTF-8 input with a hard
//! nesting-depth limit, so adversarial bodies (`[[[[…`) fail with a clean
//! [`JsonError`] instead of overflowing the worker's stack.  The encoder
//! prints `f64` numbers with Rust's shortest-round-trip `Display`, so every
//! finite value survives encode → decode bit-exactly — the property the
//! service's "bit-identical to a direct engine call" guarantee rests on.

use std::fmt;

/// Maximum nesting depth the parser accepts before bailing out.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
///
/// Objects preserve insertion order (they are association lists, not maps),
/// which keeps encoding deterministic and duplicate keys detectable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (JSON has a single number type; `u64`s beyond 2^53
    /// would lose precision, which the API layer's value ranges never reach).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number that fits.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Encodes the value as compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => encode_number(*n, out),
            Json::String(s) => encode_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(key, out);
                    out.push(':');
                    value.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Encodes a number; non-finite values (which JSON cannot represent) become
/// `null`, matching the common lenient-encoder convention.
fn encode_number(n: f64, out: &mut String) {
    if n.is_finite() {
        // Rust's Display for f64 prints the shortest decimal string that
        // parses back to the same bits — exactly what round-tripping needs.
        out.push_str(&n.to_string());
    } else {
        out.push_str("null");
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A decoding error, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (exactly one value plus whitespace).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_whitespace();
    let value = p.parse_value(0)?;
    p.skip_whitespace();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the JSON value"));
    }
    Ok(value)
}

/// Checks the strict JSON number grammar:
/// `-? (0 | [1-9][0-9]*) ('.' [0-9]+)? ([eE] [+-]? [0-9]+)?`.
fn is_json_number(text: &str) -> bool {
    let mut chars = text.as_bytes();
    if let [b'-', rest @ ..] = chars {
        chars = rest;
    }
    let digits = |s: &[u8]| s.iter().take_while(|b| b.is_ascii_digit()).count();
    // Integer part: '0' alone or a non-zero leading digit run.
    let int_len = digits(chars);
    if int_len == 0 || (int_len > 1 && chars[0] == b'0') {
        return false;
    }
    chars = &chars[int_len..];
    if let [b'.', rest @ ..] = chars {
        let frac_len = digits(rest);
        if frac_len == 0 {
            return false;
        }
        chars = &rest[frac_len..];
    }
    if let [b'e' | b'E', rest @ ..] = chars {
        let rest = match rest {
            [b'+' | b'-', r @ ..] => r,
            r => r,
        };
        let exp_len = digits(rest);
        if exp_len == 0 {
            return false;
        }
        chars = &rest[exp_len..];
    }
    chars.is_empty()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), JsonError> {
        match self.bump() {
            Some(b) if b == byte => Ok(()),
            Some(b) => Err(JsonError {
                offset: self.pos - 1,
                message: format!("expected '{}', found '{}'", byte as char, b as char),
            }),
            None => Err(self.error(format!("expected '{}', found end of input", byte as char))),
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(self.error(format!("unexpected character '{}'", b as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{literal}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // JSON requires at least one digit before any '.' or exponent.
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.error("expected a digit"));
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        // The scanned range is sign/digit/dot/exponent ASCII, so this cannot
        // fail; a decoder must still not be able to panic, so route it as a
        // (unreachable) parse error instead of asserting.
        let Ok(text) = std::str::from_utf8(&self.bytes[start..self.pos]) else {
            return Err(JsonError {
                offset: start,
                message: "non-ASCII byte in number".into(),
            });
        };
        // Rust's f64 parser is laxer than JSON ("1.", ".5", "01" all parse),
        // so validate the JSON number grammar before handing it over.
        if !is_json_number(text) {
            return Err(JsonError {
                offset: start,
                message: format!("malformed number '{text}'"),
            });
        }
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Number(n)),
            Ok(_) => Err(JsonError {
                offset: start,
                message: format!("number '{text}' overflows an f64"),
            }),
            Err(_) => Err(JsonError {
                offset: start,
                message: format!("malformed number '{text}'"),
            }),
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let first = self.parse_hex4()?;
                        let c = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: a \uXXXX low surrogate must follow.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.error("unpaired surrogate escape"));
                            }
                            let second = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&second) {
                                return Err(self.error("invalid low surrogate"));
                            }
                            let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                            char::from_u32(code)
                        } else {
                            char::from_u32(first)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(self.error("invalid unicode escape")),
                        }
                    }
                    _ => {
                        return Err(JsonError {
                            offset: start,
                            message: "invalid escape sequence".into(),
                        })
                    }
                },
                Some(b) if b < 0x20 => {
                    return Err(JsonError {
                        offset: start,
                        message: "unescaped control character in string".into(),
                    })
                }
                Some(b) if b < 0x80 => out.push(b as char),
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str, so the sequence is
                    // valid — find its end and push the char.
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    // The input arrived as a &str, so the sequence is valid
                    // UTF-8; still surface a parse error rather than assert.
                    let Ok(s) = std::str::from_utf8(&self.bytes[start..end]) else {
                        return Err(JsonError {
                            offset: start,
                            message: "invalid UTF-8 in string".into(),
                        });
                    };
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a') as u32 + 10,
                Some(b @ b'A'..=b'F') => (b - b'A') as u32 + 10,
                _ => return Err(self.error("expected four hex digits")),
            };
            value = value * 16 + digit;
        }
        Ok(value)
    }

    fn parse_array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Array(items)),
                Some(_) => {
                    self.pos -= 1;
                    return Err(self.error("expected ',' or ']' in array"));
                }
                None => return Err(self.error("unterminated array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.error(format!("duplicate key \"{key}\"")));
            }
            self.skip_whitespace();
            self.expect_byte(b':')?;
            let value = self.parse_value(depth + 1)?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Object(fields)),
                Some(_) => {
                    self.pos -= 1;
                    return Err(self.error("expected ',' or '}' in object"));
                }
                None => return Err(self.error("unterminated object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Number(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), Json::Number(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let a = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::String("quote\" back\\ tab\t nl\n unicode→ é \u{1}".into());
        let text = original.encode();
        assert_eq!(parse(&text).unwrap(), original);
        // Explicit escape forms parse too.
        assert_eq!(
            parse(r#""\u00e9 \ud83d\ude00 \/""#).unwrap(),
            Json::String("é 😀 /".into())
        );
    }

    #[test]
    fn numbers_round_trip_bit_exactly() {
        for n in [
            0.0,
            -0.0,
            1.0,
            3.5,
            0.1,
            1e-6,
            123_456_789.123_456_79,
            f64::MAX,
            f64::MIN_POSITIVE,
            -2.2250738585072014e-308,
        ] {
            let text = Json::Number(n).encode();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), n.to_bits(), "{n} via {text}");
        }
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        for bad in [
            "",
            "{",
            "}",
            "[1,]",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "{'a':1}",
            "tru",
            "nul",
            "+1",
            ".5",
            "1.",
            "01",
            "-",
            "1e",
            "1e+",
            "1.2.3",
            "\"unterminated",
            "\"bad \\x escape\"",
            "\"ctrl \u{1} char\"",
            "\"\\ud800\"",
            "1 2",
            "{\"a\":1} extra",
            "{\"dup\":1,\"dup\":2}",
            "nan",
            "Infinity",
            "1e999",
        ] {
            let result = parse(bad);
            assert!(result.is_err(), "{bad:?} must not parse");
            // Errors format without panicking.
            let _ = result.unwrap_err().to_string();
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(10_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        let balanced = format!("{}{}", "[".repeat(MAX_DEPTH + 2), "]".repeat(MAX_DEPTH + 2));
        assert!(parse(&balanced).is_err());
        let ok = format!("{}{}", "[".repeat(MAX_DEPTH - 1), "]".repeat(MAX_DEPTH - 1));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn as_u64_accepts_only_exact_non_negative_integers() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
        assert_eq!(Json::String("7".into()).as_u64(), None);
    }

    #[test]
    fn object_helpers() {
        let v = parse(r#"{"x": 1, "y": true}"#).unwrap();
        assert_eq!(v.get("x").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("y").unwrap().as_bool(), Some(true));
        assert!(v.get("z").is_none());
        assert!(Json::Null.get("x").is_none());
        assert_eq!(Json::Bool(true).as_f64(), None);
        assert_eq!(Json::Number(1.0).as_str(), None);
        assert_eq!(Json::Null.as_array(), None);
        assert_eq!(Json::Null.as_bool(), None);
    }

    #[test]
    fn encoding_is_deterministic_and_compact() {
        let v = Json::Object(vec![
            ("b".into(), Json::Number(2.0)),
            ("a".into(), Json::Array(vec![Json::Null, Json::Bool(false)])),
        ]);
        assert_eq!(v.encode(), r#"{"b":2,"a":[null,false]}"#);
        // Non-finite numbers degrade to null instead of emitting invalid JSON.
        assert_eq!(Json::Number(f64::NAN).encode(), "null");
        assert_eq!(Json::Number(f64::INFINITY).encode(), "null");
    }
}
