//! Service counters and a fixed-bucket latency histogram.
//!
//! Everything is lock-free atomics so the hot path (one `record` per request)
//! never contends with `/metrics` scrapes.  Quantiles are estimated from the
//! histogram as the upper bound of the bucket containing the target rank —
//! coarse but monotone, cheap, and entirely allocation-free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Reads the monotonic clock.
///
/// The audited clock source for serving-side code outside the scheduler and
/// HTTP listener: request-latency stamps and the uptime anchor go through
/// here so every time dependency of the serving path is findable in one
/// place (`lcmsr-lint`'s `clock` rule enforces this).
#[must_use]
pub(crate) fn now() -> Instant {
    Instant::now()
}

/// Upper bounds (inclusive) of the latency buckets, in microseconds; a final
/// overflow bucket catches everything beyond the last bound.
pub const LATENCY_BOUNDS_US: [u64; 15] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000,
];

/// A fixed-bucket latency histogram over [`LATENCY_BOUNDS_US`].
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    counts: [AtomicU64; LATENCY_BOUNDS_US.len() + 1],
    total_us: AtomicU64,
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let bucket = LATENCY_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LATENCY_BOUNDS_US.len());
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.total_us.load(Ordering::Relaxed) as f64 / count as f64
        }
    }

    /// Estimated quantile (`q` in 0..=1) as the upper bound of the bucket
    /// holding the target rank, in microseconds.  The overflow bucket reports
    /// twice the last bound.  Returns 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, count) in self.counts.iter().enumerate() {
            seen += count.load(Ordering::Relaxed);
            if seen >= target {
                return LATENCY_BOUNDS_US
                    .get(i)
                    .copied()
                    .unwrap_or(LATENCY_BOUNDS_US[LATENCY_BOUNDS_US.len() - 1] * 2);
            }
        }
        LATENCY_BOUNDS_US[LATENCY_BOUNDS_US.len() - 1] * 2
    }

    /// Sum of all recorded latencies, in microseconds (the Prometheus
    /// histogram `_sum`, in the same unit as the bucket bounds).
    pub fn total_us(&self) -> u64 {
        self.total_us.load(Ordering::Relaxed)
    }

    /// Cumulative bucket counts in `(upper_bound_us, cumulative_count)` form,
    /// the overflow bucket last with `u64::MAX` as its bound.
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.counts.len());
        let mut seen = 0u64;
        for (i, count) in self.counts.iter().enumerate() {
            seen += count.load(Ordering::Relaxed);
            let bound = LATENCY_BOUNDS_US.get(i).copied().unwrap_or(u64::MAX);
            out.push((bound, seen));
        }
        out
    }
}

/// Counters shared by the HTTP workers and the micro-batching scheduler.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// HTTP requests received on any route.
    pub requests: AtomicU64,
    /// Query requests admitted to the scheduler (or run directly).
    pub queries: AtomicU64,
    /// `200` responses.
    pub responses_ok: AtomicU64,
    /// `4xx` responses (malformed or invalid requests).
    pub responses_client_error: AtomicU64,
    /// `503` load-shed responses (queue or in-flight cap full).
    pub shed: AtomicU64,
    /// `503` responses shed because the request's deadline was already blown
    /// or would be blown by the predicted queue wait.
    pub deadline_shed: AtomicU64,
    /// `200` responses whose result was partial (deadline or cancellation
    /// stopped the solver at its best-so-far incumbent).
    pub partial: AtomicU64,
    /// Served queries at or beyond the diagnostics slow threshold.
    pub slow_queries: AtomicU64,
    /// Served queries that ran with span tracing enabled (sampled).
    pub traced: AtomicU64,
    /// Batches dispatched to the engine.
    pub batches: AtomicU64,
    /// Total queries across all dispatched batches.
    pub batched_queries: AtomicU64,
    /// Current scheduler queue depth (gauge).
    pub queue_depth: AtomicU64,
    /// End-to-end request latency (parse → response ready), query route only.
    pub latency: LatencyHistogram,
    /// Total prepare time across answered queries, nanoseconds.
    pub prepare_ns: AtomicU64,
    /// Grid-scoring component of `prepare_ns` (keyword scoring against the
    /// sharded grid index), nanoseconds.
    pub grid_score_ns: AtomicU64,
    /// Graph-build component of `prepare_ns` (`Q.Λ` extraction + scaled CSR
    /// construction), nanoseconds.
    pub graph_build_ns: AtomicU64,
    /// Served queries replayed from the engine's response cache.
    pub cache_hits: AtomicU64,
    /// Cache-mode queries whose fingerprint was absent (computed cold and,
    /// when complete, inserted).
    pub cache_misses: AtomicU64,
    /// Cache-mode queries whose entry was cached under an older dataset
    /// epoch (evicted and recomputed).
    pub cache_stale: AtomicU64,
    /// Served queries whose prepare phase was delta-built from the previous
    /// session step instead of rescoring the whole region of interest.
    pub delta_prepares: AtomicU64,
}

impl ServiceMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one answered query's prepare-phase timing split.
    pub fn record_prepare_split(&self, stats: &lcmsr_core::stats::RunStats) {
        let ns = |d: Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.prepare_ns
            .fetch_add(ns(stats.prepare_time), Ordering::Relaxed);
        self.grid_score_ns
            .fetch_add(ns(stats.grid_score_time), Ordering::Relaxed);
        self.graph_build_ns
            .fetch_add(ns(stats.graph_build_time), Ordering::Relaxed);
    }

    /// Accumulates one answered query's cache-path outcome.  Only cache-mode
    /// queries count: a hit, a stale recompute, or a miss, exclusively; delta
    /// prepares are counted independently (a delta-prepared step is also a
    /// miss for its own fingerprint).
    pub fn record_cache_path(&self, stats: &lcmsr_core::stats::RunStats) {
        if stats.cache {
            if stats.cache_hit {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
            } else if stats.cache_stale {
                self.cache_stale.fetch_add(1, Ordering::Relaxed);
            } else {
                self.cache_misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        if stats.delta_prepare {
            self.delta_prepares.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Mean queries per dispatched batch (0 when no batch ran yet).
    pub fn mean_batch_size(&self) -> f64 {
        let batches = self.batches.load(Ordering::Relaxed);
        if batches == 0 {
            0.0
        } else {
            self.batched_queries.load(Ordering::Relaxed) as f64 / batches as f64
        }
    }

    /// Renders the Prometheus text exposition for `/metrics`: every series
    /// carries `# HELP` and `# TYPE` metadata, `_total` series are counters,
    /// and the latency histogram follows the `_bucket`/`_sum`/`_count`
    /// convention (all in microseconds, matching the bucket bounds).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut series = |name: &str, kind: &str, help: &str, value: String| {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(help);
            out.push_str("\n# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            out.push_str(name);
            out.push(' ');
            out.push_str(&value);
            out.push('\n');
        };
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed).to_string();
        series(
            "lcmsr_requests_total",
            "counter",
            "HTTP requests received on any route.",
            load(&self.requests),
        );
        series(
            "lcmsr_queries_total",
            "counter",
            "Query requests admitted to the scheduler.",
            load(&self.queries),
        );
        series(
            "lcmsr_responses_ok_total",
            "counter",
            "200 responses on the query route.",
            load(&self.responses_ok),
        );
        series(
            "lcmsr_responses_client_error_total",
            "counter",
            "4xx responses (malformed or invalid requests).",
            load(&self.responses_client_error),
        );
        series(
            "lcmsr_shed_total",
            "counter",
            "503 responses shed because the admission queue was full.",
            load(&self.shed),
        );
        series(
            "lcmsr_deadline_shed_total",
            "counter",
            "503 responses shed because the deadline was unmeetable.",
            load(&self.deadline_shed),
        );
        series(
            "lcmsr_partial_total",
            "counter",
            "200 responses carrying a best-so-far partial result.",
            load(&self.partial),
        );
        series(
            "lcmsr_slow_queries_total",
            "counter",
            "Served queries at or beyond the slow-query threshold.",
            load(&self.slow_queries),
        );
        series(
            "lcmsr_traced_queries_total",
            "counter",
            "Served queries that ran with span tracing enabled.",
            load(&self.traced),
        );
        series(
            "lcmsr_batches_total",
            "counter",
            "Batches dispatched to the engine.",
            load(&self.batches),
        );
        series(
            "lcmsr_batched_queries_total",
            "counter",
            "Queries across all dispatched batches.",
            load(&self.batched_queries),
        );
        series(
            "lcmsr_mean_batch_size",
            "gauge",
            "Mean queries per dispatched batch.",
            format!("{:.3}", self.mean_batch_size()),
        );
        series(
            "lcmsr_queue_depth",
            "gauge",
            "Current scheduler queue depth.",
            load(&self.queue_depth),
        );
        series(
            "lcmsr_prepare_ns_total",
            "counter",
            "Total prepare-phase time across answered queries, nanoseconds.",
            load(&self.prepare_ns),
        );
        series(
            "lcmsr_prepare_grid_score_ns_total",
            "counter",
            "Grid-scoring component of the prepare phase, nanoseconds.",
            load(&self.grid_score_ns),
        );
        series(
            "lcmsr_prepare_graph_build_ns_total",
            "counter",
            "Graph-build component of the prepare phase, nanoseconds.",
            load(&self.graph_build_ns),
        );
        series(
            "lcmsr_cache_hits_total",
            "counter",
            "Served queries replayed from the response cache.",
            load(&self.cache_hits),
        );
        series(
            "lcmsr_cache_misses_total",
            "counter",
            "Cache-mode queries computed cold (fingerprint absent).",
            load(&self.cache_misses),
        );
        series(
            "lcmsr_cache_stale_total",
            "counter",
            "Cache-mode queries recomputed after a stale-epoch eviction.",
            load(&self.cache_stale),
        );
        series(
            "lcmsr_delta_prepares_total",
            "counter",
            "Served queries whose prepare phase was delta-built from the previous session step.",
            load(&self.delta_prepares),
        );
        series(
            "lcmsr_latency_mean_us",
            "gauge",
            "Mean end-to-end query latency, microseconds.",
            format!("{:.1}", self.latency.mean_us()),
        );
        series(
            "lcmsr_latency_p50_us",
            "gauge",
            "Estimated median end-to-end query latency, microseconds.",
            self.latency.quantile_us(0.50).to_string(),
        );
        series(
            "lcmsr_latency_p99_us",
            "gauge",
            "Estimated p99 end-to-end query latency, microseconds.",
            self.latency.quantile_us(0.99).to_string(),
        );
        out.push_str("# HELP lcmsr_latency End-to-end query latency, microseconds.\n");
        out.push_str("# TYPE lcmsr_latency histogram\n");
        for (bound, cumulative) in self.latency.cumulative() {
            let le = if bound == u64::MAX {
                "+Inf".to_string()
            } else {
                bound.to_string()
            };
            out.push_str(&format!(
                "lcmsr_latency_bucket{{le=\"{le}\"}} {cumulative}\n"
            ));
        }
        out.push_str(&format!("lcmsr_latency_sum {}\n", self.latency.total_us()));
        out.push_str(&format!("lcmsr_latency_count {}\n", self.latency.count()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.mean_us(), 0.0);
        // 90 fast observations, 10 slow ones.
        for _ in 0..90 {
            h.record(Duration::from_micros(80));
        }
        for _ in 0..10 {
            h.record(Duration::from_micros(40_000));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.50), 100, "p50 lands in the first bucket");
        assert_eq!(h.quantile_us(0.99), 50_000, "p99 lands in the slow bucket");
        assert!(h.mean_us() > 80.0 && h.mean_us() < 40_000.0);
        // Overflow bucket reports a finite sentinel.
        h.record(Duration::from_secs(60));
        assert_eq!(h.quantile_us(1.0), LATENCY_BOUNDS_US[14] * 2);
        let cumulative = h.cumulative();
        assert_eq!(cumulative.last().unwrap(), &(u64::MAX, 101));
        // Cumulative counts are monotone.
        for pair in cumulative.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn render_exposes_all_series() {
        let m = ServiceMetrics::new();
        m.requests.fetch_add(5, Ordering::Relaxed);
        m.deadline_shed.fetch_add(3, Ordering::Relaxed);
        m.partial.fetch_add(4, Ordering::Relaxed);
        m.batches.fetch_add(2, Ordering::Relaxed);
        m.batched_queries.fetch_add(7, Ordering::Relaxed);
        m.latency.record(Duration::from_millis(3));
        let mut stats = lcmsr_core::stats::RunStats::new("TGEN");
        stats.prepare_time = Duration::from_nanos(900);
        stats.grid_score_time = Duration::from_nanos(600);
        stats.graph_build_time = Duration::from_nanos(250);
        m.record_prepare_split(&stats);
        // One hit, one miss-with-delta, one stale recompute, one classic run.
        let mut hit = lcmsr_core::stats::RunStats::new("TGEN");
        hit.cache = true;
        hit.cache_hit = true;
        m.record_cache_path(&hit);
        let mut miss = lcmsr_core::stats::RunStats::new("TGEN");
        miss.cache = true;
        miss.delta_prepare = true;
        m.record_cache_path(&miss);
        let mut stale = lcmsr_core::stats::RunStats::new("TGEN");
        stale.cache = true;
        stale.cache_stale = true;
        m.record_cache_path(&stale);
        m.record_cache_path(&lcmsr_core::stats::RunStats::new("TGEN"));
        let text = m.render();
        for series in [
            "lcmsr_requests_total 5",
            "lcmsr_queries_total 0",
            "lcmsr_responses_ok_total",
            "lcmsr_responses_client_error_total",
            "lcmsr_shed_total",
            "lcmsr_deadline_shed_total 3",
            "lcmsr_partial_total 4",
            "lcmsr_slow_queries_total 0",
            "lcmsr_traced_queries_total 0",
            "lcmsr_batches_total 2",
            "lcmsr_batched_queries_total 7",
            "lcmsr_mean_batch_size 3.500",
            "lcmsr_queue_depth",
            "lcmsr_prepare_ns_total 900",
            "lcmsr_prepare_grid_score_ns_total 600",
            "lcmsr_prepare_graph_build_ns_total 250",
            "lcmsr_cache_hits_total 1",
            "lcmsr_cache_misses_total 1",
            "lcmsr_cache_stale_total 1",
            "lcmsr_delta_prepares_total 1",
            "lcmsr_latency_sum 3000",
            "lcmsr_latency_count 1",
            "lcmsr_latency_p50_us",
            "lcmsr_latency_p99_us",
            "lcmsr_latency_bucket{le=\"+Inf\"} 1",
        ] {
            assert!(text.contains(series), "missing {series:?} in:\n{text}");
        }
    }

    #[test]
    fn render_is_prometheus_compliant() {
        let m = ServiceMetrics::new();
        m.latency.record(Duration::from_millis(1));
        let text = m.render();
        let mut announced = std::collections::BTreeSet::new();
        for line in text.lines() {
            assert!(!line.trim().is_empty(), "no blank lines in the exposition");
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let name = parts.next().unwrap();
                let kind = parts.next().unwrap();
                assert!(
                    matches!(kind, "counter" | "gauge" | "histogram"),
                    "unknown type {kind:?} in {line:?}"
                );
                // Counters must end in _total per the naming convention.
                if kind == "counter" {
                    assert!(name.ends_with("_total"), "counter {name} missing _total");
                }
                announced.insert(name.to_string());
                continue;
            }
            if line.starts_with("# HELP ") {
                continue;
            }
            // A sample line: `name[{labels}] value` whose metric family was
            // announced by a preceding # TYPE line.
            let (name_and_labels, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable value in {line:?}"
            );
            let name = name_and_labels
                .split('{')
                .next()
                .expect("sample line has a name");
            let family = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .filter(|f| announced.contains(*f))
                .unwrap_or(name);
            assert!(
                announced.contains(family),
                "sample {name} has no # TYPE metadata"
            );
        }
        // The histogram family is present in full.
        assert!(text.contains("# TYPE lcmsr_latency histogram"));
        assert!(text.contains("lcmsr_latency_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lcmsr_latency_sum 1000"));
        assert!(text.contains("lcmsr_latency_count 1"));
    }

    #[test]
    fn mean_batch_size_handles_zero() {
        let m = ServiceMetrics::new();
        assert_eq!(m.mean_batch_size(), 0.0);
    }
}
