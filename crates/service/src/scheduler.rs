//! The micro-batching scheduler: the piece that turns a stream of concurrent
//! single-query HTTP requests into [`LcmsrEngine::run_batch`] /
//! [`LcmsrEngine::run_topk_batch`] calls.
//!
//! Requests park on a bounded MPSC queue.  A dispatcher thread drains up to
//! `max_batch` jobs — or whatever has accumulated when a `max_delay` deadline
//! (started at the first queued job) expires, whichever comes first — groups
//! them by `(algorithm, kind)` and fans each group through the shared
//! engine's batch path.  Each request completes through its own
//! mutex+condvar slot, so HTTP workers block only on their own result.
//!
//! Admission control is the bounded queue: when it is full, [`Scheduler::submit`]
//! returns [`SubmitError::Overloaded`] and the HTTP layer sheds the request
//! with a `503` instead of letting latency collapse for everyone.
//!
//! With `max_batch <= 1` the scheduler degenerates to the **unbatched
//! baseline**: no dispatcher thread, each request runs on its caller's thread
//! with one engine call per request (admission becomes an in-flight cap).
//! The `service_throughput` benchmark compares exactly these two modes.

use crate::metrics::ServiceMetrics;
use lcmsr_core::engine::{Algorithm, LcmsrEngine, QueryResult, TopKResult};
use lcmsr_core::error::{LcmsrError, Result as LcmsrResult};
use lcmsr_core::query::LcmsrQuery;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Scheduler tuning knobs.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Largest batch a single dispatch hands to the engine.  `<= 1` disables
    /// micro-batching entirely (the per-request baseline).
    pub max_batch: usize,
    /// How long the dispatcher waits, measured from the first queued job, for
    /// more jobs to accumulate before dispatching a partial batch.
    pub max_delay: Duration,
    /// Bounded queue capacity; submissions beyond it are shed.
    pub queue_capacity: usize,
    /// Worker threads `run_batch_with` fans a dispatched batch over.
    pub batch_workers: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        BatchConfig {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            queue_capacity: 1024,
            batch_workers: parallelism,
        }
    }
}

/// What kind of answer a job wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Single best region.
    Single,
    /// Top-k regions.
    TopK(usize),
}

/// One query job handed to the scheduler.
#[derive(Debug, Clone)]
pub struct QueryJob {
    /// The validated query.
    pub query: LcmsrQuery,
    /// The algorithm to run.
    pub algorithm: Algorithm,
    /// Single-best or top-k.
    pub kind: JobKind,
}

/// A completed job.
#[derive(Debug, Clone)]
pub enum JobOutput {
    /// Result of a [`JobKind::Single`] job.
    Single(QueryResult),
    /// Result of a [`JobKind::TopK`] job.
    TopK(TopKResult),
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue (or in-flight cap) is full — shed with `503`.
    Overloaded,
    /// The scheduler is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded => write!(f, "service overloaded, request shed"),
            SubmitError::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

/// Per-request completion slot: the HTTP worker parks on the condvar until
/// the dispatcher (or the direct path) publishes the result.
#[derive(Debug, Default)]
struct Slot {
    result: Mutex<Option<LcmsrResult<JobOutput>>>,
    ready: Condvar,
}

impl Slot {
    fn fill(&self, output: LcmsrResult<JobOutput>) {
        let mut guard = self.result.lock().expect("slot poisoned");
        *guard = Some(output);
        self.ready.notify_all();
    }
}

/// A handle to one submitted job; [`Ticket::wait`] blocks until completion.
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Blocks until the job completes and returns its output.
    pub fn wait(self) -> LcmsrResult<JobOutput> {
        let mut guard = self.slot.result.lock().expect("slot poisoned");
        loop {
            if let Some(output) = guard.take() {
                return output;
            }
            guard = self.slot.ready.wait(guard).expect("slot poisoned");
        }
    }
}

struct PendingJob {
    job: QueryJob,
    enqueued: Instant,
    slot: Arc<Slot>,
}

struct QueueState {
    jobs: VecDeque<PendingJob>,
    shutdown: bool,
}

struct SchedulerShared {
    engine: &'static LcmsrEngine<'static>,
    config: BatchConfig,
    queue: Mutex<QueueState>,
    /// Signals the dispatcher that jobs arrived or shutdown was requested.
    wake: Condvar,
    metrics: Arc<ServiceMetrics>,
    /// In-flight cap used by the direct (`max_batch <= 1`) path.
    in_flight: AtomicUsize,
}

/// The micro-batching scheduler over a shared engine.
pub struct Scheduler {
    shared: Arc<SchedulerShared>,
    dispatcher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("config", &self.shared.config)
            .finish_non_exhaustive()
    }
}

impl Scheduler {
    /// Starts a scheduler over `engine`.  With `max_batch > 1` this spawns
    /// the dispatcher thread; otherwise jobs run on their submitters' threads.
    pub fn start(
        engine: &'static LcmsrEngine<'static>,
        config: BatchConfig,
        metrics: Arc<ServiceMetrics>,
    ) -> Self {
        let shared = Arc::new(SchedulerShared {
            engine,
            config,
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
            metrics,
            in_flight: AtomicUsize::new(0),
        });
        let dispatcher = if shared.config.max_batch > 1 {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("lcmsr-dispatcher".into())
                    .spawn(move || dispatcher_loop(&shared))
                    .expect("spawn dispatcher"),
            )
        } else {
            None
        };
        Scheduler {
            shared,
            dispatcher: Mutex::new(dispatcher),
        }
    }

    /// Whether micro-batching is active (false = per-request baseline mode).
    pub fn batching(&self) -> bool {
        self.shared.config.max_batch > 1
    }

    /// Submits a job.  Returns a [`Ticket`] to wait on, or a shed/shutdown
    /// error.  In baseline mode the job is executed before this returns and
    /// the ticket is already complete.
    pub fn submit(&self, job: QueryJob) -> Result<Ticket, SubmitError> {
        if self.batching() {
            self.submit_queued(job)
        } else {
            self.submit_direct(job)
        }
    }

    fn submit_queued(&self, job: QueryJob) -> Result<Ticket, SubmitError> {
        let shared = &self.shared;
        let slot = Arc::new(Slot::default());
        {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            if queue.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if queue.jobs.len() >= shared.config.queue_capacity {
                shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Overloaded);
            }
            queue.jobs.push_back(PendingJob {
                job,
                enqueued: Instant::now(),
                slot: Arc::clone(&slot),
            });
            shared
                .metrics
                .queue_depth
                .store(queue.jobs.len() as u64, Ordering::Relaxed);
        }
        shared.wake.notify_one();
        Ok(Ticket { slot })
    }

    fn submit_direct(&self, job: QueryJob) -> Result<Ticket, SubmitError> {
        let shared = &self.shared;
        if shared.queue.lock().expect("queue poisoned").shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        // The queue-capacity knob doubles as an in-flight cap so the baseline
        // mode sheds under the same pressure the batched mode would.
        let previous = shared.in_flight.fetch_add(1, Ordering::Relaxed);
        if previous >= shared.config.queue_capacity {
            shared.in_flight.fetch_sub(1, Ordering::Relaxed);
            shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Overloaded);
        }
        let slot = Arc::new(Slot::default());
        let output = run_single_job(shared.engine, &job, Duration::ZERO);
        record_batch(&shared.metrics, 1);
        slot.fill(output);
        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
        Ok(Ticket { slot })
    }

    /// Current queue depth (0 in baseline mode).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("queue poisoned").jobs.len()
    }

    /// Stops accepting jobs, drains everything already queued, and joins the
    /// dispatcher.  Idempotent.
    pub fn shutdown(&self) {
        {
            let mut queue = self.shared.queue.lock().expect("queue poisoned");
            queue.shutdown = true;
        }
        self.shared.wake.notify_all();
        if let Some(handle) = self
            .dispatcher
            .lock()
            .expect("dispatcher handle poisoned")
            .take()
        {
            handle.join().expect("dispatcher panicked");
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn record_batch(metrics: &ServiceMetrics, batch_size: usize) {
    metrics.batches.fetch_add(1, Ordering::Relaxed);
    metrics
        .batched_queries
        .fetch_add(batch_size as u64, Ordering::Relaxed);
}

/// The dispatcher: collect → group → execute, until shutdown and drained.
fn dispatcher_loop(shared: &SchedulerShared) {
    loop {
        let batch = collect_batch(shared);
        if batch.is_empty() {
            // Woken with nothing queued: only happens at shutdown.
            return;
        }
        record_batch(&shared.metrics, batch.len());
        execute_batch(shared, batch);
    }
}

/// Blocks for the next batch: waits for a first job, then gives the queue
/// `max_delay` (measured from that first job's arrival) to fill up to
/// `max_batch`.  At shutdown, drains whatever is left without delay.
fn collect_batch(shared: &SchedulerShared) -> Vec<PendingJob> {
    let config = &shared.config;
    let mut queue = shared.queue.lock().expect("queue poisoned");
    loop {
        if !queue.jobs.is_empty() || queue.shutdown {
            break;
        }
        queue = shared.wake.wait(queue).expect("queue poisoned");
    }
    if queue.jobs.is_empty() {
        return Vec::new(); // shutdown with an empty queue
    }
    // The micro-batching window: the deadline starts at the *oldest* queued
    // job, so a request never waits more than max_delay before dispatch.
    let deadline = queue.jobs[0].enqueued + config.max_delay;
    while queue.jobs.len() < config.max_batch && !queue.shutdown {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let (guard, _timeout) = shared
            .wake
            .wait_timeout(queue, deadline - now)
            .expect("queue poisoned");
        queue = guard;
    }
    let take = queue.jobs.len().min(config.max_batch);
    let batch: Vec<PendingJob> = queue.jobs.drain(..take).collect();
    shared
        .metrics
        .queue_depth
        .store(queue.jobs.len() as u64, Ordering::Relaxed);
    batch
}

/// Groups a drained batch by `(algorithm, kind)` and runs each group through
/// the engine's batch path.
fn execute_batch(shared: &SchedulerShared, batch: Vec<PendingJob>) {
    let mut remaining: Vec<Option<PendingJob>> = batch.into_iter().map(Some).collect();
    for i in 0..remaining.len() {
        if remaining[i].is_none() {
            continue;
        }
        let mut group = vec![remaining[i].take().expect("checked above")];
        for candidate in remaining.iter_mut().skip(i + 1) {
            let matches = candidate.as_ref().is_some_and(|c| {
                c.job.kind == group[0].job.kind && c.job.algorithm == group[0].job.algorithm
            });
            if matches {
                group.push(candidate.take().expect("checked above"));
            }
        }
        execute_group(shared, group);
    }
}

/// Runs one homogeneous group.  If the engine's batch path fails (it aborts
/// the whole batch on the first failing query), each query is retried
/// individually so one poisonous request cannot fail its batch-mates.
fn execute_group(shared: &SchedulerShared, group: Vec<PendingJob>) {
    // Queue wait is measured up to the moment *this group* starts executing:
    // in a mixed batch, later groups also wait behind earlier ones, and that
    // time belongs in queue_time, not silently nowhere.
    let dispatched = Instant::now();
    let engine = shared.engine;
    let algorithm = group[0].job.algorithm.clone();
    let kind = group[0].job.kind;
    let workers = shared.config.batch_workers.max(1);
    let queries: Vec<LcmsrQuery> = group.iter().map(|p| p.job.query.clone()).collect();

    let batch_outcome: LcmsrResult<Vec<JobOutput>> = match kind {
        JobKind::Single if queries.len() == 1 => engine
            .run(&queries[0], &algorithm)
            .map(|r| vec![JobOutput::Single(r)]),
        JobKind::Single => engine
            .run_batch_with(&queries, &algorithm, workers)
            .map(|results| results.into_iter().map(JobOutput::Single).collect()),
        JobKind::TopK(k) if queries.len() == 1 => engine
            .run_topk(&queries[0], &algorithm, k)
            .map(|r| vec![JobOutput::TopK(r)]),
        JobKind::TopK(k) => engine
            .run_topk_batch_with(&queries, &algorithm, k, workers)
            .map(|results| results.into_iter().map(JobOutput::TopK).collect()),
    };

    match batch_outcome {
        Ok(outputs) => {
            for (pending, mut output) in group.into_iter().zip(outputs) {
                stamp_queue_time(&mut output, dispatched - pending.enqueued);
                pending.slot.fill(Ok(output));
            }
        }
        Err(_) => {
            // Fault isolation: re-run each query alone so only the offender
            // sees its error.  Queue wait is re-stamped per re-run so the
            // failed batch attempt and the wait behind earlier re-runs do not
            // vanish from the reported durations.
            for pending in group {
                let queued_for = pending.enqueued.elapsed();
                let output = run_single_job(engine, &pending.job, queued_for);
                pending.slot.fill(output);
            }
        }
    }
}

fn stamp_queue_time(output: &mut JobOutput, queued_for: Duration) {
    match output {
        JobOutput::Single(result) => result.stats.queue_time = queued_for,
        JobOutput::TopK(result) => result.stats.queue_time = queued_for,
    }
}

fn run_single_job(
    engine: &LcmsrEngine<'_>,
    job: &QueryJob,
    queued_for: Duration,
) -> Result<JobOutput, LcmsrError> {
    let mut output = match job.kind {
        JobKind::Single => JobOutput::Single(engine.run(&job.query, &job.algorithm)?),
        JobKind::TopK(k) => JobOutput::TopK(engine.run_topk(&job.query, &job.algorithm, k)?),
    };
    stamp_queue_time(&mut output, queued_for);
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leak_engine;
    use lcmsr_core::{GreedyParams, TgenParams};
    use lcmsr_geotext::collection::ObjectCollection;
    use lcmsr_geotext::object::GeoTextObject;
    use lcmsr_roadnet::builder::GraphBuilder;
    use lcmsr_roadnet::geo::Point;

    /// A 5×5 grid with restaurants in one corner, leaked for 'static tests.
    fn leaked_engine() -> &'static LcmsrEngine<'static> {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..5 {
            for x in 0..5 {
                ids.push(b.add_node(Point::new(x as f64 * 100.0, y as f64 * 100.0)));
            }
        }
        for y in 0..5 {
            for x in 0..5 {
                let i = y * 5 + x;
                if x < 4 {
                    b.add_edge(ids[i], ids[i + 1], 100.0).unwrap();
                }
                if y < 4 {
                    b.add_edge(ids[i], ids[i + 5], 100.0).unwrap();
                }
            }
        }
        let network = b.build().unwrap();
        let objects: Vec<GeoTextObject> = [(10.0, 10.0), (110.0, 10.0), (10.0, 110.0)]
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| {
                GeoTextObject::from_keywords(i as u64, Point::new(x, y), ["restaurant"])
            })
            .collect();
        let collection = ObjectCollection::build(&network, objects, 150.0).unwrap();
        leak_engine(network, collection)
    }

    fn job(engine: &LcmsrEngine<'_>, delta: f64, kind: JobKind) -> QueryJob {
        let roi = engine.network().bounding_rect().unwrap().expanded(10.0);
        QueryJob {
            query: LcmsrQuery::new(["restaurant"], delta, roi).unwrap(),
            algorithm: Algorithm::Tgen(TgenParams { alpha: 1.0 }),
            kind,
        }
    }

    fn start(engine: &'static LcmsrEngine<'static>, config: BatchConfig) -> Scheduler {
        Scheduler::start(engine, config, Arc::new(ServiceMetrics::new()))
    }

    #[test]
    fn batched_results_match_direct_engine_calls() {
        let engine = leaked_engine();
        let scheduler = start(
            engine,
            BatchConfig {
                max_batch: 8,
                max_delay: Duration::from_millis(20),
                ..BatchConfig::default()
            },
        );
        let deltas = [100.0, 200.0, 300.0, 150.0, 250.0, 350.0];
        let tickets: Vec<Ticket> = deltas
            .iter()
            .map(|&d| scheduler.submit(job(engine, d, JobKind::Single)).unwrap())
            .collect();
        for (&delta, ticket) in deltas.iter().zip(tickets) {
            let served = match ticket.wait().unwrap() {
                JobOutput::Single(r) => r,
                other => panic!("expected single, got {other:?}"),
            };
            let direct = engine
                .run(
                    &job(engine, delta, JobKind::Single).query,
                    &Algorithm::Tgen(TgenParams { alpha: 1.0 }),
                )
                .unwrap();
            assert_eq!(served.region, direct.region, "delta {delta}");
        }
        scheduler.shutdown();
    }

    #[test]
    fn mixed_kind_batches_group_correctly() {
        let engine = leaked_engine();
        let metrics = Arc::new(ServiceMetrics::new());
        let scheduler = Scheduler::start(
            engine,
            BatchConfig {
                max_batch: 16,
                max_delay: Duration::from_millis(30),
                ..BatchConfig::default()
            },
            Arc::clone(&metrics),
        );
        let mut tickets = Vec::new();
        for i in 0..4 {
            tickets.push((
                JobKind::Single,
                300.0 + i as f64,
                scheduler
                    .submit(job(engine, 300.0 + i as f64, JobKind::Single))
                    .unwrap(),
            ));
            tickets.push((
                JobKind::TopK(2),
                300.0 + i as f64,
                scheduler
                    .submit(job(engine, 300.0 + i as f64, JobKind::TopK(2)))
                    .unwrap(),
            ));
            // A second algorithm in the same window forms its own group.
            let mut greedy = job(engine, 300.0 + i as f64, JobKind::Single);
            greedy.algorithm = Algorithm::Greedy(GreedyParams::default());
            tickets.push((JobKind::Single, -1.0, scheduler.submit(greedy).unwrap()));
        }
        for (kind, delta, ticket) in tickets {
            match (kind, ticket.wait().unwrap()) {
                (JobKind::Single, JobOutput::Single(r)) => {
                    if delta > 0.0 {
                        let direct = engine
                            .run(
                                &job(engine, delta, JobKind::Single).query,
                                &Algorithm::Tgen(TgenParams { alpha: 1.0 }),
                            )
                            .unwrap();
                        assert_eq!(r.region, direct.region);
                    } else {
                        assert!(r.region.is_some());
                    }
                }
                (JobKind::TopK(k), JobOutput::TopK(r)) => {
                    let direct = engine
                        .run_topk(
                            &job(engine, delta, JobKind::TopK(k)).query,
                            &Algorithm::Tgen(TgenParams { alpha: 1.0 }),
                            k,
                        )
                        .unwrap();
                    assert_eq!(r.regions, direct.regions);
                }
                (kind, output) => panic!("kind {kind:?} got mismatched output {output:?}"),
            }
        }
        scheduler.shutdown();
        assert!(metrics.batches.load(Ordering::Relaxed) >= 1);
        assert_eq!(metrics.batched_queries.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn queue_time_is_stamped_on_batched_results() {
        let engine = leaked_engine();
        let scheduler = start(
            engine,
            BatchConfig {
                max_batch: 4,
                max_delay: Duration::from_millis(25),
                ..BatchConfig::default()
            },
        );
        let ticket = scheduler
            .submit(job(engine, 300.0, JobKind::Single))
            .unwrap();
        let JobOutput::Single(result) = ticket.wait().unwrap() else {
            panic!("expected single result");
        };
        // The lone job waited out (most of) the max_delay window.
        assert!(
            result.stats.queue_time >= Duration::from_millis(10),
            "queue_time {:?} should reflect the batching window",
            result.stats.queue_time
        );
        assert!(result.stats.prepare_time + result.stats.solve_time <= result.stats.elapsed);
        scheduler.shutdown();
    }

    #[test]
    fn full_queue_sheds_with_overloaded() {
        let engine = leaked_engine();
        let metrics = Arc::new(ServiceMetrics::new());
        let scheduler = Scheduler::start(
            engine,
            BatchConfig {
                max_batch: 64,
                // A long window so the queue stays full while we overflow it.
                max_delay: Duration::from_millis(500),
                queue_capacity: 2,
                batch_workers: 1,
            },
            Arc::clone(&metrics),
        );
        let t1 = scheduler
            .submit(job(engine, 100.0, JobKind::Single))
            .unwrap();
        let t2 = scheduler
            .submit(job(engine, 200.0, JobKind::Single))
            .unwrap();
        assert_eq!(
            scheduler
                .submit(job(engine, 300.0, JobKind::Single))
                .unwrap_err(),
            SubmitError::Overloaded
        );
        assert_eq!(metrics.shed.load(Ordering::Relaxed), 1);
        assert!(t1.wait().is_ok());
        assert!(t2.wait().is_ok());
        scheduler.shutdown();
        assert!(
            scheduler
                .submit(job(engine, 100.0, JobKind::Single))
                .is_err(),
            "post-shutdown submissions must be refused"
        );
    }

    #[test]
    fn baseline_mode_runs_on_the_caller_thread() {
        let engine = leaked_engine();
        let metrics = Arc::new(ServiceMetrics::new());
        let scheduler = Scheduler::start(
            engine,
            BatchConfig {
                max_batch: 1,
                ..BatchConfig::default()
            },
            Arc::clone(&metrics),
        );
        assert!(!scheduler.batching());
        let ticket = scheduler
            .submit(job(engine, 300.0, JobKind::Single))
            .unwrap();
        let JobOutput::Single(result) = ticket.wait().unwrap() else {
            panic!("expected single result");
        };
        assert_eq!(result.stats.queue_time, Duration::ZERO);
        assert!(result.region.is_some());
        assert_eq!(metrics.batches.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.batched_queries.load(Ordering::Relaxed), 1);
        scheduler.shutdown();
    }

    #[test]
    fn a_failing_query_does_not_poison_its_batch_mates() {
        let engine = leaked_engine();
        let scheduler = start(
            engine,
            BatchConfig {
                max_batch: 8,
                max_delay: Duration::from_millis(30),
                ..BatchConfig::default()
            },
        );
        // Exact over the whole 25-node grid trips GraphTooLargeForExact if the
        // region exceeds the solver cap; craft one failing and two good jobs.
        let good_a = scheduler
            .submit(job(engine, 200.0, JobKind::Single))
            .unwrap();
        let mut exact = job(engine, 200.0, JobKind::Single);
        exact.algorithm = Algorithm::Exact;
        let exact_ticket = scheduler.submit(exact).unwrap();
        let good_b = scheduler
            .submit(job(engine, 300.0, JobKind::Single))
            .unwrap();
        assert!(good_a.wait().is_ok());
        assert!(good_b.wait().is_ok());
        // The Exact job either succeeds (small-enough region) or fails alone —
        // never dragging the TGEN jobs down.  On the 25-node grid it succeeds;
        // force a genuine failure with a huge region instead.
        let _ = exact_ticket.wait();
        scheduler.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let engine = leaked_engine();
        let scheduler = start(
            engine,
            BatchConfig {
                max_batch: 64,
                max_delay: Duration::from_secs(5),
                ..BatchConfig::default()
            },
        );
        // These jobs would sit in the window for 5 s; shutdown must flush them.
        let tickets: Vec<Ticket> = (1..=4)
            .map(|i| {
                scheduler
                    .submit(job(engine, i as f64 * 100.0, JobKind::Single))
                    .unwrap()
            })
            .collect();
        let start = Instant::now();
        scheduler.shutdown();
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
        assert!(
            start.elapsed() < Duration::from_secs(4),
            "shutdown must not wait out the batching window"
        );
    }
}
