//! The micro-batching scheduler: the piece that turns a stream of concurrent
//! single-query HTTP requests into [`LcmsrEngine::execute_batch_with`] calls.
//!
//! Requests park on a bounded two-lane queue: the **interactive** lane is
//! always drained before the **batch** lane, so background bulk work never
//! delays interactive queries within a dispatch window.  A dispatcher thread
//! drains up to `max_batch` jobs — or whatever has accumulated when a
//! `max_delay` window (started at the oldest queued job) expires, whichever
//! comes first — groups them by `(algorithm, kind)` and fans each group
//! through the shared engine's batch path.  Each request completes through
//! its own mutex+condvar slot, so HTTP workers block only on their own
//! result.
//!
//! Admission control is the bounded queue plus **deadline-aware shedding**:
//! when the queue is full, [`Scheduler::submit`] returns
//! [`SubmitError::Overloaded`]; when a job carries a [`Deadline`] that has
//! already expired — or that an EWMA of recent per-query service times
//! predicts will expire before the job can be dispatched — submit returns
//! [`SubmitError::DeadlineUnmeetable`].  Both are shed by the HTTP layer
//! with a `503` + `Retry-After` instead of letting latency collapse for
//! everyone.  Jobs admitted *with* a deadline carry it into the engine, so a
//! deadline that expires mid-solve still yields the solver's best-so-far
//! incumbent (`partial: true`) rather than nothing.
//!
//! With `max_batch <= 1` the scheduler degenerates to the **unbatched
//! baseline**: no dispatcher thread, each request runs on its caller's thread
//! with one engine call per request (admission becomes an in-flight cap).
//! The `service_throughput` benchmark compares exactly these two modes.

use crate::metrics::ServiceMetrics;
use crate::sync::{lock_or_recover, wait_or_recover, wait_timeout_or_recover};
use lcmsr_core::cancel::Deadline;
use lcmsr_core::engine::{
    Algorithm, LcmsrEngine, Priority, QueryOutcome, QueryRequest, QueryResult, TopKResult,
};
use lcmsr_core::error::{LcmsrError, Result as LcmsrResult};
use lcmsr_core::query::LcmsrQuery;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Scheduler tuning knobs.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Largest batch a single dispatch hands to the engine.  `<= 1` disables
    /// micro-batching entirely (the per-request baseline).
    pub max_batch: usize,
    /// How long the dispatcher waits, measured from the first queued job, for
    /// more jobs to accumulate before dispatching a partial batch.
    pub max_delay: Duration,
    /// Bounded queue capacity; submissions beyond it are shed.
    pub queue_capacity: usize,
    /// Worker threads `run_batch_with` fans a dispatched batch over.
    pub batch_workers: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        let parallelism =
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        BatchConfig {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            queue_capacity: 1024,
            batch_workers: parallelism,
        }
    }
}

/// What kind of answer a job wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Single best region.
    Single,
    /// Top-k regions.
    TopK(usize),
}

/// One query job handed to the scheduler.
#[derive(Debug, Clone)]
pub struct QueryJob {
    /// The validated query.
    pub query: LcmsrQuery,
    /// The algorithm to run.
    pub algorithm: Algorithm,
    /// Single-best or top-k.
    pub kind: JobKind,
    /// Scheduling lane: interactive jobs always dispatch before batch jobs.
    pub priority: Priority,
    /// Optional deadline, stamped when the request entered the service so
    /// queue wait counts against the budget.
    pub deadline: Option<Deadline>,
    /// Run with span tracing enabled (decided by the service's diagnostics
    /// sampling at admission; inert collector when false).
    pub trace: bool,
    /// Run in cache mode: consult the engine's response cache and keep
    /// session scratch for incremental re-query.  The service defaults this
    /// on for the interactive lane.
    pub cache: bool,
}

impl QueryJob {
    /// An interactive, deadline-free, untraced job (the common case).
    pub fn new(query: LcmsrQuery, algorithm: Algorithm, kind: JobKind) -> Self {
        QueryJob {
            query,
            algorithm,
            kind,
            priority: Priority::Interactive,
            deadline: None,
            trace: false,
            cache: false,
        }
    }
}

/// A completed job.
#[derive(Debug, Clone)]
pub enum JobOutput {
    /// Result of a [`JobKind::Single`] job.
    Single(QueryResult),
    /// Result of a [`JobKind::TopK`] job.
    TopK(TopKResult),
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue (or in-flight cap) is full — shed with `503`.
    Overloaded,
    /// The job's deadline has already expired, or the predicted queue wait
    /// exceeds what is left of it — shed with `503` + `Retry-After` now
    /// instead of burning engine time on an answer nobody is waiting for.
    DeadlineUnmeetable,
    /// The scheduler is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded => write!(f, "service overloaded, request shed"),
            SubmitError::DeadlineUnmeetable => {
                write!(f, "deadline unmeetable given queue wait, request shed")
            }
            SubmitError::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

/// Per-request completion slot: the HTTP worker parks on the condvar until
/// the dispatcher (or the direct path) publishes the result.
#[derive(Debug, Default)]
struct Slot {
    result: Mutex<Option<LcmsrResult<JobOutput>>>,
    ready: Condvar,
}

impl Slot {
    fn fill(&self, output: LcmsrResult<JobOutput>) {
        let mut guard = lock_or_recover(&self.result);
        *guard = Some(output);
        self.ready.notify_all();
    }
}

/// A handle to one submitted job; [`Ticket::wait`] blocks until completion.
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Blocks until the job completes and returns its output.
    pub fn wait(self) -> LcmsrResult<JobOutput> {
        let mut guard = lock_or_recover(&self.slot.result);
        loop {
            if let Some(output) = guard.take() {
                return output;
            }
            guard = wait_or_recover(&self.slot.ready, guard);
        }
    }
}

struct PendingJob {
    job: QueryJob,
    enqueued: Instant,
    slot: Arc<Slot>,
}

struct QueueState {
    /// Interactive lane: always drained first.
    interactive: VecDeque<PendingJob>,
    /// Batch lane: drained only after the interactive lane is empty.
    batch: VecDeque<PendingJob>,
    shutdown: bool,
}

impl QueueState {
    fn len(&self) -> usize {
        self.interactive.len() + self.batch.len()
    }

    fn is_empty(&self) -> bool {
        self.interactive.is_empty() && self.batch.is_empty()
    }

    /// Arrival instant of the oldest queued job across both lanes (the
    /// micro-batching window is anchored there).
    fn oldest_enqueued(&self) -> Option<Instant> {
        match (self.interactive.front(), self.batch.front()) {
            (Some(a), Some(b)) => Some(a.enqueued.min(b.enqueued)),
            (Some(a), None) => Some(a.enqueued),
            (None, Some(b)) => Some(b.enqueued),
            (None, None) => None,
        }
    }

    fn pop_next(&mut self) -> Option<PendingJob> {
        self.interactive
            .pop_front()
            .or_else(|| self.batch.pop_front())
    }
}

struct SchedulerShared {
    engine: &'static LcmsrEngine<'static>,
    config: BatchConfig,
    queue: Mutex<QueueState>,
    /// Signals the dispatcher that jobs arrived or shutdown was requested.
    wake: Condvar,
    metrics: Arc<ServiceMetrics>,
    /// In-flight cap used by the direct (`max_batch <= 1`) path.
    in_flight: AtomicUsize,
    /// EWMA (α = 1/8) of per-query engine service time in nanoseconds;
    /// 0 until the first dispatch completes.  Feeds the predictive half of
    /// deadline-aware shedding.
    service_time_ns: AtomicU64,
}

impl SchedulerShared {
    /// Whether a deadline is definitely or predictably unmeetable: already
    /// expired, or the EWMA-predicted wait behind `queued_ahead` jobs exceeds
    /// what is left of the budget.  With no service-time sample yet the
    /// prediction abstains (admit optimistically).
    fn deadline_unmeetable(&self, deadline: &Deadline, queued_ahead: usize) -> bool {
        if deadline.expired() {
            return true;
        }
        let ewma = self.service_time_ns.load(Ordering::Relaxed);
        if ewma == 0 || queued_ahead == 0 {
            return false;
        }
        let workers = self.config.batch_workers.max(1) as u64;
        let predicted_wait =
            Duration::from_nanos(ewma.saturating_mul(queued_ahead as u64) / workers);
        deadline.remaining() <= predicted_wait
    }
}

/// How long a shed client should wait before retrying, in whole seconds:
/// the EWMA-predicted time to drain the current queue across the workers,
/// rounded up and clamped to `[1, 30]`.  With no service-time sample yet (or
/// an empty queue) the estimate is the floor of 1 s.
fn retry_after_from(ewma_ns: u64, queued: usize, workers: usize) -> u64 {
    let workers = workers.max(1) as u64;
    let drain_ns = ewma_ns.saturating_mul(queued as u64) / workers;
    let secs = drain_ns.div_ceil(1_000_000_000);
    secs.clamp(1, 30)
}

/// Folds one dispatch into the service-time EWMA (α = 1/8; the first sample
/// seeds it directly).
fn record_service_time(shared: &SchedulerShared, elapsed: Duration, queries: usize) {
    let per_query = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX) / queries.max(1) as u64;
    let old = shared.service_time_ns.load(Ordering::Relaxed);
    let new = if old == 0 {
        per_query
    } else {
        old - old / 8 + per_query / 8
    };
    shared.service_time_ns.store(new, Ordering::Relaxed);
}

/// The micro-batching scheduler over a shared engine.
pub struct Scheduler {
    shared: Arc<SchedulerShared>,
    dispatcher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("config", &self.shared.config)
            .finish_non_exhaustive()
    }
}

impl Scheduler {
    /// Starts a scheduler over `engine`.  With `max_batch > 1` this spawns
    /// the dispatcher thread; otherwise jobs run on their submitters'
    /// threads.  Errors if the dispatcher thread cannot be spawned.
    pub fn start(
        engine: &'static LcmsrEngine<'static>,
        config: BatchConfig,
        metrics: Arc<ServiceMetrics>,
    ) -> std::io::Result<Self> {
        let shared = Arc::new(SchedulerShared {
            engine,
            config,
            queue: Mutex::new(QueueState {
                interactive: VecDeque::new(),
                batch: VecDeque::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
            metrics,
            in_flight: AtomicUsize::new(0),
            service_time_ns: AtomicU64::new(0),
        });
        let dispatcher = if shared.config.max_batch > 1 {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("lcmsr-dispatcher".into())
                    .spawn(move || dispatcher_loop(&shared))?,
            )
        } else {
            None
        };
        Ok(Scheduler {
            shared,
            dispatcher: Mutex::new(dispatcher),
        })
    }

    /// Whether micro-batching is active (false = per-request baseline mode).
    pub fn batching(&self) -> bool {
        self.shared.config.max_batch > 1
    }

    /// Submits a job.  Returns a [`Ticket`] to wait on, or a shed/shutdown
    /// error.  In baseline mode the job is executed before this returns and
    /// the ticket is already complete.
    pub fn submit(&self, job: QueryJob) -> Result<Ticket, SubmitError> {
        if self.batching() {
            self.submit_queued(job)
        } else {
            self.submit_direct(&job)
        }
    }

    fn submit_queued(&self, job: QueryJob) -> Result<Ticket, SubmitError> {
        let shared = &self.shared;
        let slot = Arc::new(Slot::default());
        {
            let mut queue = lock_or_recover(&shared.queue);
            if queue.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if queue.len() >= shared.config.queue_capacity {
                shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Overloaded);
            }
            if let Some(deadline) = &job.deadline {
                if shared.deadline_unmeetable(deadline, queue.len()) {
                    shared.metrics.deadline_shed.fetch_add(1, Ordering::Relaxed);
                    return Err(SubmitError::DeadlineUnmeetable);
                }
            }
            let pending = PendingJob {
                job,
                enqueued: Instant::now(),
                slot: Arc::clone(&slot),
            };
            match pending.job.priority {
                Priority::Interactive => queue.interactive.push_back(pending),
                Priority::Batch => queue.batch.push_back(pending),
            }
            shared
                .metrics
                .queue_depth
                .store(queue.len() as u64, Ordering::Relaxed);
        }
        shared.wake.notify_one();
        Ok(Ticket { slot })
    }

    fn submit_direct(&self, job: &QueryJob) -> Result<Ticket, SubmitError> {
        let shared = &self.shared;
        if lock_or_recover(&shared.queue).shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        // The queue-capacity knob doubles as an in-flight cap so the baseline
        // mode sheds under the same pressure the batched mode would.
        let previous = shared.in_flight.fetch_add(1, Ordering::Relaxed);
        if previous >= shared.config.queue_capacity {
            shared.in_flight.fetch_sub(1, Ordering::Relaxed);
            shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Overloaded);
        }
        // The direct path runs immediately, so only a definitely-expired
        // deadline is shed (there is no queue wait to predict).
        if let Some(deadline) = &job.deadline {
            if deadline.expired() {
                shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                shared.metrics.deadline_shed.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::DeadlineUnmeetable);
            }
        }
        let slot = Arc::new(Slot::default());
        let started = Instant::now();
        let output = run_single_job(shared.engine, job, Duration::ZERO);
        record_service_time(shared, started.elapsed(), 1);
        record_batch(&shared.metrics, 1);
        slot.fill(output);
        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
        Ok(Ticket { slot })
    }

    /// Current queue depth across both lanes (0 in baseline mode).
    pub fn queue_depth(&self) -> usize {
        lock_or_recover(&self.shared.queue).len()
    }

    /// `Retry-After` estimate for shed responses, in whole seconds: how long
    /// the EWMA of recent per-query service times predicts the current
    /// backlog (queue depth, or in-flight count in baseline mode) takes to
    /// drain across the batch workers, clamped to `[1, 30]`.
    pub fn retry_after_secs(&self) -> u64 {
        let shared = &self.shared;
        let queued = if self.batching() {
            lock_or_recover(&shared.queue).len()
        } else {
            shared.in_flight.load(Ordering::Relaxed)
        };
        retry_after_from(
            shared.service_time_ns.load(Ordering::Relaxed),
            queued,
            shared.config.batch_workers,
        )
    }

    /// Stops accepting jobs, drains everything already queued, and joins the
    /// dispatcher.  Idempotent.
    pub fn shutdown(&self) {
        {
            let mut queue = lock_or_recover(&self.shared.queue);
            queue.shutdown = true;
        }
        self.shared.wake.notify_all();
        // lcmsr-lint: allow(lock_nesting) — the queue guard above died at its
        // block's closing brace, so it can never overlap the handle guard.
        let handle = lock_or_recover(&self.dispatcher).take();
        if let Some(handle) = handle {
            // An Err here means the dispatcher itself panicked; the panic has
            // already been reported on stderr and shutdown must not amplify
            // it into a second panic on the caller's thread.
            let _ = handle.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn record_batch(metrics: &ServiceMetrics, batch_size: usize) {
    metrics.batches.fetch_add(1, Ordering::Relaxed);
    metrics
        .batched_queries
        .fetch_add(batch_size as u64, Ordering::Relaxed);
}

/// The dispatcher: collect → group → execute, until shutdown and drained.
fn dispatcher_loop(shared: &SchedulerShared) {
    loop {
        let batch = collect_batch(shared);
        if batch.is_empty() {
            // Woken with nothing queued: only happens at shutdown.
            return;
        }
        record_batch(&shared.metrics, batch.len());
        execute_batch(shared, batch);
    }
}

/// Blocks for the next batch: waits for a first job, then gives the queue
/// `max_delay` (measured from that first job's arrival) to fill up to
/// `max_batch`.  At shutdown, drains whatever is left without delay.
fn collect_batch(shared: &SchedulerShared) -> Vec<PendingJob> {
    let config = &shared.config;
    let mut queue = lock_or_recover(&shared.queue);
    loop {
        if !queue.is_empty() || queue.shutdown {
            break;
        }
        queue = wait_or_recover(&shared.wake, queue);
    }
    // The micro-batching window: the deadline starts at the *oldest* queued
    // job, so a request never waits more than max_delay before dispatch.  An
    // empty queue here means shutdown with nothing left to drain.
    let Some(oldest) = queue.oldest_enqueued() else {
        return Vec::new();
    };
    let deadline = oldest + config.max_delay;
    while queue.len() < config.max_batch && !queue.shutdown {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let (guard, _timeout) = wait_timeout_or_recover(&shared.wake, queue, deadline - now);
        queue = guard;
    }
    // Interactive preempts batch: the interactive lane empties into the
    // dispatch before the batch lane contributes anything.
    let take = queue.len().min(config.max_batch);
    let mut batch = Vec::with_capacity(take);
    while batch.len() < take {
        match queue.pop_next() {
            Some(pending) => batch.push(pending),
            None => break,
        }
    }
    shared
        .metrics
        .queue_depth
        .store(queue.len() as u64, Ordering::Relaxed);
    batch
}

/// Groups a drained batch by `(algorithm, kind)` and runs each group through
/// the engine's batch path.
fn execute_batch(shared: &SchedulerShared, batch: Vec<PendingJob>) {
    let mut remaining: Vec<Option<PendingJob>> = batch.into_iter().map(Some).collect();
    for i in 0..remaining.len() {
        let Some(first) = remaining[i].take() else {
            continue;
        };
        let mut group = vec![first];
        for candidate in remaining.iter_mut().skip(i + 1) {
            let matches = candidate.as_ref().is_some_and(|c| {
                c.job.kind == group[0].job.kind && c.job.algorithm == group[0].job.algorithm
            });
            if matches {
                group.extend(candidate.take());
            }
        }
        execute_group(shared, group);
    }
}

/// Builds the engine-level request for a job.  The job's own deadline rides
/// along: the engine polls per member, so within a dispatched group the
/// *tightest* member deadline is what effectively bounds the group's engine
/// time, while looser members still run out their own budgets.
fn build_request(job: &QueryJob) -> QueryRequest<'_> {
    let mut request = QueryRequest::new(&job.query, job.algorithm.clone())
        .priority(job.priority)
        .trace(job.trace)
        .cache(job.cache);
    if let JobKind::TopK(k) = job.kind {
        request = request.top_k(k);
    }
    if let Some(deadline) = job.deadline {
        request = request.deadline(deadline);
    }
    request
}

/// Shapes an engine outcome into the job's requested output form.
fn into_output(outcome: QueryOutcome, kind: JobKind) -> JobOutput {
    match kind {
        JobKind::Single => JobOutput::Single(outcome.into_single()),
        JobKind::TopK(_) => JobOutput::TopK(outcome.into_topk()),
    }
}

/// Runs one homogeneous group.  If the engine's batch path fails (it aborts
/// the whole batch on the first failing query), each query is retried
/// individually so one poisonous request cannot fail its batch-mates.
fn execute_group(shared: &SchedulerShared, group: Vec<PendingJob>) {
    // Queue wait is measured up to the moment *this group* starts executing:
    // in a mixed batch, later groups also wait behind earlier ones, and that
    // time belongs in queue_time, not silently nowhere.
    let dispatched = Instant::now();
    let engine = shared.engine;
    let workers = shared.config.batch_workers.max(1);
    let requests: Vec<QueryRequest<'_>> = group.iter().map(|p| build_request(&p.job)).collect();

    let batch_outcome: LcmsrResult<Vec<QueryOutcome>> = if requests.len() == 1 {
        engine.execute(&requests[0]).map(|outcome| vec![outcome])
    } else {
        engine.execute_batch_with(&requests, workers)
    };
    drop(requests);

    match batch_outcome {
        Ok(outcomes) => {
            record_service_time(shared, dispatched.elapsed(), group.len());
            for (pending, outcome) in group.into_iter().zip(outcomes) {
                let mut output = into_output(outcome, pending.job.kind);
                stamp_queue_time(&mut output, dispatched - pending.enqueued);
                pending.slot.fill(Ok(output));
            }
        }
        Err(_) => {
            // Fault isolation: re-run each query alone so only the offender
            // sees its error.  Queue wait is re-stamped per re-run so the
            // failed batch attempt and the wait behind earlier re-runs do not
            // vanish from the reported durations.
            for pending in group {
                let queued_for = pending.enqueued.elapsed();
                let output = run_single_job(engine, &pending.job, queued_for);
                pending.slot.fill(output);
            }
        }
    }
}

fn stamp_queue_time(output: &mut JobOutput, queued_for: Duration) {
    match output {
        JobOutput::Single(result) => result.stats.queue_time = queued_for,
        JobOutput::TopK(result) => result.stats.queue_time = queued_for,
    }
}

fn run_single_job(
    engine: &LcmsrEngine<'_>,
    job: &QueryJob,
    queued_for: Duration,
) -> Result<JobOutput, LcmsrError> {
    let outcome = engine.execute(&build_request(job))?;
    let mut output = into_output(outcome, job.kind);
    stamp_queue_time(&mut output, queued_for);
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leak_engine;
    use lcmsr_core::{GreedyParams, TgenParams};
    use lcmsr_geotext::collection::ObjectCollection;
    use lcmsr_geotext::object::GeoTextObject;
    use lcmsr_roadnet::builder::GraphBuilder;
    use lcmsr_roadnet::geo::Point;

    /// A 5×5 grid with restaurants in one corner, leaked for 'static tests.
    fn leaked_engine() -> &'static LcmsrEngine<'static> {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..5 {
            for x in 0..5 {
                ids.push(b.add_node(Point::new(x as f64 * 100.0, y as f64 * 100.0)));
            }
        }
        for y in 0..5 {
            for x in 0..5 {
                let i = y * 5 + x;
                if x < 4 {
                    b.add_edge(ids[i], ids[i + 1], 100.0).unwrap();
                }
                if y < 4 {
                    b.add_edge(ids[i], ids[i + 5], 100.0).unwrap();
                }
            }
        }
        let network = b.build().unwrap();
        let objects: Vec<GeoTextObject> = [(10.0, 10.0), (110.0, 10.0), (10.0, 110.0)]
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| {
                GeoTextObject::from_keywords(i as u64, Point::new(x, y), ["restaurant"])
            })
            .collect();
        let collection = ObjectCollection::build(&network, objects, 150.0).unwrap();
        leak_engine(network, collection)
    }

    fn job(engine: &LcmsrEngine<'_>, delta: f64, kind: JobKind) -> QueryJob {
        let roi = engine.network().bounding_rect().unwrap().expanded(10.0);
        QueryJob::new(
            LcmsrQuery::new(["restaurant"], delta, roi).unwrap(),
            Algorithm::Tgen(TgenParams { alpha: 1.0 }),
            kind,
        )
    }

    /// Direct engine answer for comparison against served results.
    fn direct_single(engine: &LcmsrEngine<'_>, query: &LcmsrQuery) -> QueryResult {
        engine
            .execute(&QueryRequest::new(
                query,
                Algorithm::Tgen(TgenParams { alpha: 1.0 }),
            ))
            .unwrap()
            .into_single()
    }

    fn start(engine: &'static LcmsrEngine<'static>, config: BatchConfig) -> Scheduler {
        Scheduler::start(engine, config, Arc::new(ServiceMetrics::new())).unwrap()
    }

    #[test]
    fn batched_results_match_direct_engine_calls() {
        let engine = leaked_engine();
        let scheduler = start(
            engine,
            BatchConfig {
                max_batch: 8,
                max_delay: Duration::from_millis(20),
                ..BatchConfig::default()
            },
        );
        let deltas = [100.0, 200.0, 300.0, 150.0, 250.0, 350.0];
        let tickets: Vec<Ticket> = deltas
            .iter()
            .map(|&d| scheduler.submit(job(engine, d, JobKind::Single)).unwrap())
            .collect();
        for (&delta, ticket) in deltas.iter().zip(tickets) {
            let served = match ticket.wait().unwrap() {
                JobOutput::Single(r) => r,
                other => panic!("expected single, got {other:?}"),
            };
            let direct = direct_single(engine, &job(engine, delta, JobKind::Single).query);
            assert_eq!(served.region, direct.region, "delta {delta}");
        }
        scheduler.shutdown();
    }

    #[test]
    fn mixed_kind_batches_group_correctly() {
        let engine = leaked_engine();
        let metrics = Arc::new(ServiceMetrics::new());
        let scheduler = Scheduler::start(
            engine,
            BatchConfig {
                max_batch: 16,
                max_delay: Duration::from_millis(30),
                ..BatchConfig::default()
            },
            Arc::clone(&metrics),
        )
        .unwrap();
        let mut tickets = Vec::new();
        for i in 0..4 {
            tickets.push((
                JobKind::Single,
                300.0 + i as f64,
                scheduler
                    .submit(job(engine, 300.0 + i as f64, JobKind::Single))
                    .unwrap(),
            ));
            tickets.push((
                JobKind::TopK(2),
                300.0 + i as f64,
                scheduler
                    .submit(job(engine, 300.0 + i as f64, JobKind::TopK(2)))
                    .unwrap(),
            ));
            // A second algorithm in the same window forms its own group.
            let mut greedy = job(engine, 300.0 + i as f64, JobKind::Single);
            greedy.algorithm = Algorithm::Greedy(GreedyParams::default());
            tickets.push((JobKind::Single, -1.0, scheduler.submit(greedy).unwrap()));
        }
        for (kind, delta, ticket) in tickets {
            match (kind, ticket.wait().unwrap()) {
                (JobKind::Single, JobOutput::Single(r)) => {
                    if delta > 0.0 {
                        let direct =
                            direct_single(engine, &job(engine, delta, JobKind::Single).query);
                        assert_eq!(r.region, direct.region);
                    } else {
                        assert!(r.region.is_some());
                    }
                }
                (JobKind::TopK(k), JobOutput::TopK(r)) => {
                    let query = job(engine, delta, JobKind::TopK(k)).query;
                    let direct = engine
                        .execute(
                            &QueryRequest::new(&query, Algorithm::Tgen(TgenParams { alpha: 1.0 }))
                                .top_k(k),
                        )
                        .unwrap()
                        .into_topk();
                    assert_eq!(r.regions, direct.regions);
                }
                (kind, output) => panic!("kind {kind:?} got mismatched output {output:?}"),
            }
        }
        scheduler.shutdown();
        assert!(metrics.batches.load(Ordering::Relaxed) >= 1);
        assert_eq!(metrics.batched_queries.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn queue_time_is_stamped_on_batched_results() {
        let engine = leaked_engine();
        let scheduler = start(
            engine,
            BatchConfig {
                max_batch: 4,
                max_delay: Duration::from_millis(25),
                ..BatchConfig::default()
            },
        );
        let ticket = scheduler
            .submit(job(engine, 300.0, JobKind::Single))
            .unwrap();
        let JobOutput::Single(result) = ticket.wait().unwrap() else {
            panic!("expected single result");
        };
        // The lone job waited out (most of) the max_delay window.
        assert!(
            result.stats.queue_time >= Duration::from_millis(10),
            "queue_time {:?} should reflect the batching window",
            result.stats.queue_time
        );
        assert!(result.stats.prepare_time + result.stats.solve_time <= result.stats.elapsed);
        scheduler.shutdown();
    }

    #[test]
    fn full_queue_sheds_with_overloaded() {
        let engine = leaked_engine();
        let metrics = Arc::new(ServiceMetrics::new());
        let scheduler = Scheduler::start(
            engine,
            BatchConfig {
                max_batch: 64,
                // A long window so the queue stays full while we overflow it.
                max_delay: Duration::from_millis(500),
                queue_capacity: 2,
                batch_workers: 1,
            },
            Arc::clone(&metrics),
        )
        .unwrap();
        let t1 = scheduler
            .submit(job(engine, 100.0, JobKind::Single))
            .unwrap();
        let t2 = scheduler
            .submit(job(engine, 200.0, JobKind::Single))
            .unwrap();
        assert_eq!(
            scheduler
                .submit(job(engine, 300.0, JobKind::Single))
                .unwrap_err(),
            SubmitError::Overloaded
        );
        assert_eq!(metrics.shed.load(Ordering::Relaxed), 1);
        assert!(t1.wait().is_ok());
        assert!(t2.wait().is_ok());
        scheduler.shutdown();
        assert!(
            scheduler
                .submit(job(engine, 100.0, JobKind::Single))
                .is_err(),
            "post-shutdown submissions must be refused"
        );
    }

    #[test]
    fn baseline_mode_runs_on_the_caller_thread() {
        let engine = leaked_engine();
        let metrics = Arc::new(ServiceMetrics::new());
        let scheduler = Scheduler::start(
            engine,
            BatchConfig {
                max_batch: 1,
                ..BatchConfig::default()
            },
            Arc::clone(&metrics),
        )
        .unwrap();
        assert!(!scheduler.batching());
        let ticket = scheduler
            .submit(job(engine, 300.0, JobKind::Single))
            .unwrap();
        let JobOutput::Single(result) = ticket.wait().unwrap() else {
            panic!("expected single result");
        };
        assert_eq!(result.stats.queue_time, Duration::ZERO);
        assert!(result.region.is_some());
        assert_eq!(metrics.batches.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.batched_queries.load(Ordering::Relaxed), 1);
        scheduler.shutdown();
    }

    #[test]
    fn a_failing_query_does_not_poison_its_batch_mates() {
        let engine = leaked_engine();
        let scheduler = start(
            engine,
            BatchConfig {
                max_batch: 8,
                max_delay: Duration::from_millis(30),
                ..BatchConfig::default()
            },
        );
        // Exact over the whole 25-node grid trips GraphTooLargeForExact if the
        // region exceeds the solver cap; craft one failing and two good jobs.
        let good_a = scheduler
            .submit(job(engine, 200.0, JobKind::Single))
            .unwrap();
        let mut exact = job(engine, 200.0, JobKind::Single);
        exact.algorithm = Algorithm::Exact;
        let exact_ticket = scheduler.submit(exact).unwrap();
        let good_b = scheduler
            .submit(job(engine, 300.0, JobKind::Single))
            .unwrap();
        assert!(good_a.wait().is_ok());
        assert!(good_b.wait().is_ok());
        // The Exact job either succeeds (small-enough region) or fails alone —
        // never dragging the TGEN jobs down.  On the 25-node grid it succeeds;
        // force a genuine failure with a huge region instead.
        let _ = exact_ticket.wait();
        scheduler.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let engine = leaked_engine();
        let scheduler = start(
            engine,
            BatchConfig {
                max_batch: 64,
                max_delay: Duration::from_secs(5),
                ..BatchConfig::default()
            },
        );
        // These jobs would sit in the window for 5 s; shutdown must flush them.
        let tickets: Vec<Ticket> = (1..=4)
            .map(|i| {
                scheduler
                    .submit(job(engine, i as f64 * 100.0, JobKind::Single))
                    .unwrap()
            })
            .collect();
        let start = Instant::now();
        scheduler.shutdown();
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
        assert!(
            start.elapsed() < Duration::from_secs(4),
            "shutdown must not wait out the batching window"
        );
    }

    fn bare_shared(engine: &'static LcmsrEngine<'static>, config: BatchConfig) -> SchedulerShared {
        SchedulerShared {
            engine,
            config,
            queue: Mutex::new(QueueState {
                interactive: VecDeque::new(),
                batch: VecDeque::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
            metrics: Arc::new(ServiceMetrics::new()),
            in_flight: AtomicUsize::new(0),
            service_time_ns: AtomicU64::new(0),
        }
    }

    fn pending(engine: &LcmsrEngine<'_>, delta: f64, priority: Priority) -> PendingJob {
        PendingJob {
            job: QueryJob {
                priority,
                ..job(engine, delta, JobKind::Single)
            },
            enqueued: Instant::now(),
            slot: Arc::new(Slot::default()),
        }
    }

    #[test]
    fn collect_batch_drains_interactive_before_batch() {
        let engine = leaked_engine();
        let shared = bare_shared(
            engine,
            BatchConfig {
                max_batch: 2,
                max_delay: Duration::ZERO,
                ..BatchConfig::default()
            },
        );
        {
            let mut queue = shared.queue.lock().unwrap();
            queue
                .batch
                .push_back(pending(engine, 100.0, Priority::Batch));
            queue
                .batch
                .push_back(pending(engine, 200.0, Priority::Batch));
            queue
                .interactive
                .push_back(pending(engine, 300.0, Priority::Interactive));
        }
        let first = collect_batch(&shared);
        assert_eq!(first.len(), 2);
        assert_eq!(
            first[0].job.query.delta, 300.0,
            "the interactive job must jump ahead of earlier batch-lane jobs"
        );
        assert_eq!(first[1].job.query.delta, 100.0);
        let second = collect_batch(&shared);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].job.query.delta, 200.0);
    }

    #[test]
    fn expired_deadline_is_shed_at_submit() {
        let engine = leaked_engine();
        let metrics = Arc::new(ServiceMetrics::new());
        let scheduler =
            Scheduler::start(engine, BatchConfig::default(), Arc::clone(&metrics)).unwrap();
        let mut doomed = job(engine, 300.0, JobKind::Single);
        doomed.deadline = Some(Deadline::after(Duration::ZERO));
        assert_eq!(
            scheduler.submit(doomed).unwrap_err(),
            SubmitError::DeadlineUnmeetable
        );
        assert_eq!(metrics.deadline_shed.load(Ordering::Relaxed), 1);
        scheduler.shutdown();
        // The direct (baseline) path sheds the same way.
        let direct = Scheduler::start(
            engine,
            BatchConfig {
                max_batch: 1,
                ..BatchConfig::default()
            },
            Arc::clone(&metrics),
        )
        .unwrap();
        let mut doomed = job(engine, 300.0, JobKind::Single);
        doomed.deadline = Some(Deadline::after(Duration::ZERO));
        assert_eq!(
            direct.submit(doomed).unwrap_err(),
            SubmitError::DeadlineUnmeetable
        );
        assert_eq!(metrics.deadline_shed.load(Ordering::Relaxed), 2);
        direct.shutdown();
    }

    #[test]
    fn predicted_queue_wait_sheds_tight_deadlines() {
        let engine = leaked_engine();
        let shared = bare_shared(
            engine,
            BatchConfig {
                batch_workers: 1,
                ..BatchConfig::default()
            },
        );
        // A 10s-per-query service history with one job already queued.
        shared
            .service_time_ns
            .store(10_000_000_000, Ordering::Relaxed);
        let tight = Deadline::after(Duration::from_secs(1));
        assert!(shared.deadline_unmeetable(&tight, 1));
        // A generous deadline is admitted.
        let loose = Deadline::after(Duration::from_secs(60));
        assert!(!shared.deadline_unmeetable(&loose, 1));
        // An empty queue admits any unexpired deadline.
        assert!(!shared.deadline_unmeetable(&tight, 0));
        // With no service-time sample the prediction abstains.
        shared.service_time_ns.store(0, Ordering::Relaxed);
        assert!(!shared.deadline_unmeetable(&tight, 5));
    }

    #[test]
    fn deadline_expiring_in_queue_yields_a_partial_result() {
        let engine = leaked_engine();
        let scheduler = start(
            engine,
            BatchConfig {
                max_batch: 8,
                max_delay: Duration::from_millis(40),
                ..BatchConfig::default()
            },
        );
        let mut doomed = job(engine, 300.0, JobKind::Single);
        // Unexpired at submit, long gone by the time the 40 ms window closes.
        doomed.deadline = Some(Deadline::after(Duration::from_millis(2)));
        let ticket = scheduler.submit(doomed).unwrap();
        let JobOutput::Single(result) = ticket.wait().unwrap() else {
            panic!("expected single result");
        };
        assert!(
            result.stats.partial,
            "a deadline blown in the queue must yield a best-so-far partial answer"
        );
        assert_eq!(
            result.stats.partial_cause.map(|c| c.as_str()),
            Some("deadline_exceeded")
        );
        scheduler.shutdown();
    }

    #[test]
    fn retry_after_tracks_the_predicted_drain_time() {
        // No history yet: the floor of 1 s, never 0.
        assert_eq!(retry_after_from(0, 100, 4), 1);
        // An empty queue drains instantly: still the 1 s floor.
        assert_eq!(retry_after_from(5_000_000_000, 0, 4), 1);
        // 2 s per query, 4 queued, 1 worker → 8 s predicted drain.
        assert_eq!(retry_after_from(2_000_000_000, 4, 1), 8);
        // The same backlog across 4 workers drains in a quarter the time.
        assert_eq!(retry_after_from(2_000_000_000, 4, 4), 2);
        // Fractional seconds round up, not down.
        assert_eq!(retry_after_from(1_500_000_000, 1, 1), 2);
        // A pathological backlog is clamped to the 30 s ceiling.
        assert_eq!(retry_after_from(10_000_000_000, 1_000, 1), 30);
        // Zero workers is treated as one, not a division by zero.
        assert_eq!(retry_after_from(3_000_000_000, 2, 0), 6);
    }

    #[test]
    fn scheduler_exposes_a_clamped_retry_after_estimate() {
        let engine = leaked_engine();
        let scheduler = start(engine, BatchConfig::default());
        // Fresh scheduler: empty queue, no EWMA → the 1 s floor.
        assert_eq!(scheduler.retry_after_secs(), 1);
        let ticket = scheduler
            .submit(job(engine, 200.0, JobKind::Single))
            .unwrap();
        assert!(ticket.wait().is_ok());
        // With a (tiny) EWMA sample and an empty queue the floor still holds,
        // and the estimate always stays within the clamp.
        let estimate = scheduler.retry_after_secs();
        assert!((1..=30).contains(&estimate), "estimate {estimate}");
        scheduler.shutdown();
    }

    #[test]
    fn jobs_default_to_cache_off_and_carry_the_flag() {
        let engine = leaked_engine();
        let plain = job(engine, 200.0, JobKind::Single);
        assert!(!plain.cache, "classic jobs must not touch the cache");
        let mut cached = job(engine, 200.0, JobKind::Single);
        cached.cache = true;
        let scheduler = start(engine, BatchConfig::default());
        let ticket = scheduler.submit(cached).unwrap();
        let JobOutput::Single(result) = ticket.wait().unwrap() else {
            panic!("expected single result");
        };
        assert!(result.stats.cache, "the cache flag must reach the engine");
        // A repeat of the same job replays from the response cache.
        let mut repeat = job(engine, 200.0, JobKind::Single);
        repeat.cache = true;
        let ticket = scheduler.submit(repeat).unwrap();
        let JobOutput::Single(result) = ticket.wait().unwrap() else {
            panic!("expected single result");
        };
        assert!(result.stats.cache_hit, "the repeat must hit the cache");
        scheduler.shutdown();
    }

    #[test]
    fn service_time_ewma_converges_toward_samples() {
        let engine = leaked_engine();
        let shared = bare_shared(engine, BatchConfig::default());
        record_service_time(&shared, Duration::from_micros(800), 1);
        assert_eq!(shared.service_time_ns.load(Ordering::Relaxed), 800_000);
        for _ in 0..64 {
            record_service_time(&shared, Duration::from_micros(100), 1);
        }
        let ewma = shared.service_time_ns.load(Ordering::Relaxed);
        assert!(
            (90_000..200_000).contains(&ewma),
            "EWMA should approach the steady 100µs samples, got {ewma}"
        );
        // Batches divide elapsed across their members.
        record_service_time(&shared, Duration::from_micros(400), 4);
        assert!(shared.service_time_ns.load(Ordering::Relaxed) < ewma.max(100_001));
    }
}
