//! The LCMSR service: HTTP routes glued to the micro-batching scheduler.
//!
//! Routes:
//!
//! * `POST /query` — an LCMSR query (see [`crate::api`] for the body format);
//!   single-best without `"k"`, top-k with it.  `400` for malformed or
//!   invalid requests (including engine-reported query errors), `503` with
//!   `Retry-After` when the admission queue is full.
//! * `GET /healthz` — liveness plus basic dataset/queue facts.
//! * `GET /metrics` — Prometheus text exposition (see [`crate::metrics`]).

use crate::api::{error_body, QueryRequest, QueryResponse};
use crate::http::{self, Handler, HttpRequest, HttpResponse, ServerConfig, ServerHandle};
use crate::json::Json;
use crate::metrics::ServiceMetrics;
use crate::scheduler::{BatchConfig, JobKind, JobOutput, QueryJob, Scheduler, SubmitError};
use lcmsr_core::cancel::Deadline;
use lcmsr_core::engine::LcmsrEngine;
use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Full service configuration.
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// HTTP listener knobs.
    pub server: ServerConfig,
    /// Micro-batching scheduler knobs.
    pub batch: BatchConfig,
}

/// The request handler: routes to the scheduler and metrics.
struct ServiceHandlerInner {
    engine: &'static LcmsrEngine<'static>,
    scheduler: Scheduler,
    metrics: Arc<ServiceMetrics>,
    started: Instant,
}

impl ServiceHandlerInner {
    fn handle_query(&self, request: &HttpRequest) -> HttpResponse {
        let start = crate::metrics::now();
        let outcome = self.run_query(request);
        match outcome {
            Ok(body) => {
                self.metrics.responses_ok.fetch_add(1, Ordering::Relaxed);
                // Only served queries enter the histogram: microsecond 503s
                // and 400s would otherwise drag p50/p99 *down* exactly when
                // the service is shedding — the opposite of the truth.
                self.metrics.latency.record(start.elapsed());
                HttpResponse::json(200, body)
            }
            Err(response) => response,
        }
    }

    fn run_query(&self, request: &HttpRequest) -> Result<String, HttpResponse> {
        let client_error = |message: String| {
            self.metrics
                .responses_client_error
                .fetch_add(1, Ordering::Relaxed);
            HttpResponse::json(400, error_body(&message))
        };
        let body = request
            .body_utf8()
            .ok_or_else(|| client_error("request body must be UTF-8".into()))?;
        let parsed = QueryRequest::from_body(body).map_err(|e| client_error(e.message))?;
        let query = parsed.to_query().map_err(|e| client_error(e.message))?;
        let algorithm = parsed.to_algorithm().map_err(|e| client_error(e.message))?;
        let priority = parsed.to_priority().map_err(|e| client_error(e.message))?;
        let kind = match parsed.k {
            Some(k) => JobKind::TopK(k),
            None => JobKind::Single,
        };
        // The deadline clock starts here, at decode time, so every later
        // stage — queue wait included — counts against the budget.
        let deadline = parsed
            .deadline_ms
            .map(|ms| Deadline::after(Duration::from_millis(ms)));
        let ticket = self
            .scheduler
            .submit(QueryJob {
                query,
                algorithm,
                kind,
                priority,
                deadline,
            })
            .map_err(|e| {
                // Shed counting happens inside the scheduler; every shed
                // variant maps to a 503 and the HTTP layer adds Retry-After.
                let status = match e {
                    SubmitError::Overloaded
                    | SubmitError::DeadlineUnmeetable
                    | SubmitError::ShuttingDown => 503,
                };
                HttpResponse::json(status, error_body(&e.to_string()))
            })?;
        // Counted only after admission, so `queries - responses` never drifts
        // by the shed count under overload.
        self.metrics.queries.fetch_add(1, Ordering::Relaxed);
        let output = ticket.wait().map_err(|e| {
            // An engine-level failure is query-dependent (e.g. Exact over an
            // oversized region): the client's fault, not the server's.
            client_error(format!("query failed: {e}"))
        })?;
        let response = match output {
            JobOutput::Single(result) => {
                self.metrics.record_prepare_split(&result.stats);
                QueryResponse::from_single(&result)
            }
            JobOutput::TopK(result) => {
                self.metrics.record_prepare_split(&result.stats);
                QueryResponse::from_topk(&result)
            }
        };
        if response.stats.partial {
            self.metrics.partial.fetch_add(1, Ordering::Relaxed);
        }
        Ok(response.to_body())
    }

    fn handle_healthz(&self) -> HttpResponse {
        let network = self.engine.network();
        let body = Json::Object(vec![
            ("status".into(), Json::String("ok".into())),
            (
                "uptime_s".into(),
                Json::Number(self.started.elapsed().as_secs_f64().floor()),
            ),
            ("batching".into(), Json::Bool(self.scheduler.batching())),
            (
                "queue_depth".into(),
                Json::Number(self.scheduler.queue_depth() as f64),
            ),
            (
                "network_nodes".into(),
                Json::Number(network.node_count() as f64),
            ),
            (
                "objects".into(),
                Json::Number(self.engine.collection().len() as f64),
            ),
        ]);
        HttpResponse::json(200, body.encode())
    }
}

impl Handler for ServiceHandlerInner {
    fn handle(&self, request: &HttpRequest) -> HttpResponse {
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/query") => self.handle_query(request),
            ("GET", "/healthz") => self.handle_healthz(),
            ("GET", "/metrics") => HttpResponse::text(200, self.metrics.render()),
            ("GET", "/query") | ("POST", "/healthz") | ("POST", "/metrics") => {
                HttpResponse::json(405, error_body("method not allowed"))
            }
            _ => HttpResponse::json(404, error_body("no such route")),
        }
    }
}

/// A running LCMSR service.
#[derive(Debug)]
pub struct ServiceHandle {
    server: ServerHandle,
    handler: Arc<ServiceHandlerInner>,
}

impl ServiceHandle {
    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// The live metrics (scrape-free access for tests and benchmarks).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.handler.metrics
    }

    /// Gracefully stops the HTTP server, then drains the scheduler.
    pub fn shutdown(self) {
        self.server.shutdown();
        self.handler.scheduler.shutdown();
    }

    /// Blocks until the server stops (foreground serving).
    pub fn wait(self) {
        self.server.wait();
    }
}

/// Starts serving `engine` with the given configuration.
///
/// The engine reference must be `'static` because handler and scheduler
/// threads outlive the caller's stack frame; for a process-lifetime server
/// obtain one with [`crate::leak_engine`].
pub fn serve(
    engine: &'static LcmsrEngine<'static>,
    config: ServiceConfig,
) -> std::io::Result<ServiceHandle> {
    let ServiceConfig { server, batch } = config;
    let metrics = Arc::new(ServiceMetrics::new());
    let scheduler = Scheduler::start(engine, batch, Arc::clone(&metrics))?;
    let handler = Arc::new(ServiceHandlerInner {
        engine,
        scheduler,
        metrics,
        started: crate::metrics::now(),
    });
    let server = http::start(&server, Arc::clone(&handler) as Arc<dyn Handler>)?;
    Ok(ServiceHandle { server, handler })
}

impl std::fmt::Debug for ServiceHandlerInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandlerInner")
            .finish_non_exhaustive()
    }
}
