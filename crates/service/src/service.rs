//! The LCMSR service: HTTP routes glued to the micro-batching scheduler.
//!
//! Routes:
//!
//! * `POST /query` — an LCMSR query (see [`crate::api`] for the body format);
//!   single-best without `"k"`, top-k with it.  `400` for malformed or
//!   invalid requests (including engine-reported query errors), `503` with
//!   `Retry-After` when the admission queue is full.
//! * `GET /healthz` — liveness plus basic dataset/queue facts.
//! * `GET /metrics` — Prometheus text exposition (see [`crate::metrics`]).
//! * `GET /debug/trace/recent` — span trees of recently sampled queries.
//! * `GET /debug/slow` — recently completed slow queries (span trees when
//!   the query was also sampled for tracing).
//!
//! Every response carries an `X-Request-Id` header: the client's, when it
//! sent a well-formed one, else a generated id.  Slow queries log one stderr
//! line stamped with the id, and retained traces carry it, so a single id
//! connects a client's log line, the server's, and the `/debug` surfaces.

use crate::api::{error_body, QueryRequest, QueryResponse};
use crate::diag::{Diagnostics, DiagnosticsConfig, TraceRing, REQUEST_ID_HEADER};
use crate::http::{self, Handler, HttpRequest, HttpResponse, ServerConfig, ServerHandle};
use crate::json::Json;
use crate::metrics::ServiceMetrics;
use crate::scheduler::{BatchConfig, JobKind, JobOutput, QueryJob, Scheduler, SubmitError};
use lcmsr_core::cancel::Deadline;
use lcmsr_core::engine::{LcmsrEngine, Priority};
use lcmsr_core::trace::QueryTrace;
use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Full service configuration.
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// HTTP listener knobs.
    pub server: ServerConfig,
    /// Micro-batching scheduler knobs.
    pub batch: BatchConfig,
    /// Diagnostics knobs: slow-query threshold, trace sampling, ring sizes.
    pub diagnostics: DiagnosticsConfig,
}

/// The request handler: routes to the scheduler, diagnostics and metrics.
struct ServiceHandlerInner {
    engine: &'static LcmsrEngine<'static>,
    scheduler: Scheduler,
    metrics: Arc<ServiceMetrics>,
    diag: Diagnostics,
    started: Instant,
}

/// What a served query leaves behind for diagnostics, besides its body.
struct ServedQuery {
    body: String,
    algorithm: String,
    queue_time: Duration,
    partial: bool,
    trace: Option<QueryTrace>,
}

impl ServiceHandlerInner {
    fn handle_query(&self, request: &HttpRequest, request_id: &str) -> HttpResponse {
        let start = crate::metrics::now();
        // Sampling is decided at admission so the engine runs the whole query
        // with one collector state — no mid-query arming.
        let trace_enabled = self.diag.should_trace();
        let outcome = self.run_query(request, trace_enabled);
        match outcome {
            Ok(served) => {
                self.metrics.responses_ok.fetch_add(1, Ordering::Relaxed);
                // Only served queries enter the histogram: microsecond 503s
                // and 400s would otherwise drag p50/p99 *down* exactly when
                // the service is shedding — the opposite of the truth.
                let elapsed = start.elapsed();
                self.metrics.latency.record(elapsed);
                if served.trace.is_some() {
                    self.metrics.traced.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(kept) = self.diag.observe(
                    request_id,
                    &served.algorithm,
                    elapsed,
                    served.queue_time,
                    served.partial,
                    served.trace,
                ) {
                    if kept.slow {
                        self.metrics.slow_queries.fetch_add(1, Ordering::Relaxed);
                    }
                }
                HttpResponse::json(200, served.body)
            }
            Err(response) => response,
        }
    }

    fn run_query(
        &self,
        request: &HttpRequest,
        trace_enabled: bool,
    ) -> Result<ServedQuery, HttpResponse> {
        let client_error = |message: String| {
            self.metrics
                .responses_client_error
                .fetch_add(1, Ordering::Relaxed);
            HttpResponse::json(400, error_body(&message))
        };
        let body = request
            .body_utf8()
            .ok_or_else(|| client_error("request body must be UTF-8".into()))?;
        let parsed = QueryRequest::from_body(body).map_err(|e| client_error(e.message))?;
        let query = parsed.to_query().map_err(|e| client_error(e.message))?;
        let algorithm = parsed.to_algorithm().map_err(|e| client_error(e.message))?;
        let priority = parsed.to_priority().map_err(|e| client_error(e.message))?;
        let kind = match parsed.k {
            Some(k) => JobKind::TopK(k),
            None => JobKind::Single,
        };
        // The deadline clock starts here, at decode time, so every later
        // stage — queue wait included — counts against the budget.
        let deadline = parsed
            .deadline_ms
            .map(|ms| Deadline::after(Duration::from_millis(ms)));
        // Interactive traffic defaults into the response cache (pan/zoom
        // sessions repeat themselves); batch sweeps default out.  Either
        // lane can override explicitly with the request's `cache` field.
        let cache = parsed.cache.unwrap_or(priority == Priority::Interactive);
        let ticket = self
            .scheduler
            .submit(QueryJob {
                query,
                algorithm,
                kind,
                priority,
                deadline,
                trace: trace_enabled,
                cache,
            })
            .map_err(|e| {
                // Shed counting happens inside the scheduler; every shed
                // variant maps to a 503 with a Retry-After derived from the
                // EWMA service time and the current backlog.
                let status = match e {
                    SubmitError::Overloaded
                    | SubmitError::DeadlineUnmeetable
                    | SubmitError::ShuttingDown => 503,
                };
                HttpResponse::json(status, error_body(&e.to_string()))
                    .with_header("Retry-After", self.scheduler.retry_after_secs().to_string())
            })?;
        // Counted only after admission, so `queries - responses` never drifts
        // by the shed count under overload.
        self.metrics.queries.fetch_add(1, Ordering::Relaxed);
        let output = ticket.wait().map_err(|e| {
            // An engine-level failure is query-dependent (e.g. Exact over an
            // oversized region): the client's fault, not the server's.
            client_error(format!("query failed: {e}"))
        })?;
        let (response, trace) = match output {
            JobOutput::Single(result) => {
                self.metrics.record_prepare_split(&result.stats);
                self.metrics.record_cache_path(&result.stats);
                (QueryResponse::from_single(&result), result.trace)
            }
            JobOutput::TopK(result) => {
                self.metrics.record_prepare_split(&result.stats);
                self.metrics.record_cache_path(&result.stats);
                (QueryResponse::from_topk(&result), result.trace)
            }
        };
        if response.stats.partial {
            self.metrics.partial.fetch_add(1, Ordering::Relaxed);
        }
        Ok(ServedQuery {
            body: response.to_body(),
            algorithm: response.stats.algorithm.clone(),
            queue_time: Duration::from_nanos(response.stats.queue_ns),
            partial: response.stats.partial,
            trace,
        })
    }

    /// Renders one diagnostics ring as a JSON array, newest first.
    fn handle_debug_ring(ring: &TraceRing) -> HttpResponse {
        let entries: Vec<Json> = ring.snapshot().iter().map(|t| t.to_json()).collect();
        HttpResponse::json(200, Json::Array(entries).encode())
    }

    fn handle_healthz(&self) -> HttpResponse {
        let network = self.engine.network();
        let body = Json::Object(vec![
            ("status".into(), Json::String("ok".into())),
            (
                "uptime_s".into(),
                Json::Number(self.started.elapsed().as_secs_f64().floor()),
            ),
            ("batching".into(), Json::Bool(self.scheduler.batching())),
            (
                "queue_depth".into(),
                Json::Number(self.scheduler.queue_depth() as f64),
            ),
            (
                "network_nodes".into(),
                Json::Number(network.node_count() as f64),
            ),
            (
                "objects".into(),
                Json::Number(self.engine.collection().len() as f64),
            ),
        ]);
        HttpResponse::json(200, body.encode())
    }
}

impl Handler for ServiceHandlerInner {
    fn handle(&self, request: &HttpRequest) -> HttpResponse {
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let request_id = self
            .diag
            .resolve_request_id(request.header(REQUEST_ID_HEADER));
        let response = match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/query") => self.handle_query(request, &request_id),
            ("GET", "/healthz") => self.handle_healthz(),
            ("GET", "/metrics") => HttpResponse::text(200, self.metrics.render()),
            ("GET", "/debug/trace/recent") => Self::handle_debug_ring(&self.diag.recent),
            ("GET", "/debug/slow") => Self::handle_debug_ring(&self.diag.slow),
            ("GET", "/query")
            | ("POST", "/healthz")
            | ("POST", "/metrics")
            | ("POST", "/debug/trace/recent")
            | ("POST", "/debug/slow") => HttpResponse::json(405, error_body("method not allowed")),
            _ => HttpResponse::json(404, error_body("no such route")),
        };
        response.with_header("X-Request-Id", request_id)
    }
}

/// A running LCMSR service.
#[derive(Debug)]
pub struct ServiceHandle {
    server: ServerHandle,
    handler: Arc<ServiceHandlerInner>,
}

impl ServiceHandle {
    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// The live metrics (scrape-free access for tests and benchmarks).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.handler.metrics
    }

    /// Gracefully stops the HTTP server, then drains the scheduler.
    pub fn shutdown(self) {
        self.server.shutdown();
        self.handler.scheduler.shutdown();
    }

    /// Blocks until the server stops (foreground serving).
    pub fn wait(self) {
        self.server.wait();
    }
}

/// Starts serving `engine` with the given configuration.
///
/// The engine reference must be `'static` because handler and scheduler
/// threads outlive the caller's stack frame; for a process-lifetime server
/// obtain one with [`crate::leak_engine`].
pub fn serve(
    engine: &'static LcmsrEngine<'static>,
    config: ServiceConfig,
) -> std::io::Result<ServiceHandle> {
    let ServiceConfig {
        server,
        batch,
        diagnostics,
    } = config;
    let metrics = Arc::new(ServiceMetrics::new());
    let scheduler = Scheduler::start(engine, batch, Arc::clone(&metrics))?;
    let handler = Arc::new(ServiceHandlerInner {
        engine,
        scheduler,
        metrics,
        diag: Diagnostics::new(diagnostics),
        started: crate::metrics::now(),
    });
    let server = http::start(&server, Arc::clone(&handler) as Arc<dyn Handler>)?;
    Ok(ServiceHandle { server, handler })
}

impl std::fmt::Debug for ServiceHandlerInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandlerInner")
            .finish_non_exhaustive()
    }
}
