//! Shadow-model property tests for the metrics latency histogram: every
//! derived statistic (count, mean, cumulative buckets, quantile estimates,
//! the overflow sentinel) is replayed against a naive model holding the raw
//! samples, so bucketing bugs cannot hide behind plausible-looking numbers.

use lcmsr_service::metrics::{LatencyHistogram, LATENCY_BOUNDS_US};
use proptest::prelude::*;
use std::time::Duration;

/// The quantile estimate the histogram is specified to produce: the upper
/// bound of the bucket holding the target rank, or the overflow sentinel.
fn shadow_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let target = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize)
        .max(1)
        .min(sorted.len());
    let rank_value = sorted[target - 1];
    LATENCY_BOUNDS_US
        .iter()
        .copied()
        .find(|&bound| rank_value <= bound)
        .unwrap_or(LATENCY_BOUNDS_US[LATENCY_BOUNDS_US.len() - 1] * 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn histogram_matches_the_shadow_model(
        // Spans every bucket plus the overflow region beyond 5 s.
        samples_us in collection::vec(0u64..20_000_000, 0..200),
        q_permille in collection::vec(0usize..1001, 2..8),
    ) {
        let h = LatencyHistogram::default();
        for &us in &samples_us {
            h.record(Duration::from_micros(us));
        }
        prop_assert_eq!(h.count(), samples_us.len() as u64);

        // `cumulative()` is consistent with a naive replay: the count at each
        // bound is exactly the number of samples at or under it, ending in a
        // catch-all +Inf bucket.
        let cumulative = h.cumulative();
        prop_assert_eq!(cumulative.len(), LATENCY_BOUNDS_US.len() + 1);
        prop_assert_eq!(cumulative[cumulative.len() - 1].0, u64::MAX);
        for &(bound, seen) in &cumulative {
            let naive = samples_us.iter().filter(|&&us| us <= bound).count() as u64;
            prop_assert_eq!(seen, naive, "bound {} us", bound);
        }

        // The mean is exact (total is tracked outside the buckets).
        if samples_us.is_empty() {
            prop_assert_eq!(h.mean_us(), 0.0);
        } else {
            let naive_mean = samples_us.iter().sum::<u64>() as f64 / samples_us.len() as f64;
            prop_assert!((h.mean_us() - naive_mean).abs() < 1e-6);
        }

        // Quantiles are monotone in q and equal to the shadow estimate; values
        // beyond the last bound report the finite overflow sentinel.
        let mut sorted = samples_us.clone();
        sorted.sort_unstable();
        let mut qs: Vec<f64> = q_permille.iter().map(|&p| p as f64 / 1000.0).collect();
        qs.sort_by(f64::total_cmp);
        for pair in qs.windows(2) {
            prop_assert!(h.quantile_us(pair[0]) <= h.quantile_us(pair[1]));
        }
        for &q in &qs {
            let estimate = h.quantile_us(q);
            prop_assert_eq!(estimate, shadow_quantile(&sorted, q), "q = {}", q);
            prop_assert!(estimate <= LATENCY_BOUNDS_US[LATENCY_BOUNDS_US.len() - 1] * 2);
        }
    }
}

#[test]
fn overflow_samples_report_the_sentinel() {
    let h = LatencyHistogram::default();
    h.record(Duration::from_secs(3600));
    assert_eq!(h.quantile_us(0.5), LATENCY_BOUNDS_US[14] * 2);
    assert_eq!(h.cumulative().last(), Some(&(u64::MAX, 1)));
}
