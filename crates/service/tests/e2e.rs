//! End-to-end tests against a live server: spawned on an OS-assigned port,
//! queried over real sockets by concurrent clients, answers compared
//! bit-identically against direct engine calls on the same dataset.

use lcmsr_core::engine::{Algorithm, LcmsrEngine, QueryRequest as EngineRequest};
use lcmsr_core::{LcmsrQuery, TgenParams};
use lcmsr_geotext::collection::ObjectCollection;
use lcmsr_geotext::object::GeoTextObject;
use lcmsr_roadnet::builder::GraphBuilder;
use lcmsr_roadnet::geo::{Point, Rect};
use lcmsr_service::diag::DiagnosticsConfig;
use lcmsr_service::http::ServerConfig;
use lcmsr_service::scheduler::BatchConfig;
use lcmsr_service::service::{serve, ServiceConfig, ServiceHandle};
use lcmsr_service::{leak_engine, HttpClient, QueryRequest, QueryResponse, RegionDto};
use std::time::Duration;

/// A 6×6 grid city with a restaurant cluster and scattered cafes, leaked for
/// the process-lifetime engine the service needs.
fn leaked_city() -> &'static LcmsrEngine<'static> {
    let mut b = GraphBuilder::new();
    let mut ids = Vec::new();
    for y in 0..6 {
        for x in 0..6 {
            ids.push(b.add_node(Point::new(x as f64 * 100.0, y as f64 * 100.0)));
        }
    }
    for y in 0..6 {
        for x in 0..6 {
            let i = y * 6 + x;
            if x < 5 {
                b.add_edge(ids[i], ids[i + 1], 100.0).unwrap();
            }
            if y < 5 {
                b.add_edge(ids[i], ids[i + 6], 100.0).unwrap();
            }
        }
    }
    let network = b.build().unwrap();
    let mut objects = Vec::new();
    let mut oid = 0u64;
    for &(x, y) in &[(10.0, 10.0), (110.0, 10.0), (10.0, 110.0), (210.0, 110.0)] {
        objects.push(GeoTextObject::from_keywords(
            oid,
            Point::new(x, y),
            ["restaurant", "italian"],
        ));
        oid += 1;
    }
    for &(x, y) in &[(410.0, 410.0), (510.0, 310.0), (310.0, 510.0)] {
        objects.push(GeoTextObject::from_keywords(
            oid,
            Point::new(x, y),
            ["cafe"],
        ));
        oid += 1;
    }
    let collection = ObjectCollection::build(&network, objects, 200.0).unwrap();
    leak_engine(network, collection)
}

fn serve_city(engine: &'static LcmsrEngine<'static>, batch: BatchConfig) -> ServiceHandle {
    serve_city_with(engine, batch, DiagnosticsConfig::default())
}

fn serve_city_with(
    engine: &'static LcmsrEngine<'static>,
    batch: BatchConfig,
    diagnostics: DiagnosticsConfig,
) -> ServiceHandle {
    serve(
        engine,
        ServiceConfig {
            server: ServerConfig {
                addr: "127.0.0.1:0".into(),
                http_workers: 8,
                max_body_bytes: 64 * 1024,
                ..ServerConfig::default()
            },
            batch,
            diagnostics,
        },
    )
    .expect("service must start")
}

fn request_for(keywords: &[&str], budget: f64, k: Option<usize>) -> QueryRequest {
    QueryRequest {
        algorithm: "tgen".into(),
        keywords: keywords.iter().map(|s| (*s).to_string()).collect(),
        rect: Rect::new(-50.0, -50.0, 560.0, 560.0),
        budget,
        k,
        alpha: Some(1.0),
        beta: None,
        mu: None,
        deadline_ms: None,
        priority: None,
        cache: None,
    }
}

#[test]
fn served_answers_are_bit_identical_to_direct_engine_calls() {
    let engine = leaked_city();
    let service = serve_city(
        engine,
        BatchConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(5),
            queue_capacity: 256,
            batch_workers: 2,
        },
    );
    let addr = service.addr();

    // Concurrent clients mixing single and top-k queries; every response must
    // equal the direct engine call on the same dataset, bit for bit.
    std::thread::scope(|scope| {
        for t in 0..6 {
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                let keywords: &[&str] = if t % 2 == 0 {
                    &["restaurant"]
                } else {
                    &["cafe", "restaurant"]
                };
                for i in 0..6 {
                    let budget = 150.0 + (i as f64) * 90.0;
                    let k = if i % 3 == 2 { Some(3) } else { None };
                    let request = request_for(keywords, budget, k);
                    let (status, body) = client.post("/query", &request.to_body()).unwrap();
                    assert_eq!(status, 200, "{body}");
                    let response = QueryResponse::from_body(&body).unwrap();

                    let query = LcmsrQuery::new(
                        keywords.iter().map(|s| (*s).to_string()),
                        budget,
                        request.rect,
                    )
                    .unwrap();
                    let algorithm = Algorithm::Tgen(TgenParams { alpha: 1.0 });
                    let mut engine_request = EngineRequest::new(&query, algorithm.clone());
                    if let Some(k) = k {
                        engine_request = engine_request.top_k(k);
                    }
                    let expected: Vec<RegionDto> = engine
                        .execute(&engine_request)
                        .unwrap()
                        .regions
                        .iter()
                        .map(RegionDto::from_region)
                        .collect();
                    assert_eq!(
                        response.regions, expected,
                        "client {t} query {i} (budget {budget}, k {k:?}) diverged"
                    );
                    assert_eq!(response.stats.algorithm, "TGEN");
                    assert!(
                        response.stats.prepare_ns + response.stats.solve_ns
                            <= response.stats.elapsed_ns
                    );
                }
            });
        }
    });

    // The scheduler actually batched: with 6 concurrent closed-loop clients
    // some dispatches must have carried more than one query.
    let metrics = service.metrics();
    let batches = metrics.batches.load(std::sync::atomic::Ordering::Relaxed);
    let batched = metrics
        .batched_queries
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(batched, 36, "every query must flow through the scheduler");
    assert!(batches >= 1);
    service.shutdown();
}

#[test]
fn queue_wait_is_reported_in_served_stats() {
    let engine = leaked_city();
    let service = serve_city(
        engine,
        BatchConfig {
            max_batch: 16,
            // A long window guarantees a measurable queue wait for a lone query.
            max_delay: Duration::from_millis(40),
            queue_capacity: 64,
            batch_workers: 1,
        },
    );
    let mut client = HttpClient::connect(service.addr()).unwrap();
    let (status, body) = client
        .post(
            "/query",
            &request_for(&["restaurant"], 300.0, None).to_body(),
        )
        .unwrap();
    assert_eq!(status, 200);
    let response = QueryResponse::from_body(&body).unwrap();
    assert!(
        response.stats.queue_ns >= 10_000_000,
        "a lone query waits out the batching window, got {} ns",
        response.stats.queue_ns
    );
    service.shutdown();
}

#[test]
fn full_queue_sheds_load_with_503() {
    let engine = leaked_city();
    let service = serve_city(
        engine,
        BatchConfig {
            max_batch: 64,
            // The dispatcher holds the first request for 500 ms, so the tiny
            // queue is saturated while the burst arrives.
            max_delay: Duration::from_millis(500),
            queue_capacity: 2,
            batch_workers: 1,
        },
    );
    let addr = service.addr();
    let outcomes: Vec<u16> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).unwrap();
                    let (status, _body) = client
                        .post(
                            "/query",
                            &request_for(&["restaurant"], 300.0, None).to_body(),
                        )
                        .unwrap();
                    status
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let ok = outcomes.iter().filter(|&&s| s == 200).count();
    let shed = outcomes.iter().filter(|&&s| s == 503).count();
    assert_eq!(ok + shed, 6, "only 200s and 503s, got {outcomes:?}");
    assert!(
        (1..=2).contains(&ok),
        "queue capacity bounds admissions: {outcomes:?}"
    );
    assert!(shed >= 4, "the overflow must be shed: {outcomes:?}");
    assert_eq!(
        service
            .metrics()
            .shed
            .load(std::sync::atomic::Ordering::Relaxed),
        shed as u64
    );
    service.shutdown();
}

#[test]
fn malformed_and_invalid_requests_get_clean_400s() {
    let engine = leaked_city();
    let service = serve_city(engine, BatchConfig::default());
    let mut client = HttpClient::connect(service.addr()).unwrap();

    // Garbage JSON.
    let (status, body) = client.post("/query", "this is not json").unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("error"));
    // Valid JSON, wrong shape.
    let (status, _) = client.post("/query", "[1,2,3]").unwrap();
    assert_eq!(status, 400);
    // Missing fields.
    let (status, body) = client.post("/query", r#"{"algorithm":"tgen"}"#).unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("keywords"), "{body}");
    // Semantically invalid query (negative budget).
    let (status, _) = client
        .post(
            "/query",
            &request_for(&["restaurant"], -5.0, None).to_body(),
        )
        .unwrap();
    assert_eq!(status, 400);
    // Unknown algorithm.
    let mut bad = request_for(&["restaurant"], 300.0, None);
    bad.algorithm = "quantum".into();
    let (status, body) = client.post("/query", &bad.to_body()).unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("quantum"), "{body}");
    // Unknown route and wrong method.
    assert_eq!(client.get("/nope").unwrap().0, 404);
    assert_eq!(client.get("/query").unwrap().0, 405);

    // The connection and the server both survived all of the above.
    let (status, body) = client
        .post(
            "/query",
            &request_for(&["restaurant"], 300.0, None).to_body(),
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let errors = service
        .metrics()
        .responses_client_error
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(errors, 5);
    service.shutdown();
}

#[test]
fn oversized_bodies_are_refused() {
    let engine = leaked_city();
    let service = serve_city(engine, BatchConfig::default());
    let mut client = HttpClient::connect(service.addr()).unwrap();
    // 64 KiB limit in the fixture; send ~200 KiB of keywords.
    let mut request = request_for(&["restaurant"], 300.0, None);
    request.keywords = (0..20_000).map(|i| format!("kw{i}")).collect();
    let body = request.to_body();
    assert!(body.len() > 64 * 1024);
    let (status, message) = client.post("/query", &body).unwrap();
    assert_eq!(status, 400, "{message}");
    assert!(message.contains("exceeds"), "{message}");
    service.shutdown();
}

#[test]
fn healthz_and_metrics_expose_service_state() {
    let engine = leaked_city();
    let service = serve_city(engine, BatchConfig::default());
    let mut client = HttpClient::connect(service.addr()).unwrap();

    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    let health = lcmsr_service::json::parse(&body).unwrap();
    assert_eq!(
        health.get("status").and_then(|v| v.as_str()),
        Some("ok"),
        "{body}"
    );
    assert_eq!(
        health
            .get("network_nodes")
            .and_then(lcmsr_service::json::Json::as_u64),
        Some(36)
    );
    assert_eq!(
        health
            .get("batching")
            .and_then(lcmsr_service::json::Json::as_bool),
        Some(true)
    );

    // Run a couple of queries, then check the counters moved.
    for _ in 0..3 {
        let (status, _) = client
            .post("/query", &request_for(&["cafe"], 300.0, Some(2)).to_body())
            .unwrap();
        assert_eq!(status, 200);
    }
    let (status, metrics_text) = client.get("/metrics").unwrap();
    assert_eq!(status, 200);
    for needle in [
        "lcmsr_requests_total",
        "lcmsr_queries_total 3",
        "lcmsr_responses_ok_total 3",
        "lcmsr_batches_total",
        "lcmsr_mean_batch_size",
        "lcmsr_queue_depth",
        "lcmsr_latency_p50_us",
        "lcmsr_latency_p99_us",
        "lcmsr_latency_bucket{le=\"+Inf\"} 3",
    ] {
        assert!(
            metrics_text.contains(needle),
            "missing {needle:?} in:\n{metrics_text}"
        );
    }
    service.shutdown();
}

#[test]
fn unbatched_baseline_mode_serves_identically() {
    let engine = leaked_city();
    let batched = serve_city(
        engine,
        BatchConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(3),
            queue_capacity: 64,
            batch_workers: 2,
        },
    );
    let baseline = serve_city(
        engine,
        BatchConfig {
            max_batch: 1, // per-request engine calls, no dispatcher
            max_delay: Duration::ZERO,
            queue_capacity: 64,
            batch_workers: 1,
        },
    );
    let mut batched_client = HttpClient::connect(batched.addr()).unwrap();
    let mut baseline_client = HttpClient::connect(baseline.addr()).unwrap();
    for budget in [150.0, 300.0, 450.0] {
        let body = request_for(&["restaurant", "cafe"], budget, Some(2)).to_body();
        let (sa, ba) = batched_client.post("/query", &body).unwrap();
        let (sb, bb) = baseline_client.post("/query", &body).unwrap();
        assert_eq!((sa, sb), (200, 200));
        let ra = QueryResponse::from_body(&ba).unwrap();
        let rb = QueryResponse::from_body(&bb).unwrap();
        assert_eq!(ra.regions, rb.regions, "budget {budget}");
        assert_eq!(rb.stats.queue_ns, 0, "baseline mode never queues");
    }
    batched.shutdown();
    baseline.shutdown();
}

#[test]
fn graceful_shutdown_refuses_new_connections() {
    let engine = leaked_city();
    let service = serve_city(engine, BatchConfig::default());
    let addr = service.addr();
    let mut client = HttpClient::connect(addr).unwrap();
    assert_eq!(client.get("/healthz").unwrap().0, 200);
    service.shutdown();
    // After shutdown the port no longer answers.
    let refused = HttpClient::connect(addr).is_err()
        || HttpClient::connect(addr)
            .and_then(|mut c| c.get("/healthz"))
            .is_err();
    assert!(refused, "server must stop answering after shutdown");
}

#[test]
fn doomed_deadlines_are_shed_with_503_and_retry_after() {
    let engine = leaked_city();
    let service = serve_city(engine, BatchConfig::default());
    let mut client = HttpClient::connect(service.addr()).unwrap();
    // deadline_ms: 0 has expired by the time the scheduler sees it.
    let mut doomed = request_for(&["restaurant"], 300.0, None);
    doomed.deadline_ms = Some(0);
    let response = client.post_full("/query", &doomed.to_body()).unwrap();
    assert_eq!(response.status, 503, "{}", response.body);
    assert_eq!(
        response.header("retry-after"),
        Some("1"),
        "sheds must tell the client when to come back"
    );
    assert!(response.body.contains("deadline"), "{}", response.body);
    assert_eq!(
        service
            .metrics()
            .deadline_shed
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    // A generous deadline on the same connection is served completely.
    let mut relaxed = request_for(&["restaurant"], 300.0, None);
    relaxed.deadline_ms = Some(60_000);
    let (status, body) = client.post("/query", &relaxed.to_body()).unwrap();
    assert_eq!(status, 200, "{body}");
    let response = QueryResponse::from_body(&body).unwrap();
    assert!(!response.stats.partial);
    assert_eq!(response.stats.deadline_ns, Some(60_000_000_000));
    service.shutdown();
}

#[test]
fn deadline_expiring_in_the_queue_serves_a_partial_answer() {
    let engine = leaked_city();
    let service = serve_city(
        engine,
        BatchConfig {
            max_batch: 16,
            // The window outlives the deadline, so the solver starts with an
            // already-expired token and must return its best-so-far.
            max_delay: Duration::from_millis(40),
            queue_capacity: 64,
            batch_workers: 1,
        },
    );
    let mut client = HttpClient::connect(service.addr()).unwrap();
    let mut tight = request_for(&["restaurant"], 300.0, None);
    tight.deadline_ms = Some(2);
    let (status, body) = client.post("/query", &tight.to_body()).unwrap();
    assert_eq!(status, 200, "{body}");
    let response = QueryResponse::from_body(&body).unwrap();
    assert!(response.stats.partial, "{body}");
    assert_eq!(
        response.stats.partial_cause.as_deref(),
        Some("deadline_exceeded")
    );
    assert_eq!(response.stats.deadline_ns, Some(2_000_000));
    let metrics = service.metrics();
    assert_eq!(
        metrics.partial.load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    // The partial counter is scraped through /metrics too.
    let (status, text) = client.get("/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(text.contains("lcmsr_partial_total 1"), "{text}");
    assert!(text.contains("lcmsr_deadline_shed_total 0"), "{text}");
    service.shutdown();
}

#[test]
fn every_response_carries_a_request_id() {
    let engine = leaked_city();
    let service = serve_city(engine, BatchConfig::default());
    let mut client = HttpClient::connect(service.addr()).unwrap();

    // A well-formed client id is echoed verbatim.
    let response = client
        .post_with_headers(
            "/query",
            &request_for(&["restaurant"], 300.0, None).to_body(),
            &[("X-Request-Id", "client-id-42")],
        )
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    assert_eq!(response.header("x-request-id"), Some("client-id-42"));
    // The body stays trace-free: ids live in headers, results on the wire.
    assert!(!response.body.contains("client-id-42"));

    // Without a client id the server generates one (q + 16 hex digits).
    let generated = client
        .post_full(
            "/query",
            &request_for(&["restaurant"], 300.0, None).to_body(),
        )
        .unwrap()
        .header("x-request-id")
        .expect("generated id")
        .to_string();
    assert!(
        generated.starts_with('q') && generated.len() == 17,
        "{generated}"
    );

    // A malformed id (embedded space) is replaced, not echoed.
    let replaced = client
        .post_with_headers(
            "/query",
            &request_for(&["restaurant"], 300.0, None).to_body(),
            &[("X-Request-Id", "bad id with spaces")],
        )
        .unwrap()
        .header("x-request-id")
        .expect("replacement id")
        .to_string();
    assert_ne!(replaced, "bad id with spaces");
    assert!(replaced.starts_with('q'), "{replaced}");

    // Non-query routes — including errors — carry ids too.
    let health = client.get_full("/healthz").unwrap();
    assert!(health.header("x-request-id").is_some());
    let missing = client.get_full("/nope").unwrap();
    assert_eq!(missing.status, 404);
    assert!(missing.header("x-request-id").is_some());
    service.shutdown();
}

#[test]
fn debug_trace_recent_serves_the_sampled_span_tree() {
    use lcmsr_service::json::Json;
    let engine = leaked_city();
    let service = serve_city_with(
        engine,
        BatchConfig::default(),
        DiagnosticsConfig {
            trace_sample: 1, // trace every query
            ..DiagnosticsConfig::default()
        },
    );
    let mut client = HttpClient::connect(service.addr()).unwrap();
    let response = client
        .post_with_headers(
            "/query",
            &request_for(&["restaurant"], 300.0, None).to_body(),
            &[("X-Request-Id", "e2e-trace-1")],
        )
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    assert_eq!(response.header("x-request-id"), Some("e2e-trace-1"));

    let (status, body) = client.get("/debug/trace/recent").unwrap();
    assert_eq!(status, 200);
    let entries = lcmsr_service::json::parse(&body).unwrap();
    let entries = entries.as_array().expect("array of traces");
    let entry = entries
        .iter()
        .find(|e| e.get("request_id").and_then(Json::as_str) == Some("e2e-trace-1"))
        .unwrap_or_else(|| panic!("client-sent id must reach the ring: {body}"));
    assert_eq!(
        entry.get("algorithm").and_then(Json::as_str),
        Some("TGEN"),
        "{body}"
    );
    assert_eq!(entry.get("dropped_spans").and_then(Json::as_u64), Some(0));

    // The full span tree: one "query" root whose children include the
    // prepare phase (split into grid_score + graph_build) and the solve
    // phase with at least one solver-internal child span.
    let spans = entry.get("spans").and_then(Json::as_array).expect("spans");
    assert_eq!(spans.len(), 1, "one root span: {body}");
    let root = &spans[0];
    assert_eq!(root.get("label").and_then(Json::as_str), Some("query"));
    let top = root
        .get("children")
        .and_then(Json::as_array)
        .expect("query has children");
    let label_of = |node: &Json| node.get("label").and_then(Json::as_str).map(String::from);
    let prepare = top
        .iter()
        .find(|n| label_of(n).as_deref() == Some("prepare"))
        .expect("prepare span");
    let solve = top
        .iter()
        .find(|n| label_of(n).as_deref() == Some("solve"))
        .expect("solve span");
    let prepare_children: Vec<String> = prepare
        .get("children")
        .and_then(Json::as_array)
        .expect("prepare split")
        .iter()
        .filter_map(label_of)
        .collect();
    assert!(
        prepare_children.contains(&"grid_score".to_string())
            && prepare_children.contains(&"graph_build".to_string()),
        "{prepare_children:?}"
    );
    // The prepare span carries the graph-size attributes.
    let attrs = prepare.get("attrs").expect("prepare attrs");
    assert_eq!(attrs.get("nodes").and_then(Json::as_u64), Some(36));
    let solver_spans = solve
        .get("children")
        .and_then(Json::as_array)
        .expect("solver child spans");
    assert!(
        !solver_spans.is_empty(),
        "the solver must contribute at least one span: {body}"
    );
    // The sampled query is visible in the metrics too.
    let (_, metrics_text) = client.get("/metrics").unwrap();
    assert!(
        metrics_text.contains("lcmsr_traced_queries_total 1"),
        "{metrics_text}"
    );
    service.shutdown();
}

#[test]
fn slow_queries_reach_the_slow_ring() {
    use lcmsr_service::json::Json;
    let engine = leaked_city();
    let service = serve_city_with(
        engine,
        BatchConfig::default(),
        DiagnosticsConfig {
            slow_ms: 0, // disabled: nothing is "slow"
            trace_sample: 0,
            ..DiagnosticsConfig::default()
        },
    );
    let mut client = HttpClient::connect(service.addr()).unwrap();
    let (status, _) = client
        .post(
            "/query",
            &request_for(&["restaurant"], 300.0, None).to_body(),
        )
        .unwrap();
    assert_eq!(status, 200);
    let (_, body) = client.get("/debug/slow").unwrap();
    assert_eq!(body, "[]", "threshold 0 disables the slow log");
    service.shutdown();

    // Threshold so low every query is slow: the ring fills and the counter moves.
    let service = serve_city_with(
        engine,
        BatchConfig::default(),
        DiagnosticsConfig {
            slow_ms: 1,
            trace_sample: 0,
            ..DiagnosticsConfig::default()
        },
    );
    let mut client = HttpClient::connect(service.addr()).unwrap();
    let response = client
        .post_with_headers(
            "/query",
            &request_for(&["restaurant"], 300.0, None).to_body(),
            &[("X-Request-Id", "slow-1")],
        )
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let (status, body) = client.get("/debug/slow").unwrap();
    assert_eq!(status, 200);
    let entries = lcmsr_service::json::parse(&body).unwrap();
    let entries = entries.as_array().expect("array");
    // BatchConfig::default() batches with a multi-ms window, so the lone
    // query waits it out and lands over the 1 ms threshold.
    let entry = entries
        .iter()
        .find(|e| e.get("request_id").and_then(Json::as_str) == Some("slow-1"))
        .unwrap_or_else(|| panic!("slow query must be retained: {body}"));
    assert_eq!(entry.get("slow").and_then(Json::as_bool), Some(true));
    assert!(
        entry.get("spans").is_none(),
        "untraced slow queries carry no span tree: {body}"
    );
    let (_, metrics_text) = client.get("/metrics").unwrap();
    assert!(
        metrics_text.contains("lcmsr_slow_queries_total 1"),
        "{metrics_text}"
    );
    service.shutdown();
}

#[test]
fn request_ids_survive_the_fault_isolation_rerun() {
    use lcmsr_service::json::Json;
    let engine = leaked_city();
    let service = serve_city_with(
        engine,
        BatchConfig {
            max_batch: 8,
            // A wide window so both Exact jobs land in one dispatch group.
            max_delay: Duration::from_millis(40),
            queue_capacity: 64,
            batch_workers: 1,
        },
        DiagnosticsConfig {
            trace_sample: 1,
            ..DiagnosticsConfig::default()
        },
    );
    let addr = service.addr();
    // Two Exact jobs batched together: one covers 4 nodes and succeeds, one
    // covers all 36 (over the solver's 20-node cap) and fails — the batch
    // attempt aborts and the scheduler re-runs each job alone.  Each response
    // must keep its own request id through that re-run.
    let (good, bad) = std::thread::scope(|scope| {
        let good = scope.spawn(move || {
            let mut client = HttpClient::connect(addr).unwrap();
            let mut ok = request_for(&["restaurant"], 300.0, None);
            ok.algorithm = "exact".into();
            ok.rect = Rect::new(-50.0, -50.0, 160.0, 160.0);
            client
                .post_with_headers("/query", &ok.to_body(), &[("X-Request-Id", "iso-good")])
                .unwrap()
        });
        let bad = scope.spawn(move || {
            let mut client = HttpClient::connect(addr).unwrap();
            let mut boom = request_for(&["restaurant"], 300.0, None);
            boom.algorithm = "exact".into();
            client
                .post_with_headers("/query", &boom.to_body(), &[("X-Request-Id", "iso-bad")])
                .unwrap()
        });
        (good.join().unwrap(), bad.join().unwrap())
    });
    assert_eq!(good.status, 200, "{}", good.body);
    assert_eq!(good.header("x-request-id"), Some("iso-good"));
    assert_eq!(bad.status, 400, "{}", bad.body);
    assert_eq!(bad.header("x-request-id"), Some("iso-bad"));
    assert!(bad.body.contains("error"), "{}", bad.body);

    // The served query's trace rode through the re-run under its own id.
    let mut client = HttpClient::connect(addr).unwrap();
    let (status, body) = client.get("/debug/trace/recent").unwrap();
    assert_eq!(status, 200);
    let entries = lcmsr_service::json::parse(&body).unwrap();
    let ids: Vec<String> = entries
        .as_array()
        .expect("array")
        .iter()
        .filter_map(|e| e.get("request_id").and_then(Json::as_str).map(String::from))
        .collect();
    assert!(ids.contains(&"iso-good".to_string()), "{ids:?}");
    assert!(
        !ids.contains(&"iso-bad".to_string()),
        "failed queries leave no trace: {ids:?}"
    );
    service.shutdown();
}

#[test]
fn interactive_sessions_replay_from_the_response_cache() {
    let engine = leaked_city();
    let service = serve_city(engine, BatchConfig::default());
    let mut client = HttpClient::connect(service.addr()).unwrap();
    let body = request_for(&["restaurant"], 300.0, None).to_body();
    // First interactive query: cache mode on by default, computed cold.
    let (status, cold) = client.post("/query", &body).unwrap();
    assert_eq!(status, 200, "{cold}");
    let cold = QueryResponse::from_body(&cold).unwrap();
    assert!(cold.stats.cache, "interactive lane defaults into the cache");
    assert!(!cold.stats.cache_hit);
    // The identical repeat replays from the response cache, bit-identically.
    let (status, warm) = client.post("/query", &body).unwrap();
    assert_eq!(status, 200, "{warm}");
    let warm = QueryResponse::from_body(&warm).unwrap();
    assert!(warm.stats.cache_hit, "repeat must replay from the cache");
    assert_eq!(warm.regions, cold.regions, "replay must be bit-identical");
    assert_eq!(warm.stats.prepare_ns, 0, "replays skip the prepare phase");
    assert_eq!(warm.stats.solve_ns, 0, "replays skip the solver");
    // An explicit opt-out computes cold again and still agrees.
    let mut uncached = request_for(&["restaurant"], 300.0, None);
    uncached.cache = Some(false);
    let (status, off) = client.post("/query", &uncached.to_body()).unwrap();
    assert_eq!(status, 200, "{off}");
    let off = QueryResponse::from_body(&off).unwrap();
    assert!(!off.stats.cache && !off.stats.cache_hit);
    assert_eq!(off.regions, cold.regions);
    // The batch lane defaults out of the cache.
    let mut bulk = request_for(&["restaurant"], 300.0, None);
    bulk.priority = Some("batch".into());
    let (status, bulk_body) = client.post("/query", &bulk.to_body()).unwrap();
    assert_eq!(status, 200, "{bulk_body}");
    assert!(!QueryResponse::from_body(&bulk_body).unwrap().stats.cache);
    // The hit/miss counters surface through /metrics.
    let (_, text) = client.get("/metrics").unwrap();
    assert!(text.contains("lcmsr_cache_hits_total 1"), "{text}");
    assert!(text.contains("lcmsr_cache_misses_total 1"), "{text}");
    assert!(text.contains("lcmsr_cache_stale_total 0"), "{text}");
    service.shutdown();
}

#[test]
fn batch_priority_requests_are_served() {
    let engine = leaked_city();
    let service = serve_city(engine, BatchConfig::default());
    let mut client = HttpClient::connect(service.addr()).unwrap();
    let mut bulk = request_for(&["restaurant"], 300.0, None);
    bulk.priority = Some("batch".into());
    let (status, body) = client.post("/query", &bulk.to_body()).unwrap();
    assert_eq!(status, 200, "{body}");
    // An unknown lane is a clean 400.
    let mut bad = request_for(&["restaurant"], 300.0, None);
    bad.priority = Some("urgent".into());
    let (status, body) = client.post("/query", &bad.to_body()).unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("priority"), "{body}");
    service.shutdown();
}
