//! Property tests for the service's wire codec: arbitrary request/response
//! values survive encode → decode exactly, and hostile bodies (malformed,
//! truncated, deeply nested, junk-mutated) produce clean errors — never a
//! panic, which in the live server would cost a worker thread.

use lcmsr_roadnet::geo::Rect;
use lcmsr_service::json;
use lcmsr_service::{QueryRequest, QueryResponse, RegionDto, StatsDto};
use proptest::prelude::*;

const ALGORITHMS: [&str; 4] = ["app", "tgen", "greedy", "exact"];

/// Builds a request from raw sampled scalars (the vendored proptest stub has
/// no `prop_map`, so tests sample plain tuples and assemble here).
#[allow(clippy::too_many_arguments)]
fn build_request(
    algorithm_index: usize,
    keyword_ids: &[u32],
    origin: (f64, f64),
    extent: (f64, f64),
    budget: f64,
    k: usize,
    alpha_milli: u64,
    mu_milli: u64,
) -> QueryRequest {
    QueryRequest {
        algorithm: ALGORITHMS[algorithm_index % ALGORITHMS.len()].to_string(),
        keywords: keyword_ids.iter().map(|id| format!("kw{id}")).collect(),
        rect: Rect::new(origin.0, origin.1, origin.0 + extent.0, origin.1 + extent.1),
        budget,
        k: if k == 0 { None } else { Some(k) },
        // Derive floats with awkward decimal expansions from integers so the
        // round-trip must be exact, not approximately equal.
        alpha: if alpha_milli == 0 {
            None
        } else {
            Some(alpha_milli as f64 / 997.0)
        },
        beta: None,
        mu: if mu_milli == 0 {
            None
        } else {
            Some(mu_milli as f64 / 1013.0)
        },
        deadline_ms: if alpha_milli % 2 == 0 {
            None
        } else {
            Some(alpha_milli)
        },
        priority: match k % 3 {
            0 => None,
            1 => Some("interactive".to_string()),
            _ => Some("batch".to_string()),
        },
        cache: match mu_milli % 3 {
            0 => None,
            1 => Some(true),
            _ => Some(false),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_round_trip_exactly(
        algorithm_index in 0usize..4,
        keyword_ids in collection::vec(0u32..10_000, 1..6),
        origin in (-1.0e6f64..1.0e6, -1.0e6f64..1.0e6),
        extent in (1.0e-3f64..1.0e5, 1.0e-3f64..1.0e5),
        budget in 1.0e-3f64..1.0e7,
        k in 0usize..8,
        alpha_milli in 0u64..100_000,
        mu_milli in 0u64..1_000,
    ) {
        let request = build_request(
            algorithm_index, &keyword_ids, origin, extent, budget, k, alpha_milli, mu_milli,
        );
        let body = request.to_body();
        let decoded = QueryRequest::from_body(&body).expect("encoded request must decode");
        prop_assert_eq!(&decoded, &request);
        // A second round trip is a fixed point.
        prop_assert_eq!(decoded.to_body(), body);
    }

    #[test]
    fn responses_round_trip_exactly(
        node_ids in collection::btree_set(0u32..1_000_000, 1..40),
        edge_ids in collection::btree_set(0u32..1_000_000, 1..40),
        length_micro in 0u64..100_000_000_000,
        weight_nano in 0u64..1_000_000_000_000,
        scaled in 0u64..1_000_000_000,
        times in (0u64..1_000_000_000_000, 0u64..1_000_000_000_000, 0u64..1_000_000_000_000),
        counters in (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
        region_count in 0usize..4,
    ) {
        let region = RegionDto {
            nodes: node_ids.into_iter().collect(),
            edges: edge_ids.into_iter().collect(),
            // Divisions by primes produce floats whose shortest decimal form
            // exercises many digits.
            length: length_micro as f64 / 999_983.0,
            weight: weight_nano as f64 / 1_000_003.0,
            scaled_weight: scaled,
        };
        let response = QueryResponse {
            regions: vec![region; region_count],
            stats: StatsDto {
                algorithm: "TGEN".into(),
                elapsed_ns: times.0,
                prepare_ns: times.1,
                grid_score_ns: times.1 / 2,
                graph_build_ns: times.1 / 3,
                solve_ns: times.2,
                queue_ns: times.0 / 3,
                nodes_in_region: counters.0,
                edges_in_region: counters.1,
                relevant_nodes: counters.2,
                kmst_calls: counters.0 / 2,
                tuples_generated: counters.1 / 2,
                greedy_steps: counters.2 / 2,
                pruned_pairs: counters.0 / 3,
                frontier_tuples: counters.1 / 3,
                frontier_peak: counters.2 / 3,
                dominance_evictions: counters.0 / 5,
                partial: counters.0 % 2 == 1,
                partial_cause: if counters.0 % 2 == 1 {
                    Some("deadline_exceeded".to_string())
                } else {
                    None
                },
                deadline_ns: if counters.1 % 2 == 1 { Some(times.0) } else { None },
                cache: counters.2 % 2 == 1,
                cache_hit: counters.2 % 4 == 1,
                cache_stale: counters.2 % 4 == 3,
                delta_prepare: counters.2 % 8 == 5,
            },
        };
        let body = response.to_body();
        let decoded = QueryResponse::from_body(&body).expect("encoded response must decode");
        prop_assert_eq!(&decoded, &response);
        // Measures survive bit-exactly — the service's "identical to a direct
        // engine call" guarantee depends on this.
        if !response.regions.is_empty() {
            prop_assert_eq!(
                decoded.regions[0].weight.to_bits(),
                response.regions[0].weight.to_bits()
            );
            prop_assert_eq!(
                decoded.regions[0].length.to_bits(),
                response.regions[0].length.to_bits()
            );
        }
    }

    #[test]
    fn truncated_bodies_error_cleanly(
        keyword_ids in collection::vec(0u32..100, 1..4),
        cut_permille in 0usize..1000,
    ) {
        let request = build_request(
            1, &keyword_ids, (0.0, 0.0), (100.0, 100.0), 500.0, 2, 42, 0,
        );
        let body = request.to_body();
        // Truncate somewhere strictly inside the body (never at full length).
        let cut = (cut_permille * (body.len() - 1)) / 1000;
        let truncated = &body[..cut];
        let result = QueryRequest::from_body(truncated);
        prop_assert!(result.is_err(), "truncated at {cut}/{} must not decode", body.len());
        // The error formats without panicking.
        let _ = result.unwrap_err().to_string();
    }

    #[test]
    fn mutated_bodies_never_panic(
        keyword_ids in collection::vec(0u32..100, 1..4),
        position_permille in 0usize..1000,
        replacement in 0u8..128,
    ) {
        let request = build_request(
            0, &keyword_ids, (0.0, 0.0), (10.0, 10.0), 100.0, 0, 0, 7,
        );
        let mut body = request.to_body().into_bytes();
        let position = (position_permille * (body.len() - 1)) / 1000;
        body[position] = replacement;
        if let Ok(body) = String::from_utf8(body) {
            // Whatever comes back — success on a harmless mutation or a clean
            // error — it must not panic the decoder.
            let _ = QueryRequest::from_body(&body);
        }
    }
}

#[test]
fn hostile_depth_and_size_are_bounded() {
    // Deep nesting fails fast instead of blowing the stack.
    let bomb = format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000));
    assert!(json::parse(&bomb).is_err());
    // A huge flat array parses or errors, but never panics (size limits are
    // the HTTP layer's job; the parser just has to stay linear).
    let big = format!("[{}]", vec!["1"; 10_000].join(","));
    assert!(json::parse(&big).is_ok());
}

#[test]
fn classic_malformed_bodies_are_rejected() {
    for body in [
        "",
        "   ",
        "{",
        "[1,2",
        r#"{"algorithm":"tgen""#,
        r#"{"algorithm": tgen}"#,
        "\u{0}\u{1}\u{2}",
        "POST /query HTTP/1.1",
        r#"{"algorithm":"tgen","keywords":["a"],"rect":[0,0,1,1],"budget":1e999}"#,
    ] {
        assert!(
            QueryRequest::from_body(body).is_err(),
            "{body:?} must be rejected"
        );
    }
}
