//! # lcmsr-datagen
//!
//! Synthetic data and workload generation for the LCMSR reproduction
//! ("Retrieving Regions of Interest for User Exploration", Cao et al.,
//! PVLDB 2014).
//!
//! The paper evaluates on the DIMACS New York road network with Google Places
//! objects and a north-west USA network with Flickr-tag objects; neither can be
//! redistributed with this repository.  This crate generates structurally
//! similar substitutes (see DESIGN.md §4 for the substitution argument):
//!
//! * [`network`] — NY-like (dense grid) and USANW-like (towns + highways) road
//!   networks at several scales,
//! * [`keywords`] — a skewed synthetic vocabulary of category + tail terms,
//! * [`objects`] — object placement along the network with planted co-location
//!   clusters,
//! * [`queries`] — the paper's query-workload generation procedure,
//! * [`dataset`] — presets bundling all of the above,
//! * [`zipf`] — the Zipf sampler underlying the keyword skew.
//!
//! # Example
//!
//! ```
//! use lcmsr_datagen::prelude::*;
//!
//! let dataset = Dataset::build(DatasetConfig::tiny(42));
//! let params = dataset.default_query_params(7);
//! let queries = dataset.queries(&QueryGenParams { num_queries: 3, ..params });
//! assert_eq!(queries.len(), 3);
//! ```

#![warn(missing_docs)]

pub mod dataset;
pub mod keywords;
pub mod network;
pub mod objects;
pub mod queries;
pub mod zipf;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::dataset::{Dataset, DatasetConfig, DatasetKind};
    pub use crate::keywords::{KeywordModel, CATEGORIES};
    pub use crate::network::{ny_like, usanw_like, NetworkScale};
    pub use crate::objects::{generate_objects, GeneratedObjects, ObjectGenParams};
    pub use crate::queries::{generate_queries, GeneratedQuery, QueryGenParams};
    pub use crate::zipf::Zipf;
}

pub use dataset::{Dataset, DatasetConfig, DatasetKind};
pub use network::NetworkScale;
pub use queries::{GeneratedQuery, QueryGenParams};
