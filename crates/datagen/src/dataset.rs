//! Dataset presets: ready-made network + object-collection bundles.
//!
//! A [`Dataset`] bundles a synthetic road network with its object collection
//! under a named preset, so examples, tests and the benchmark harness all
//! construct data the same way.

use crate::keywords::KeywordModel;
use crate::network::{ny_like, usanw_like, NetworkScale};
use crate::objects::{generate_objects, CategoryCluster, ObjectGenParams};
use crate::queries::{generate_queries, GeneratedQuery, QueryGenParams};
use lcmsr_geotext::collection::ObjectCollection;
use lcmsr_roadnet::graph::RoadNetwork;

/// Which of the paper's two data sets the preset imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Dense Manhattan-style network with Google-Places-like objects.
    NyLike,
    /// Sparse, large-extent network with Flickr-tag-like objects.
    UsanwLike,
}

/// Configuration of a dataset build.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Which structural preset to imitate.
    pub kind: DatasetKind,
    /// Network size preset.
    pub scale: NetworkScale,
    /// Number of geo-textual objects (the paper uses 0.5 M for NY and ~1.2 M for
    /// USANW; defaults here scale with the network preset).
    pub object_count: usize,
    /// Number of filler terms in the synthetic vocabulary.
    pub vocabulary_tail: usize,
    /// Grid-index cell size in metres.
    pub cell_size: f64,
    /// Master seed.
    pub seed: u64,
}

impl DatasetConfig {
    /// NY-like preset at the given scale with proportionate object counts.
    pub fn ny(scale: NetworkScale, seed: u64) -> Self {
        DatasetConfig {
            kind: DatasetKind::NyLike,
            scale,
            object_count: scale.target_nodes() * 2,
            vocabulary_tail: 2_000,
            cell_size: 500.0,
            seed,
        }
    }

    /// USANW-like preset at the given scale.
    pub fn usanw(scale: NetworkScale, seed: u64) -> Self {
        DatasetConfig {
            kind: DatasetKind::UsanwLike,
            scale,
            object_count: scale.target_nodes(),
            vocabulary_tail: 4_000,
            cell_size: 1_000.0,
            seed,
        }
    }

    /// A very small dataset for unit tests and doc examples.
    pub fn tiny(seed: u64) -> Self {
        DatasetConfig {
            kind: DatasetKind::NyLike,
            scale: NetworkScale::Tiny,
            object_count: 800,
            vocabulary_tail: 300,
            cell_size: 300.0,
            seed,
        }
    }
}

/// A built dataset: road network, indexed object collection, and the planted
/// category clusters (handy for constructing queries with known hot regions).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The dataset's configuration.
    pub config: DatasetConfig,
    /// The road network.
    pub network: RoadNetwork,
    /// The indexed geo-textual objects.
    pub collection: ObjectCollection,
    /// Category clusters planted during object generation.
    pub clusters: Vec<CategoryCluster>,
}

impl Dataset {
    /// Builds a dataset from its configuration.
    pub fn build(config: DatasetConfig) -> Self {
        let network = match config.kind {
            DatasetKind::NyLike => ny_like(config.scale, config.seed),
            DatasetKind::UsanwLike => usanw_like(config.scale, config.seed),
        }
        .expect("synthetic network generation cannot fail with valid presets");
        let keyword_model = KeywordModel::new(config.vocabulary_tail, 1.05);
        let object_params = ObjectGenParams {
            count: config.object_count,
            cluster_count: (config.object_count / 50).clamp(5, 400),
            seed: config.seed.wrapping_add(0x9E3779B97F4A7C15),
            ..ObjectGenParams::default()
        };
        let generated = generate_objects(&network, &keyword_model, &object_params);
        let collection = ObjectCollection::build(&network, generated.objects, config.cell_size)
            .expect("object collection build cannot fail on generated data");
        Dataset {
            config,
            network,
            collection,
            clusters: generated.clusters,
        }
    }

    /// Generates a query workload over this dataset.
    pub fn queries(&self, params: &QueryGenParams) -> Vec<GeneratedQuery> {
        generate_queries(&self.network, &self.collection, params)
    }

    /// The default query parameters the paper uses for this dataset kind
    /// (3 keywords; ∆ = 10 km / 15 km; Λ = 100 km² / 150 km²), scaled down for
    /// small synthetic networks so that `Q.Λ` does not exceed the data extent.
    pub fn default_query_params(&self, seed: u64) -> QueryGenParams {
        let extent_km2 = self.network.bounding_rect().map_or(1.0, |r| r.area_km2());
        let (paper_area, paper_delta): (f64, f64) = match self.config.kind {
            DatasetKind::NyLike => (100.0, 10.0),
            DatasetKind::UsanwLike => (150.0, 15.0),
        };
        // Use the paper's values when the network is large enough, otherwise
        // shrink proportionally (keeping ∆ ≈ paper_delta/paper_area · area).
        let area = paper_area.min(extent_km2 * 0.25).max(0.25);
        let delta = paper_delta * (area / paper_area).sqrt();
        QueryGenParams {
            num_queries: 50,
            num_keywords: 3,
            area_km2: area,
            delta_km: delta.max(0.5),
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_dataset_builds_consistently() {
        let ds = Dataset::build(DatasetConfig::tiny(3));
        assert!(ds.network.node_count() >= 350);
        assert!(ds.collection.len() > 500);
        assert!(!ds.clusters.is_empty());
        assert!(ds.collection.keyword_count() > 50);
    }

    #[test]
    fn ny_and_usanw_presets_differ_structurally() {
        let ny = Dataset::build(DatasetConfig::ny(NetworkScale::Tiny, 4));
        let usanw = Dataset::build(DatasetConfig::usanw(NetworkScale::Tiny, 4));
        let ny_area = ny.network.bounding_rect().unwrap().area();
        let us_area = usanw.network.bounding_rect().unwrap().area();
        assert!(us_area > ny_area);
        assert_eq!(ny.config.kind, DatasetKind::NyLike);
        assert_eq!(usanw.config.kind, DatasetKind::UsanwLike);
    }

    #[test]
    fn default_query_params_fit_the_extent() {
        let ds = Dataset::build(DatasetConfig::tiny(5));
        let params = ds.default_query_params(9);
        let extent_km2 = ds.network.bounding_rect().unwrap().area_km2();
        assert!(params.area_km2 <= extent_km2);
        assert!(params.delta_km > 0.0);
        let queries = ds.queries(&QueryGenParams {
            num_queries: 5,
            ..params
        });
        assert_eq!(queries.len(), 5);
    }

    #[test]
    fn dataset_build_is_deterministic() {
        let a = Dataset::build(DatasetConfig::tiny(8));
        let b = Dataset::build(DatasetConfig::tiny(8));
        assert_eq!(a.network.node_count(), b.network.node_count());
        assert_eq!(a.collection.len(), b.collection.len());
        assert_eq!(
            a.collection.objects()[0].terms,
            b.collection.objects()[0].terms
        );
    }
}
