//! Synthetic geo-textual object generation.
//!
//! Objects are placed *along the road network* (following the network
//! distribution, as the paper does for the USANW object set) and their
//! keywords follow the [`KeywordModel`].  Co-location — the clustering of
//! same-category PoIs that motivates the LCMSR query — is reproduced by
//! planting category clusters: a number of cluster centres are chosen on the
//! network, each assigned a category, and objects generated near a centre are
//! biased towards that category.

use crate::keywords::KeywordModel;
use lcmsr_geotext::object::GeoTextObject;
use lcmsr_roadnet::geo::Point;
use lcmsr_roadnet::graph::RoadNetwork;
use lcmsr_roadnet::node::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for synthetic object generation.
#[derive(Debug, Clone)]
pub struct ObjectGenParams {
    /// Number of objects to generate.
    pub count: usize,
    /// Number of category clusters planted on the network.
    pub cluster_count: usize,
    /// Radius (metres) within which a cluster biases object categories.
    pub cluster_radius: f64,
    /// Probability that an object inside a cluster adopts the cluster's category.
    pub cluster_affinity: f64,
    /// Number of Zipf filler terms per object description.
    pub extra_terms_per_object: usize,
    /// Maximum offset (metres) of an object from its anchor node — models
    /// storefronts set slightly back from the street.
    pub position_jitter: f64,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl Default for ObjectGenParams {
    fn default() -> Self {
        ObjectGenParams {
            count: 1_000,
            cluster_count: 20,
            cluster_radius: 600.0,
            cluster_affinity: 0.75,
            extra_terms_per_object: 3,
            position_jitter: 25.0,
            seed: 1,
        }
    }
}

/// A planted category cluster (useful for tests and for constructing queries
/// with known answers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoryCluster {
    /// Node at the centre of the cluster.
    pub center: NodeId,
    /// Location of the centre node.
    pub point: Point,
    /// Index into [`crate::keywords::CATEGORIES`].
    pub category: usize,
}

/// Result of synthetic object generation.
#[derive(Debug, Clone)]
pub struct GeneratedObjects {
    /// The generated objects.
    pub objects: Vec<GeoTextObject>,
    /// The planted clusters.
    pub clusters: Vec<CategoryCluster>,
}

/// Generates objects along `network` according to `params` using `keywords`.
///
/// Anchors are drawn uniformly from the network's nodes, which concentrates
/// objects where the network is dense — the "network distribution" used by the
/// paper for USANW.  Returns both the objects and the planted clusters.
pub fn generate_objects(
    network: &RoadNetwork,
    keywords: &KeywordModel,
    params: &ObjectGenParams,
) -> GeneratedObjects {
    assert!(network.node_count() > 0, "network must not be empty");
    let mut rng = StdRng::seed_from_u64(params.seed);
    // Plant clusters.
    let mut clusters = Vec::with_capacity(params.cluster_count);
    for _ in 0..params.cluster_count {
        let node = NodeId(rng.gen_range(0..network.node_count() as u32));
        clusters.push(CategoryCluster {
            center: node,
            point: network.point(node),
            category: keywords.sample_category(&mut rng),
        });
    }
    // Generate objects anchored at random nodes.
    let mut objects = Vec::with_capacity(params.count);
    for i in 0..params.count {
        let anchor = NodeId(rng.gen_range(0..network.node_count() as u32));
        let base = network.point(anchor);
        let jitter = params.position_jitter;
        let point = Point::new(
            base.x + rng.gen_range(-jitter..=jitter),
            base.y + rng.gen_range(-jitter..=jitter),
        );
        // Category: the nearest cluster wins with probability `cluster_affinity`
        // when the object lies within its radius, otherwise a fresh draw.
        let nearest_cluster = clusters
            .iter()
            .map(|c| (c, c.point.distance(&point)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let category = match nearest_cluster {
            Some((c, d)) if d <= params.cluster_radius && rng.gen_bool(params.cluster_affinity) => {
                c.category
            }
            _ => keywords.sample_category(&mut rng),
        };
        let description =
            keywords.sample_description(&mut rng, category, params.extra_terms_per_object);
        let rating = 1.0 + rng.gen_range(0.0..4.0);
        objects
            .push(GeoTextObject::from_keywords(i as u64, point, description).with_rating(rating));
    }
    GeneratedObjects { objects, clusters }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keywords::CATEGORIES;
    use crate::network::{ny_like, NetworkScale};

    fn setup() -> (RoadNetwork, KeywordModel) {
        (
            ny_like(NetworkScale::Tiny, 5).unwrap(),
            KeywordModel::new(200, 1.0),
        )
    }

    #[test]
    fn generates_requested_count_with_descriptions() {
        let (network, kw) = setup();
        let params = ObjectGenParams {
            count: 500,
            seed: 2,
            ..ObjectGenParams::default()
        };
        let generated = generate_objects(&network, &kw, &params);
        assert_eq!(generated.objects.len(), 500);
        assert_eq!(generated.clusters.len(), params.cluster_count);
        for o in &generated.objects {
            assert!(!o.is_empty());
            assert!(o.rating.unwrap() >= 1.0 && o.rating.unwrap() <= 5.0);
            assert!(o.point.is_finite());
        }
    }

    #[test]
    fn objects_lie_near_the_network() {
        let (network, kw) = setup();
        let params = ObjectGenParams {
            count: 200,
            position_jitter: 25.0,
            seed: 3,
            ..ObjectGenParams::default()
        };
        let generated = generate_objects(&network, &kw, &params);
        for o in &generated.objects {
            let nearest = network.nearest_node(&o.point).unwrap();
            let d = network.point(nearest).distance(&o.point);
            // Jitter is at most 25 m per axis → distance to anchor ≤ ~36 m.
            assert!(d <= 40.0, "object {:?} is {d} m from the network", o.id);
        }
    }

    #[test]
    fn clusters_create_colocation() {
        let (network, kw) = setup();
        let params = ObjectGenParams {
            count: 2_000,
            cluster_count: 5,
            cluster_radius: 800.0,
            cluster_affinity: 0.9,
            seed: 11,
            ..ObjectGenParams::default()
        };
        let generated = generate_objects(&network, &kw, &params);
        // Among the objects a cluster governs (those within its radius that lie
        // nearer to it than to any other cluster — the assignment rule of
        // `generate_objects`), the cluster's category should be clearly
        // over-represented relative to its global share.  Grouping by raw
        // radius membership instead would let overlapping clusters dilute each
        // other and make the check depend on lucky cluster placement.
        let mut checked = 0;
        for cluster in &generated.clusters {
            let cat_term = CATEGORIES[cluster.category];
            let nearby: Vec<_> = generated
                .objects
                .iter()
                .filter(|o| {
                    o.point.distance(&cluster.point) <= params.cluster_radius
                        && generated.clusters.iter().all(|other| {
                            o.point.distance(&other.point) >= o.point.distance(&cluster.point)
                        })
                })
                .collect();
            if nearby.len() < 20 {
                continue;
            }
            let with_cat = nearby.iter().filter(|o| o.contains_term(cat_term)).count();
            let share = with_cat as f64 / nearby.len() as f64;
            assert!(
                share > 0.4,
                "cluster {cat_term}: only {share:.2} of {} nearby objects match",
                nearby.len()
            );
            checked += 1;
        }
        assert!(checked > 0, "no cluster had enough nearby objects to check");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (network, kw) = setup();
        let params = ObjectGenParams {
            count: 100,
            seed: 9,
            ..ObjectGenParams::default()
        };
        let a = generate_objects(&network, &kw, &params);
        let b = generate_objects(&network, &kw, &params);
        assert_eq!(a.objects.len(), b.objects.len());
        for (x, y) in a.objects.iter().zip(&b.objects) {
            assert_eq!(x.point, y.point);
            assert_eq!(x.terms, y.terms);
        }
        let c = generate_objects(
            &network,
            &kw,
            &ObjectGenParams {
                seed: 10,
                count: 100,
                ..ObjectGenParams::default()
            },
        );
        let all_same = a
            .objects
            .iter()
            .zip(&c.objects)
            .all(|(x, y)| x.point == y.point && x.terms == y.terms);
        assert!(!all_same);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_network_panics() {
        let network = lcmsr_roadnet::GraphBuilder::new().build().unwrap();
        let kw = KeywordModel::new(10, 1.0);
        let _ = generate_objects(&network, &kw, &ObjectGenParams::default());
    }
}
