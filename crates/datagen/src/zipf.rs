//! Zipf-distributed sampling.
//!
//! Keyword frequencies in both of the paper's corpora (Google Places category
//! terms, Flickr tags) are heavily skewed: a few terms ("restaurant", "food",
//! "newyork") dominate while most terms are rare.  A Zipf distribution over
//! term ranks reproduces that skew for the synthetic corpora.

use rand::Rng;

/// A Zipf sampler over ranks `0..n` with exponent `s`.
///
/// Rank `k` (0-based) is drawn with probability proportional to `1/(k+1)^s`.
/// Sampling uses the precomputed cumulative distribution and a binary search,
/// so each draw is `O(log n)`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with the given exponent.
    ///
    /// # Panics
    /// Panics if `n == 0` or the exponent is not finite and non-negative.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf distribution needs at least one rank");
        assert!(
            exponent.is_finite() && exponent >= 0.0,
            "Zipf exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf, exponent }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is degenerate (never true: `new` requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The configured exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of drawing rank `k`.
    pub fn probability(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            return 0.0;
        }
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn bad_exponent_panics() {
        let _ = Zipf::new(10, f64::NAN);
    }

    #[test]
    fn probabilities_sum_to_one_and_decrease() {
        let z = Zipf::new(100, 1.0);
        assert_eq!(z.len(), 100);
        assert!(!z.is_empty());
        assert_eq!(z.exponent(), 1.0);
        let total: f64 = (0..100).map(|k| z.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..100 {
            assert!(z.probability(k) <= z.probability(k - 1) + 1e-12);
        }
        assert_eq!(z.probability(1000), 0.0);
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.probability(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_respects_skew() {
        let z = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should dominate and every sampled rank must be valid.
        assert!(counts[0] > counts[10] && counts[0] > counts[49]);
        assert!(counts[0] as f64 / 20_000.0 > z.probability(0) * 0.8);
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = Zipf::new(20, 1.0);
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }
}
