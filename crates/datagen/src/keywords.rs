//! Synthetic keyword model.
//!
//! The paper's corpora mix a small set of dominant *category* terms (Google
//! Places types such as "food" and "restaurant"; popular Flickr tags) with a
//! long tail of rare terms (business names, free-form tags).  The
//! [`KeywordModel`] reproduces this: a fixed list of category terms plus a
//! Zipf-distributed tail of filler terms.

use crate::zipf::Zipf;
use rand::Rng;

/// Point-of-interest categories used as the head of the keyword distribution.
/// These double as realistic query keywords ("cafe", "restaurant", …).
pub const CATEGORIES: &[&str] = &[
    "restaurant",
    "cafe",
    "coffee",
    "bar",
    "pub",
    "bakery",
    "pizza",
    "sushi",
    "burger",
    "italian",
    "chinese",
    "mexican",
    "thai",
    "indian",
    "steakhouse",
    "seafood",
    "vegan",
    "dessert",
    "museum",
    "gallery",
    "theater",
    "cinema",
    "park",
    "playground",
    "gym",
    "yoga",
    "spa",
    "salon",
    "pharmacy",
    "hospital",
    "clinic",
    "dentist",
    "school",
    "library",
    "bookstore",
    "supermarket",
    "grocery",
    "bank",
    "atm",
    "hotel",
    "hostel",
    "boutique",
    "shoes",
    "jeans",
    "electronics",
    "hardware",
    "florist",
    "bikeshop",
    "laundry",
    "nightclub",
];

/// Generator of synthetic object descriptions.
#[derive(Debug, Clone)]
pub struct KeywordModel {
    filler_terms: Vec<String>,
    filler_distribution: Zipf,
    category_distribution: Zipf,
}

impl KeywordModel {
    /// Creates a model with `filler_count` tail terms (named `tag0000`,
    /// `tag0001`, …) whose frequencies follow a Zipf law with the given exponent.
    pub fn new(filler_count: usize, zipf_exponent: f64) -> Self {
        let filler_count = filler_count.max(1);
        let filler_terms = (0..filler_count).map(|i| format!("tag{i:05}")).collect();
        KeywordModel {
            filler_terms,
            filler_distribution: Zipf::new(filler_count, zipf_exponent),
            category_distribution: Zipf::new(CATEGORIES.len(), 0.7),
        }
    }

    /// Number of category terms.
    pub fn category_count(&self) -> usize {
        CATEGORIES.len()
    }

    /// Number of filler (tail) terms.
    pub fn filler_count(&self) -> usize {
        self.filler_terms.len()
    }

    /// Total vocabulary size.
    pub fn vocabulary_size(&self) -> usize {
        self.category_count() + self.filler_count()
    }

    /// The category term with the given index.
    pub fn category(&self, index: usize) -> &str {
        CATEGORIES[index % CATEGORIES.len()]
    }

    /// Draws a category index following the category popularity distribution.
    pub fn sample_category<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.category_distribution.sample(rng)
    }

    /// Draws a filler term.
    pub fn sample_filler<R: Rng + ?Sized>(&self, rng: &mut R) -> &str {
        &self.filler_terms[self.filler_distribution.sample(rng)]
    }

    /// Generates a description for an object of category `category_index`:
    /// the category term, possibly a second related category, and
    /// `extra_terms` Zipf-drawn filler terms.
    pub fn sample_description<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        category_index: usize,
        extra_terms: usize,
    ) -> Vec<String> {
        let mut out = Vec::with_capacity(extra_terms + 2);
        out.push(self.category(category_index).to_string());
        // With 30 % probability add a second, related category (e.g. a pizza
        // place is also tagged "restaurant"); related = adjacent index.
        if rng.gen_bool(0.3) {
            out.push(self.category(category_index + 1).to_string());
        }
        for _ in 0..extra_terms {
            out.push(self.sample_filler(rng).to_string());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn categories_are_distinct_and_nonempty() {
        let mut sorted = CATEGORIES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), CATEGORIES.len());
        assert!(CATEGORIES.len() >= 40);
        assert!(CATEGORIES.iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn model_counts_are_consistent() {
        let m = KeywordModel::new(1000, 1.0);
        assert_eq!(m.filler_count(), 1000);
        assert_eq!(m.category_count(), CATEGORIES.len());
        assert_eq!(m.vocabulary_size(), 1000 + CATEGORIES.len());
        assert_eq!(m.category(0), "restaurant");
        assert_eq!(m.category(CATEGORIES.len()), "restaurant"); // wraps around
    }

    #[test]
    fn zero_filler_count_is_bumped_to_one() {
        let m = KeywordModel::new(0, 1.0);
        assert_eq!(m.filler_count(), 1);
    }

    #[test]
    fn descriptions_contain_their_category() {
        let m = KeywordModel::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        for (cat, expected) in CATEGORIES.iter().enumerate().take(10) {
            let desc = m.sample_description(&mut rng, cat, 3);
            assert!(desc.contains(&(*expected).to_string()));
            assert!(desc.len() >= 4 && desc.len() <= 5);
        }
    }

    #[test]
    fn category_sampling_is_skewed_towards_head() {
        let m = KeywordModel::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut head = 0;
        let n = 5000;
        for _ in 0..n {
            if m.sample_category(&mut rng) < 5 {
                head += 1;
            }
        }
        // The first five categories should account for well over the uniform share.
        assert!(head as f64 / n as f64 > 5.0 / CATEGORIES.len() as f64 * 1.5);
    }

    #[test]
    fn filler_terms_are_valid_and_skewed() {
        let m = KeywordModel::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(5);
        let mut first = 0;
        for _ in 0..2000 {
            let t = m.sample_filler(&mut rng);
            assert!(t.starts_with("tag"));
            if t == "tag00000" {
                first += 1;
            }
        }
        assert!(first > 100, "most common filler drawn {first} times");
    }
}
