//! Synthetic road networks standing in for the paper's data sets.
//!
//! The paper evaluates on the DIMACS New York road network (264 346 nodes,
//! 733 846 arcs) and a north-west USA network (1 207 945 nodes, 2 840 208
//! arcs).  Neither can be redistributed here, so this module synthesises
//! networks with the same *structural* character at configurable scale:
//!
//! * [`ny_like`] — a dense Manhattan-style perturbed grid (short blocks,
//!   degree ≈ 3–4, compact extent);
//! * [`usanw_like`] — a sparse region of scattered towns (ring-and-spoke
//!   clusters) connected by long highway segments, covering a much larger
//!   extent with lower density.
//!
//! Both are deterministic given a seed, and `lcmsr-roadnet`'s DIMACS reader can
//! load the real files instead when they are available.

use lcmsr_roadnet::builder::GraphBuilder;
use lcmsr_roadnet::generator::{
    connect_components, perturbed_grid, radial_network, GridParams, RadialParams,
};
use lcmsr_roadnet::geo::Point;
use lcmsr_roadnet::graph::RoadNetwork;
use lcmsr_roadnet::node::NodeId;
use lcmsr_roadnet::Result;

/// Size presets for synthetic networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkScale {
    /// A few hundred nodes — unit tests and doc examples.
    Tiny,
    /// A few thousand nodes — integration tests.
    Small,
    /// Tens of thousands of nodes — benchmark harness default.
    Medium,
    /// Towards the paper's scale (hundreds of thousands of nodes); slow to build.
    Large,
    /// Past the paper's NY scale (a million nodes); the continent-scale tier
    /// exercised by `bench/benches/scale.rs` and the CI `scale-smoke` job.
    Huge,
}

impl NetworkScale {
    /// Approximate target node count of the preset.
    pub fn target_nodes(self) -> usize {
        match self {
            NetworkScale::Tiny => 400,
            NetworkScale::Small => 4_000,
            NetworkScale::Medium => 25_000,
            NetworkScale::Large => 250_000,
            NetworkScale::Huge => 1_000_000,
        }
    }
}

/// Generates a New-York-like network: a dense perturbed grid with ~120 m blocks.
pub fn ny_like(scale: NetworkScale, seed: u64) -> Result<RoadNetwork> {
    let target = scale.target_nodes();
    let side = (target as f64).sqrt().round() as usize;
    let params = GridParams {
        cols: side.max(4),
        rows: side.max(4),
        spacing: 120.0,
        jitter: 0.18,
        drop_probability: 0.08,
        diagonal_probability: 0.04,
        seed,
    };
    let grid = perturbed_grid(&params)?;
    connect_components(grid)
}

/// Generates a north-west-USA-like network: `towns × towns` ring-and-spoke
/// towns on a coarse lattice, linked by long highway edges, giving a sparser
/// network over a much larger extent than [`ny_like`].
pub fn usanw_like(scale: NetworkScale, seed: u64) -> Result<RoadNetwork> {
    let target = scale.target_nodes();
    // Each town has 1 + rings*spokes nodes; choose town count and size so the
    // total is close to the target.
    let (towns_per_side, rings, spokes) = match scale {
        NetworkScale::Tiny => (2, 4, 8),
        NetworkScale::Small => (4, 6, 10),
        NetworkScale::Medium => (7, 8, 12),
        NetworkScale::Large => (16, 12, 20),
        // 1024 towns * (1 + 24*40) ≈ 984k nodes, plus highway lattice.
        NetworkScale::Huge => (32, 24, 40),
    };
    let town_spacing = 8_000.0; // 8 km between town centres
    let mut builder = GraphBuilder::new();
    let mut town_centers: Vec<Vec<NodeId>> = Vec::new();
    let mut town_seed = seed;
    for ty in 0..towns_per_side {
        let mut row_centers = Vec::new();
        for tx in 0..towns_per_side {
            town_seed = town_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let town = radial_network(&RadialParams {
                rings,
                spokes,
                ring_spacing: 250.0,
                seed: town_seed,
            })?;
            let offset = Point::new(tx as f64 * town_spacing, ty as f64 * town_spacing);
            // Copy the town into the combined builder, remembering the id offset.
            let base = builder.node_count() as u32;
            for n in town.nodes() {
                builder.add_node_with_kind(
                    Point::new(n.point.x + offset.x, n.point.y + offset.y),
                    n.kind,
                );
            }
            for e in town.edges() {
                builder.add_edge(NodeId(base + e.a.0), NodeId(base + e.b.0), e.length)?;
            }
            // The town centre is the first node of the radial network.
            row_centers.push(NodeId(base));
        }
        town_centers.push(row_centers);
    }
    // Highways between adjacent towns (grid lattice over town centres).
    for ty in 0..towns_per_side {
        for tx in 0..towns_per_side {
            if tx + 1 < towns_per_side {
                builder.add_edge_euclidean(town_centers[ty][tx], town_centers[ty][tx + 1])?;
            }
            if ty + 1 < towns_per_side {
                builder.add_edge_euclidean(town_centers[ty][tx], town_centers[ty + 1][tx])?;
            }
        }
    }
    let network = builder.build()?;
    debug_assert!(network.node_count() > 0);
    // Sanity: the preset should land within a factor of a few of the target.
    let _ = target;
    connect_components(network)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmsr_roadnet::traversal::connected_components;

    #[test]
    fn scale_targets_are_increasing() {
        assert!(NetworkScale::Tiny.target_nodes() < NetworkScale::Small.target_nodes());
        assert!(NetworkScale::Small.target_nodes() < NetworkScale::Medium.target_nodes());
        assert!(NetworkScale::Medium.target_nodes() < NetworkScale::Large.target_nodes());
        assert!(NetworkScale::Large.target_nodes() < NetworkScale::Huge.target_nodes());
        assert!(NetworkScale::Huge.target_nodes() >= 1_000_000);
    }

    #[test]
    fn ny_like_tiny_is_connected_and_dense() {
        let g = ny_like(NetworkScale::Tiny, 7).unwrap();
        assert!(
            g.node_count() >= 350 && g.node_count() <= 500,
            "nodes {}",
            g.node_count()
        );
        assert_eq!(connected_components(&g).len(), 1);
        let stats = g.stats();
        assert!(stats.avg_degree > 2.5, "avg degree {}", stats.avg_degree);
        // Manhattan-style blocks: average segment roughly 100-200 m.
        assert!(stats.avg_edge_length > 80.0 && stats.avg_edge_length < 250.0);
    }

    #[test]
    fn ny_like_is_deterministic() {
        let a = ny_like(NetworkScale::Tiny, 42).unwrap();
        let b = ny_like(NetworkScale::Tiny, 42).unwrap();
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        let c = ny_like(NetworkScale::Tiny, 43).unwrap();
        let identical = a.node_count() == c.node_count()
            && a.edge_count() == c.edge_count()
            && a.nodes()
                .iter()
                .zip(c.nodes())
                .all(|(x, y)| x.point == y.point);
        assert!(!identical);
    }

    #[test]
    fn usanw_like_tiny_is_connected_and_sparser() {
        let g = usanw_like(NetworkScale::Tiny, 3).unwrap();
        assert!(g.node_count() > 100, "nodes {}", g.node_count());
        assert_eq!(connected_components(&g).len(), 1);
        let ny = ny_like(NetworkScale::Tiny, 3).unwrap();
        // USANW covers a much larger extent than NY at similar node counts.
        let usanw_area = g.bounding_rect().unwrap().area();
        let ny_area = ny.bounding_rect().unwrap().area();
        assert!(usanw_area > ny_area * 2.0);
    }

    #[test]
    fn usanw_like_small_has_multiple_towns() {
        let g = usanw_like(NetworkScale::Small, 9).unwrap();
        // 16 towns * (1 + 6*10) = 976 nodes.
        assert!(g.node_count() >= 900, "nodes {}", g.node_count());
        assert_eq!(connected_components(&g).len(), 1);
        // Highways exist: some edges are much longer than town streets.
        assert!(g.max_edge_length().unwrap() > 2_000.0);
    }
}
