//! LCMSR query-workload generation.
//!
//! Reproduces the paper's query generation procedure (Section 7.1): each query
//! first selects a query area following the network distribution (a random
//! node becomes the centre of a square of the configured area), then selects
//! query keywords among the terms that actually appear inside that area,
//! sampled proportionally to their in-area frequency.

use lcmsr_geotext::collection::ObjectCollection;
use lcmsr_roadnet::geo::{km, Rect};
use lcmsr_roadnet::graph::RoadNetwork;
use lcmsr_roadnet::node::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Parameters of a generated query workload.
#[derive(Debug, Clone)]
pub struct QueryGenParams {
    /// Number of queries in the set (the paper uses 50 per setting).
    pub num_queries: usize,
    /// Number of query keywords (the paper varies 1–5, default 3).
    pub num_keywords: usize,
    /// Area of the region of interest `Q.Λ` in km² (paper: 100 for NY, 150 for USANW).
    pub area_km2: f64,
    /// Length constraint `Q.∆` in kilometres (paper: 10 for NY, 15 for USANW).
    pub delta_km: f64,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl Default for QueryGenParams {
    fn default() -> Self {
        QueryGenParams {
            num_queries: 50,
            num_keywords: 3,
            area_km2: 100.0,
            delta_km: 10.0,
            seed: 1,
        }
    }
}

/// One generated LCMSR query: keywords, length constraint and region of interest.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedQuery {
    /// Query keywords `Q.ψ`.
    pub keywords: Vec<String>,
    /// Length constraint `Q.∆` in metres.
    pub delta: f64,
    /// Region of interest `Q.Λ`.
    pub rect: Rect,
}

/// Generates a query workload over `network` and `collection`.
///
/// Keyword selection follows in-area term frequency; if an area contains fewer
/// distinct terms than requested, the query gets all of them.  Areas with no
/// objects at all are re-drawn (up to a bounded number of attempts) so every
/// generated query has at least one relevant object.
pub fn generate_queries(
    network: &RoadNetwork,
    collection: &ObjectCollection,
    params: &QueryGenParams,
) -> Vec<GeneratedQuery> {
    assert!(network.node_count() > 0, "network must not be empty");
    assert!(params.num_keywords > 0, "queries need at least one keyword");
    let mut rng = StdRng::seed_from_u64(params.seed);
    let side = (params.area_km2 * 1.0e6).sqrt();
    let mut queries = Vec::with_capacity(params.num_queries);
    let max_attempts = 50;
    for _ in 0..params.num_queries {
        let mut chosen: Option<GeneratedQuery> = None;
        for _ in 0..max_attempts {
            let center_node = NodeId(rng.gen_range(0..network.node_count() as u32));
            let rect = Rect::centered_square(network.point(center_node), side);
            // Collect term frequencies of objects inside the rectangle.
            let mut term_freq: HashMap<&str, u32> = HashMap::new();
            for o in collection.objects() {
                if rect.contains(&o.point) {
                    for (term, &tf) in &o.terms {
                        *term_freq.entry(term.as_str()).or_insert(0) += tf;
                    }
                }
            }
            if term_freq.is_empty() {
                continue;
            }
            let keywords = sample_keywords(&mut rng, &term_freq, params.num_keywords);
            chosen = Some(GeneratedQuery {
                keywords,
                delta: km(params.delta_km),
                rect,
            });
            break;
        }
        if let Some(q) = chosen {
            queries.push(q);
        }
    }
    queries
}

/// Samples up to `count` distinct keywords proportionally to their frequency.
fn sample_keywords(rng: &mut StdRng, term_freq: &HashMap<&str, u32>, count: usize) -> Vec<String> {
    let mut pool: Vec<(&str, u32)> = term_freq.iter().map(|(&t, &f)| (t, f)).collect();
    // Deterministic iteration order regardless of HashMap ordering.
    pool.sort_unstable_by(|a, b| a.0.cmp(b.0));
    let mut chosen = Vec::with_capacity(count);
    for _ in 0..count.min(pool.len()) {
        let total: u64 = pool.iter().map(|&(_, f)| f as u64).sum();
        if total == 0 {
            break;
        }
        let mut draw = rng.gen_range(0..total);
        let mut pick = 0usize;
        for (i, &(_, f)) in pool.iter().enumerate() {
            if draw < f as u64 {
                pick = i;
                break;
            }
            draw -= f as u64;
        }
        let (term, _) = pool.remove(pick);
        chosen.push(term.to_string());
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keywords::KeywordModel;
    use crate::network::{ny_like, NetworkScale};
    use crate::objects::{generate_objects, ObjectGenParams};
    use lcmsr_geotext::collection::ObjectCollection;

    fn dataset() -> (RoadNetwork, ObjectCollection) {
        let network = ny_like(NetworkScale::Tiny, 5).unwrap();
        let kw = KeywordModel::new(200, 1.0);
        let generated = generate_objects(
            &network,
            &kw,
            &ObjectGenParams {
                count: 800,
                seed: 2,
                ..ObjectGenParams::default()
            },
        );
        let collection = ObjectCollection::build(&network, generated.objects, 300.0).unwrap();
        (network, collection)
    }

    #[test]
    fn generates_requested_number_of_queries() {
        let (network, collection) = dataset();
        let params = QueryGenParams {
            num_queries: 10,
            num_keywords: 3,
            area_km2: 2.0,
            delta_km: 1.0,
            seed: 7,
        };
        let queries = generate_queries(&network, &collection, &params);
        assert_eq!(queries.len(), 10);
        for q in &queries {
            assert!(!q.keywords.is_empty() && q.keywords.len() <= 3);
            assert!((q.rect.area_km2() - 2.0).abs() < 1e-6);
            assert_eq!(q.delta, 1000.0);
        }
    }

    #[test]
    fn queries_have_relevant_objects_in_area() {
        let (network, collection) = dataset();
        let params = QueryGenParams {
            num_queries: 8,
            num_keywords: 2,
            area_km2: 1.5,
            delta_km: 1.0,
            seed: 13,
        };
        let queries = generate_queries(&network, &collection, &params);
        for q in &queries {
            let weights = collection.node_weights_for_keywords(&q.keywords, &q.rect);
            assert!(
                !weights.is_empty(),
                "query {:?} has no relevant node in its area",
                q.keywords
            );
        }
    }

    #[test]
    fn keyword_count_respects_parameter() {
        let (network, collection) = dataset();
        for k in 1..=5 {
            let params = QueryGenParams {
                num_queries: 4,
                num_keywords: k,
                area_km2: 3.0,
                delta_km: 1.0,
                seed: 21 + k as u64,
            };
            let queries = generate_queries(&network, &collection, &params);
            for q in &queries {
                assert!(q.keywords.len() <= k);
                assert!(!q.keywords.is_empty());
                // keywords are distinct
                let mut sorted = q.keywords.clone();
                sorted.sort();
                sorted.dedup();
                assert_eq!(sorted.len(), q.keywords.len());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (network, collection) = dataset();
        let params = QueryGenParams {
            num_queries: 6,
            seed: 33,
            area_km2: 2.0,
            delta_km: 1.0,
            num_keywords: 3,
        };
        let a = generate_queries(&network, &collection, &params);
        let b = generate_queries(&network, &collection, &params);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one keyword")]
    fn zero_keywords_panics() {
        let (network, collection) = dataset();
        let params = QueryGenParams {
            num_keywords: 0,
            ..QueryGenParams::default()
        };
        let _ = generate_queries(&network, &collection, &params);
    }
}
