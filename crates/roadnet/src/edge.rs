//! Road-network edges (undirected road segments).

use crate::node::NodeId;
use serde::{Deserialize, Serialize};

/// Identifier of an edge in a [`crate::graph::RoadNetwork`].
///
/// Edge ids are dense indices assigned by the builder.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Returns the id as a usize suitable for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for EdgeId {
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

impl From<usize> for EdgeId {
    fn from(v: usize) -> Self {
        EdgeId(v as u32)
    }
}

impl std::fmt::Display for EdgeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An undirected road segment connecting two nodes, with a positive length
/// (the distance function τ of Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoadEdge {
    /// Identifier of the edge.
    pub id: EdgeId,
    /// One endpoint (the smaller node id by construction).
    pub a: NodeId,
    /// The other endpoint (the larger node id by construction).
    pub b: NodeId,
    /// Road-segment length in metres; always positive and finite.
    pub length: f64,
}

impl RoadEdge {
    /// Creates an edge; endpoints are normalised so that `a <= b`.
    pub fn new(id: EdgeId, a: NodeId, b: NodeId, length: f64) -> Self {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        RoadEdge { id, a, b, length }
    }

    /// Given one endpoint, returns the opposite endpoint.
    ///
    /// # Panics
    /// Panics if `from` is not an endpoint of this edge.
    pub fn other(&self, from: NodeId) -> NodeId {
        if from == self.a {
            self.b
        } else if from == self.b {
            self.a
        } else {
            panic!("node {from} is not an endpoint of edge {}", self.id)
        }
    }

    /// Whether `node` is one of the edge's endpoints.
    pub fn touches(&self, node: NodeId) -> bool {
        self.a == node || self.b == node
    }

    /// The endpoints as a pair `(a, b)` with `a <= b`.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_normalises_endpoint_order() {
        let e = RoadEdge::new(EdgeId(0), NodeId(5), NodeId(2), 10.0);
        assert_eq!(e.endpoints(), (NodeId(2), NodeId(5)));
    }

    #[test]
    fn other_returns_opposite_endpoint() {
        let e = RoadEdge::new(EdgeId(0), NodeId(1), NodeId(2), 1.0);
        assert_eq!(e.other(NodeId(1)), NodeId(2));
        assert_eq!(e.other(NodeId(2)), NodeId(1));
        assert!(e.touches(NodeId(1)));
        assert!(!e.touches(NodeId(3)));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_panics_for_foreign_node() {
        let e = RoadEdge::new(EdgeId(0), NodeId(1), NodeId(2), 1.0);
        let _ = e.other(NodeId(9));
    }

    #[test]
    fn edge_id_display_and_index() {
        assert_eq!(EdgeId(4).to_string(), "e4");
        assert_eq!(EdgeId::from(7usize).index(), 7);
        assert_eq!(EdgeId::from(7u32), EdgeId(7));
    }
}
