//! [`NodeGrid`]: a uniform spatial grid over the network's node locations.
//!
//! `Q.Λ` extraction used to scan every node of the network per query — fine
//! at a few thousand nodes, a prepare-phase wall at continent scale.  The
//! grid buckets node ids by cell in a CSR layout (one offset table, one flat
//! id array — no per-cell allocation), so a query rectangle touches only the
//! nodes of its **cell cover**: the cost is proportional to the covered area,
//! not to `|V|`.
//!
//! The grid is built once per network in [`crate::graph::RoadNetwork`]'s
//! constructor.  Cell size is chosen from the node density so the average
//! cell holds a handful of nodes; within a cell, ids ascend (the build is a
//! counting sort over nodes in id order), which downstream sorted merges rely
//! on.  A rectangle cover splits cleanly along rows, so callers can fan
//! gathering out across threads and concatenate band results in row order
//! without any nondeterminism.

use crate::geo::Rect;
use crate::node::{NodeId, RoadNode};
use serde::{Deserialize, Serialize};

/// Target average number of nodes per occupied grid cell.
const TARGET_NODES_PER_CELL: f64 = 8.0;

/// A uniform grid mapping cells to the node ids located inside them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeGrid {
    /// Bounding rectangle of all node locations; `None` for an empty network.
    extent: Option<Rect>,
    cell_size: f64,
    cols: u32,
    rows: u32,
    /// CSR offsets: cell `(col, row)` owns
    /// `node_ids[cell_offsets[row * cols + col] .. cell_offsets[row * cols + col + 1]]`.
    cell_offsets: Vec<u32>,
    /// Node ids grouped by cell, ascending id within each cell.
    node_ids: Vec<NodeId>,
}

/// The grid cells intersecting a query rectangle: an inclusive column and row
/// range.  Rows split the cover into disjoint horizontal bands, which is the
/// axis parallel gathering fans out along.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridCover {
    /// First intersecting column.
    pub col_lo: u32,
    /// Last intersecting column (inclusive).
    pub col_hi: u32,
    /// First intersecting row.
    pub row_lo: u32,
    /// Last intersecting row (inclusive).
    pub row_hi: u32,
}

impl GridCover {
    /// Number of cells in the cover.
    pub fn cell_count(&self) -> u64 {
        u64::from(self.col_hi - self.col_lo + 1) * u64::from(self.row_hi - self.row_lo + 1)
    }

    /// The sub-cover restricted to rows `row_lo..=row_hi` (caller guarantees
    /// the range lies inside this cover).
    pub fn rows(&self, row_lo: u32, row_hi: u32) -> GridCover {
        debug_assert!(self.row_lo <= row_lo && row_hi <= self.row_hi);
        GridCover {
            col_lo: self.col_lo,
            col_hi: self.col_hi,
            row_lo,
            row_hi,
        }
    }
}

impl NodeGrid {
    /// Builds the grid for a node set (counting-sort CSR; nodes are visited
    /// in id order so per-cell id lists come out ascending).
    pub(crate) fn build(nodes: &[RoadNode]) -> NodeGrid {
        let Some(extent) = Rect::bounding(nodes.iter().map(|n| n.point)) else {
            return NodeGrid {
                extent: None,
                cell_size: 1.0,
                cols: 0,
                rows: 0,
                cell_offsets: vec![0],
                node_ids: Vec::new(),
            };
        };
        // Aim for TARGET_NODES_PER_CELL nodes per cell on average.  Degenerate
        // extents (all nodes collinear or coincident) get a floor on each
        // dimension so the arithmetic stays finite and the grid stays tiny.
        let cells_target = ((nodes.len() as f64) / TARGET_NODES_PER_CELL).max(1.0);
        let width = extent.width().max(1e-6);
        let height = extent.height().max(1e-6);
        let cell_size = (width * height / cells_target).sqrt().max(1e-9);
        let cols = ((width / cell_size).ceil() as u32).max(1);
        let rows = ((height / cell_size).ceil() as u32).max(1);

        let cell_of = |n: &RoadNode| -> usize {
            let col = (((n.point.x - extent.min_x) / cell_size) as u32).min(cols - 1);
            let row = (((n.point.y - extent.min_y) / cell_size) as u32).min(rows - 1);
            row as usize * cols as usize + col as usize
        };

        let cell_count = cols as usize * rows as usize;
        let mut cell_offsets = vec![0u32; cell_count + 1];
        for n in nodes {
            cell_offsets[cell_of(n) + 1] += 1;
        }
        for i in 0..cell_count {
            cell_offsets[i + 1] += cell_offsets[i];
        }
        let mut cursor: Vec<u32> = cell_offsets[..cell_count].to_vec();
        let mut node_ids = vec![NodeId(0); nodes.len()];
        for n in nodes {
            let c = cell_of(n);
            node_ids[cursor[c] as usize] = n.id;
            cursor[c] += 1;
        }
        NodeGrid {
            extent: Some(extent),
            cell_size,
            cols,
            rows,
            cell_offsets,
            node_ids,
        }
    }

    /// Grid dimensions as `(cols, rows)`.
    pub fn dimensions(&self) -> (u32, u32) {
        (self.cols, self.rows)
    }

    /// Side length of a cell in metres.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// The inclusive cell range intersecting `rect`, or `None` when the rect
    /// misses the grid extent entirely (or the network is empty).
    pub fn cover(&self, rect: &Rect) -> Option<GridCover> {
        let extent = self.extent.as_ref()?;
        let clip = rect.intersection(extent)?;
        let col = |x: f64| (((x - extent.min_x) / self.cell_size) as u32).min(self.cols - 1);
        let row = |y: f64| (((y - extent.min_y) / self.cell_size) as u32).min(self.rows - 1);
        Some(GridCover {
            col_lo: col(clip.min_x),
            col_hi: col(clip.max_x),
            row_lo: row(clip.min_y),
            row_hi: row(clip.max_y),
        })
    }

    /// Appends every node id bucketed in the cover's cells to `out`, row by
    /// row.  Candidates only: a node in an edge cell may still fall outside
    /// the query rectangle, so callers filter by point containment.
    pub fn candidates_in_cover(&self, cover: &GridCover, out: &mut Vec<NodeId>) {
        for row in cover.row_lo..=cover.row_hi {
            let base = row as usize * self.cols as usize;
            // Cells of one row are contiguous in the CSR arrays, so the whole
            // column span is a single slice copy.
            let start = self.cell_offsets[base + cover.col_lo as usize] as usize;
            let end = self.cell_offsets[base + cover.col_hi as usize + 1] as usize;
            out.extend_from_slice(&self.node_ids[start..end]);
        }
    }

    /// Total number of node ids bucketed in the cover's cells.
    pub fn candidate_count(&self, cover: &GridCover) -> usize {
        let mut total = 0usize;
        for row in cover.row_lo..=cover.row_hi {
            let base = row as usize * self.cols as usize;
            let start = self.cell_offsets[base + cover.col_lo as usize] as usize;
            let end = self.cell_offsets[base + cover.col_hi as usize + 1] as usize;
            total += end - start;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::Point;
    use crate::node::NodeKind;

    fn nodes_on_grid(side: u32, spacing: f64) -> Vec<RoadNode> {
        let mut nodes = Vec::new();
        for y in 0..side {
            for x in 0..side {
                nodes.push(RoadNode {
                    id: NodeId(y * side + x),
                    point: Point::new(f64::from(x) * spacing, f64::from(y) * spacing),
                    kind: NodeKind::Junction,
                });
            }
        }
        nodes
    }

    #[test]
    fn empty_grid_has_no_cover() {
        let g = NodeGrid::build(&[]);
        assert!(g.cover(&Rect::new(0.0, 0.0, 1.0, 1.0)).is_none());
        assert_eq!(g.dimensions(), (0, 0));
    }

    #[test]
    fn cover_and_candidates_match_a_linear_scan() {
        let nodes = nodes_on_grid(20, 100.0);
        let g = NodeGrid::build(&nodes);
        for rect in [
            Rect::new(0.0, 0.0, 1900.0, 1900.0),
            Rect::new(250.0, 250.0, 750.0, 1100.0),
            Rect::new(0.0, 0.0, 0.0, 0.0),
            Rect::new(1899.0, 1899.0, 5000.0, 5000.0),
        ] {
            let mut candidates = Vec::new();
            if let Some(cover) = g.cover(&rect) {
                g.candidates_in_cover(&cover, &mut candidates);
                assert_eq!(candidates.len(), g.candidate_count(&cover));
            }
            candidates.retain(|id| rect.contains(&nodes[id.index()].point));
            candidates.sort_unstable();
            let expected: Vec<NodeId> = nodes
                .iter()
                .filter(|n| rect.contains(&n.point))
                .map(|n| n.id)
                .collect();
            assert_eq!(candidates, expected, "rect {rect:?}");
        }
    }

    #[test]
    fn rect_outside_extent_has_no_cover() {
        let nodes = nodes_on_grid(4, 100.0);
        let g = NodeGrid::build(&nodes);
        assert!(g
            .cover(&Rect::new(1000.0, 1000.0, 2000.0, 2000.0))
            .is_none());
        assert!(g.cover(&Rect::new(-50.0, -50.0, -1.0, -1.0)).is_none());
    }

    #[test]
    fn small_cover_touches_few_candidates() {
        let nodes = nodes_on_grid(100, 100.0); // 10k nodes over ~10km x 10km
        let g = NodeGrid::build(&nodes);
        let cover = g.cover(&Rect::new(4000.0, 4000.0, 4400.0, 4400.0)).unwrap();
        // A ~0.2% area rect must not touch anywhere near the whole network.
        assert!(
            g.candidate_count(&cover) < nodes.len() / 10,
            "cover touched {} of {} nodes",
            g.candidate_count(&cover),
            nodes.len()
        );
    }

    #[test]
    fn row_bands_partition_the_cover() {
        let nodes = nodes_on_grid(30, 100.0);
        let g = NodeGrid::build(&nodes);
        let rect = Rect::new(100.0, 100.0, 2800.0, 2800.0);
        let cover = g.cover(&rect).unwrap();
        let mut whole = Vec::new();
        g.candidates_in_cover(&cover, &mut whole);
        let mid = cover.row_lo + (cover.row_hi - cover.row_lo) / 2;
        let mut banded = Vec::new();
        g.candidates_in_cover(&cover.rows(cover.row_lo, mid), &mut banded);
        g.candidates_in_cover(&cover.rows(mid + 1, cover.row_hi), &mut banded);
        assert_eq!(whole, banded, "band concatenation must equal the full scan");
    }

    #[test]
    fn degenerate_extents_build_finite_grids() {
        // All nodes coincident.
        let coincident: Vec<RoadNode> = (0..5)
            .map(|i| RoadNode {
                id: NodeId(i),
                point: Point::new(3.0, 4.0),
                kind: NodeKind::Junction,
            })
            .collect();
        let g = NodeGrid::build(&coincident);
        let cover = g.cover(&Rect::new(0.0, 0.0, 10.0, 10.0)).unwrap();
        let mut out = Vec::new();
        g.candidates_in_cover(&cover, &mut out);
        assert_eq!(out.len(), 5);
        // All nodes collinear.
        let collinear: Vec<RoadNode> = (0..50)
            .map(|i| RoadNode {
                id: NodeId(i),
                point: Point::new(f64::from(i) * 10.0, 0.0),
                kind: NodeKind::Junction,
            })
            .collect();
        let g = NodeGrid::build(&collinear);
        let cover = g.cover(&Rect::new(95.0, -1.0, 205.0, 1.0)).unwrap();
        let mut out = Vec::new();
        g.candidates_in_cover(&cover, &mut out);
        out.retain(|id| Rect::new(95.0, -1.0, 205.0, 1.0).contains(&collinear[id.index()].point));
        assert_eq!(out.len(), 11); // nodes at 100, 110, …, 200
    }
}
