//! Incremental, validating construction of [`RoadNetwork`]s.

use crate::edge::{EdgeId, RoadEdge};
use crate::error::{Result, RoadNetError};
use crate::geo::Point;
use crate::graph::RoadNetwork;
use crate::node::{NodeId, NodeKind, RoadNode};
use std::collections::HashMap;

/// Builder that accumulates nodes and edges, validates them, and produces an
/// immutable [`RoadNetwork`].
///
/// The builder
/// * assigns dense node/edge ids,
/// * rejects self-loops, non-finite coordinates and non-positive lengths,
/// * deduplicates parallel edges keeping the shortest one (real road data sets
///   such as DIMACS contain both directions of each arc and occasional
///   duplicates), and
/// * classifies degree-one nodes as dead ends.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    nodes: Vec<RoadNode>,
    edges: Vec<RoadEdge>,
    /// Maps normalised endpoint pairs to the edge index, for deduplication.
    edge_index: HashMap<(NodeId, NodeId), usize>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with pre-allocated capacity for `nodes` nodes and
    /// `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            edge_index: HashMap::with_capacity(edges),
        }
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of (deduplicated) edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a junction node at `point` and returns its id.
    pub fn add_node(&mut self, point: Point) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(RoadNode::new(id, point));
        id
    }

    /// Adds a node with an explicit kind and returns its id.
    pub fn add_node_with_kind(&mut self, point: Point, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(RoadNode::with_kind(id, point, kind));
        id
    }

    /// Adds an undirected road segment of the given length between `a` and `b`.
    ///
    /// If an edge between the two nodes already exists, the shorter length is
    /// kept and the existing edge id is returned.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, length: f64) -> Result<EdgeId> {
        if a.index() >= self.nodes.len() {
            return Err(RoadNetError::UnknownNode { node: a.0 });
        }
        if b.index() >= self.nodes.len() {
            return Err(RoadNetError::UnknownNode { node: b.0 });
        }
        if a == b {
            return Err(RoadNetError::SelfLoop { node: a.0 });
        }
        if !(length.is_finite() && length > 0.0) {
            return Err(RoadNetError::InvalidLength {
                a: a.0,
                b: b.0,
                length,
            });
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&idx) = self.edge_index.get(&key) {
            if length < self.edges[idx].length {
                self.edges[idx].length = length;
            }
            return Ok(self.edges[idx].id);
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(RoadEdge::new(id, a, b, length));
        self.edge_index.insert(key, id.index());
        Ok(id)
    }

    /// Adds an edge whose length is the Euclidean distance between its endpoints.
    pub fn add_edge_euclidean(&mut self, a: NodeId, b: NodeId) -> Result<EdgeId> {
        if a.index() >= self.nodes.len() {
            return Err(RoadNetError::UnknownNode { node: a.0 });
        }
        if b.index() >= self.nodes.len() {
            return Err(RoadNetError::UnknownNode { node: b.0 });
        }
        let length = self.nodes[a.index()]
            .point
            .distance(&self.nodes[b.index()].point);
        self.add_edge(a, b, length)
    }

    /// Validates all accumulated data and produces the immutable network.
    pub fn build(mut self) -> Result<RoadNetwork> {
        for n in &self.nodes {
            if !n.point.is_finite() {
                return Err(RoadNetError::InvalidCoordinate { node: n.id.0 });
            }
        }
        // Classify dead ends (degree 1) unless already flagged as object locations.
        let mut degree = vec![0usize; self.nodes.len()];
        for e in &self.edges {
            degree[e.a.index()] += 1;
            degree[e.b.index()] += 1;
        }
        for n in &mut self.nodes {
            if degree[n.id.index()] == 1 && n.kind == NodeKind::Junction {
                n.kind = NodeKind::DeadEnd;
            }
        }
        Ok(RoadNetwork::from_parts(self.nodes, self.edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_network() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(1.0, 0.0));
        let d = b.add_node(Point::new(2.0, 0.0));
        b.add_edge(a, c, 1.0).unwrap();
        b.add_edge(c, d, 1.0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn rejects_unknown_nodes_self_loops_and_bad_lengths() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(1.0, 0.0));
        assert!(matches!(
            b.add_edge(a, NodeId(9), 1.0),
            Err(RoadNetError::UnknownNode { node: 9 })
        ));
        assert!(matches!(
            b.add_edge(a, a, 1.0),
            Err(RoadNetError::SelfLoop { .. })
        ));
        assert!(matches!(
            b.add_edge(a, c, 0.0),
            Err(RoadNetError::InvalidLength { .. })
        ));
        assert!(matches!(
            b.add_edge(a, c, f64::NAN),
            Err(RoadNetError::InvalidLength { .. })
        ));
        assert!(matches!(
            b.add_edge(a, c, -2.0),
            Err(RoadNetError::InvalidLength { .. })
        ));
    }

    #[test]
    fn deduplicates_parallel_edges_keeping_shortest() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(1.0, 0.0));
        let e1 = b.add_edge(a, c, 5.0).unwrap();
        let e2 = b.add_edge(c, a, 3.0).unwrap();
        assert_eq!(e1, e2);
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.length(e1), 3.0);
    }

    #[test]
    fn euclidean_edge_uses_node_distance() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(3.0, 4.0));
        let e = b.add_edge_euclidean(a, c).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.length(e), 5.0);
    }

    #[test]
    fn rejects_non_finite_coordinates_on_build() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(f64::INFINITY, 0.0));
        assert!(matches!(
            b.build(),
            Err(RoadNetError::InvalidCoordinate { node: 0 })
        ));
    }

    #[test]
    fn classifies_dead_ends() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(1.0, 0.0));
        let d = b.add_node(Point::new(2.0, 0.0));
        b.add_edge(a, c, 1.0).unwrap();
        b.add_edge(c, d, 1.0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.node(a).kind, NodeKind::DeadEnd);
        assert_eq!(g.node(c).kind, NodeKind::Junction);
        assert_eq!(g.node(d).kind, NodeKind::DeadEnd);
    }

    #[test]
    fn object_location_kind_is_preserved() {
        let mut b = GraphBuilder::new();
        let a = b.add_node_with_kind(Point::new(0.0, 0.0), NodeKind::ObjectLocation);
        let c = b.add_node(Point::new(1.0, 0.0));
        b.add_edge(a, c, 1.0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.node(a).kind, NodeKind::ObjectLocation);
    }

    #[test]
    fn with_capacity_builds_identically() {
        let mut b = GraphBuilder::with_capacity(10, 10);
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(1.0, 0.0));
        b.add_edge(a, c, 1.0).unwrap();
        assert_eq!(b.node_count(), 2);
        assert_eq!(b.edge_count(), 1);
        let g = b.build().unwrap();
        assert_eq!(g.node_count(), 2);
    }
}
