//! Query-region views of a road network.
//!
//! An LCMSR query restricts processing to the rectangular region of interest
//! `Q.Λ`.  [`RegionView`] captures the nodes of the network inside such a
//! rectangle together with the induced edges, and exposes the restricted
//! adjacency that all LCMSR algorithms operate on.

use crate::edge::EdgeId;
use crate::epoch::EpochMap;
use crate::geo::Rect;
use crate::graph::RoadNetwork;
use crate::node::NodeId;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Reusable scratch buffers for building [`RegionView`]s.
///
/// Extracting `Q.Λ` allocates a node list, an edge list and a node→local-id
/// table sized to the whole network.  A long-lived scratch lets successive
/// queries over the same network reuse all three:
/// [`RegionView::new_reusing`] takes the buffers out of the scratch and
/// [`RegionView::recycle`] puts them back, so a steady stream of views
/// performs no per-query allocation once the buffers have grown to size.
#[derive(Debug, Clone, Default)]
pub struct RegionScratch {
    members: EpochMap,
    nodes: Vec<NodeId>,
    edges: Vec<EdgeId>,
}

impl RegionScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current size of the node-membership epoch table, in entries.  Exposed
    /// so scale benches and regression tests can evidence that prepare-phase
    /// memory tracks the query rectangle's cell cover (the touched node-id
    /// band), not the network size.
    pub fn member_table_len(&self) -> usize {
        self.members.table_len()
    }
}

/// A view of the subgraph of a [`RoadNetwork`] induced by the nodes inside a
/// rectangle (the paper's `Q.Λ`).
///
/// The view borrows the underlying network; node and edge ids are the global
/// ids of the parent network so that results can be interpreted without
/// translation.
#[derive(Debug, Clone)]
pub struct RegionView<'g> {
    graph: &'g RoadNetwork,
    rect: Rect,
    /// Nodes inside the rectangle, sorted by id.
    nodes: Vec<NodeId>,
    /// Edges with both endpoints inside the rectangle, sorted by id.
    edges: Vec<EdgeId>,
    /// Maps a member node's global index to its position in `nodes`
    /// (the view's dense local id); cleared in O(1) when recycled.
    members: EpochMap,
}

impl<'g> RegionView<'g> {
    /// Creates the view of `graph` induced by the nodes located inside `rect`.
    pub fn new(graph: &'g RoadNetwork, rect: Rect) -> Self {
        Self::new_reusing(graph, rect, &mut RegionScratch::new())
    }

    /// Like [`RegionView::new`], but reuses the buffers held by `scratch`
    /// (see [`RegionScratch`]).  Return them with [`RegionView::recycle`].
    pub fn new_reusing(graph: &'g RoadNetwork, rect: Rect, scratch: &mut RegionScratch) -> Self {
        Self::new_reusing_with_workers(graph, rect, scratch, 1)
    }

    /// Like [`RegionView::new_reusing`], fanning candidate gathering and edge
    /// induction out over `workers` scoped threads.  The output is
    /// **bit-identical** to the sequential path for any worker count: band
    /// results are merged in row order and both node and edge lists are
    /// sorted by id before use, so thread scheduling cannot leak into the
    /// view (golden suites pin this).
    ///
    /// Cost is proportional to the rectangle's grid cell cover, not to the
    /// network: nodes are gathered from [`crate::spatial::NodeGrid`] buckets,
    /// induced edges from member adjacency, and the membership table is
    /// epoch-rebased at the smallest member id so it spans the touched id
    /// band only.
    pub fn new_reusing_with_workers(
        graph: &'g RoadNetwork,
        rect: Rect,
        scratch: &mut RegionScratch,
        workers: usize,
    ) -> Self {
        let mut members = std::mem::take(&mut scratch.members);
        let mut nodes = std::mem::take(&mut scratch.nodes);
        nodes.clear();
        let mut edges = std::mem::take(&mut scratch.edges);
        edges.clear();

        // Gather member nodes from the rect's cell cover.
        if let Some(cover) = graph.node_grid().cover(&rect) {
            let rows = u64::from(cover.row_hi - cover.row_lo) + 1;
            let band_workers = workers.clamp(1, rows.min(64) as usize);
            if band_workers > 1 {
                // One horizontal band of rows per worker; bands are disjoint
                // and concatenated in row order.
                let bands = std::thread::scope(|s| {
                    let handles: Vec<_> = (0..band_workers)
                        .map(|w| {
                            let lo = cover.row_lo + (rows * w as u64 / band_workers as u64) as u32;
                            let hi = cover.row_lo
                                + (rows * (w as u64 + 1) / band_workers as u64) as u32
                                - 1;
                            s.spawn(move || {
                                let mut band = Vec::new();
                                graph
                                    .node_grid()
                                    .candidates_in_cover(&cover.rows(lo, hi), &mut band);
                                band.retain(|&id| rect.contains(&graph.point(id)));
                                band
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("view gather worker panicked"))
                        .collect::<Vec<_>>()
                });
                for band in &bands {
                    nodes.extend_from_slice(band);
                }
            } else {
                graph.node_grid().candidates_in_cover(&cover, &mut nodes);
                nodes.retain(|&id| rect.contains(&graph.point(id)));
            }
            // Grid buckets are keyed by cell, so the concatenation is not id
            // sorted; one sort restores the view invariant (ids are unique —
            // every node lives in exactly one cell).
            nodes.sort_unstable();
        }

        // Membership table rebased at the smallest member id: its size tracks
        // the touched id band, not the id-space prefix below it.
        members.begin_at(nodes.first().map_or(0, |id| id.index()));
        for (i, &id) in nodes.iter().enumerate() {
            members.insert(id.index(), i as u32);
        }

        // Induced edges from member adjacency (each in-view edge is pushed
        // once, from its smaller endpoint) instead of a scan over every edge
        // of the network.
        let gather_edges = |chunk: &[NodeId], out: &mut Vec<EdgeId>| {
            for &a in chunk {
                for &(b, e) in graph.neighbors(a) {
                    if a < b && members.contains(b.index()) {
                        out.push(e);
                    }
                }
            }
        };
        let edge_workers = workers.clamp(1, nodes.len().clamp(1, 64));
        if edge_workers > 1 {
            let chunk_len = nodes.len().div_ceil(edge_workers);
            let members_ref = &members;
            let chunks = std::thread::scope(|s| {
                let handles: Vec<_> = nodes
                    .chunks(chunk_len)
                    .map(|chunk| {
                        s.spawn(move || {
                            let mut out = Vec::new();
                            for &a in chunk {
                                for &(b, e) in graph.neighbors(a) {
                                    if a < b && members_ref.contains(b.index()) {
                                        out.push(e);
                                    }
                                }
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("edge gather worker panicked"))
                    .collect::<Vec<_>>()
            });
            for chunk in &chunks {
                edges.extend_from_slice(chunk);
            }
        } else {
            gather_edges(&nodes, &mut edges);
        }
        // Adjacency order is per-endpoint, not global: sort restores the
        // edge-id order the old whole-network filter produced.
        edges.sort_unstable();

        RegionView {
            graph,
            rect,
            nodes,
            edges,
            members,
        }
    }

    /// Returns the view's buffers to `scratch` so the next
    /// [`RegionView::new_reusing`] call can reuse them.
    pub fn recycle(self, scratch: &mut RegionScratch) {
        scratch.members = self.members;
        scratch.nodes = self.nodes;
        scratch.edges = self.edges;
    }

    /// A view containing the whole network (`Q.Λ` = entire space).
    pub fn whole(graph: &'g RoadNetwork) -> Self {
        let rect = graph
            .bounding_rect()
            .unwrap_or_else(|| Rect::new(0.0, 0.0, 0.0, 0.0))
            .expanded(1.0);
        Self::new(graph, rect)
    }

    /// The underlying network.
    pub fn graph(&self) -> &'g RoadNetwork {
        self.graph
    }

    /// The rectangle that induced this view.
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// Nodes inside the view, sorted by id (`V_Q` in the paper).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Edges fully inside the view, sorted by id (`E_Q` in the paper).
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of nodes inside the view (`|V_Q|`).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges inside the view (`|E_Q|`).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether `node` belongs to the view.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(node.index())
    }

    /// Position of `node` in [`RegionView::nodes`], if it lies in the view —
    /// an O(1) table lookup.  Dense per-view state (distances, weights, …)
    /// can live in flat vectors indexed by this local id even when the
    /// network has millions of nodes.
    #[inline]
    pub fn local_index(&self, node: NodeId) -> Option<usize> {
        self.members.get(node.index()).map(|i| i as usize)
    }

    /// Neighbours of `node` restricted to the view, as `(neighbour, edge)` pairs.
    pub fn neighbors(&self, node: NodeId) -> Vec<(NodeId, EdgeId)> {
        if !self.contains(node) {
            return Vec::new();
        }
        self.graph
            .neighbors(node)
            .iter()
            .copied()
            .filter(|(n, _)| self.contains(*n))
            .collect()
    }

    /// Length of an edge (delegates to the parent network).
    #[inline]
    pub fn length(&self, edge: EdgeId) -> f64 {
        self.graph.length(edge)
    }

    /// Minimum edge length inside the view (`d_min`), or `None` if edgeless.
    pub fn min_edge_length(&self) -> Option<f64> {
        self.edges
            .iter()
            .map(|&e| self.graph.length(e))
            .fold(None, |acc, l| match acc {
                None => Some(l),
                Some(m) => Some(m.min(l)),
            })
    }

    /// Maximum edge length inside the view (`τ_max` used by Greedy), or `None`.
    pub fn max_edge_length(&self) -> Option<f64> {
        self.edges
            .iter()
            .map(|&e| self.graph.length(e))
            .fold(None, |acc, l| match acc {
                None => Some(l),
                Some(m) => Some(m.max(l)),
            })
    }

    /// Connected components of the view, largest first.
    pub fn components(&self) -> Vec<Vec<NodeId>> {
        let mut seen = vec![false; self.graph.node_count()];
        let mut comps = Vec::new();
        for &start in &self.nodes {
            if seen[start.index()] {
                continue;
            }
            let mut comp = Vec::new();
            let mut q = VecDeque::new();
            seen[start.index()] = true;
            q.push_back(start);
            while let Some(v) = q.pop_front() {
                comp.push(v);
                for (n, _) in self.neighbors(v) {
                    if !seen[n.index()] {
                        seen[n.index()] = true;
                        q.push_back(n);
                    }
                }
            }
            comps.push(comp);
        }
        comps.sort_by_key(|c| std::cmp::Reverse(c.len()));
        comps
    }

    /// Checks whether the given node set is connected within the view using
    /// only the given edges.  Used to validate result regions.
    pub fn is_connected_region(&self, nodes: &[NodeId], edges: &[EdgeId]) -> bool {
        if nodes.is_empty() {
            return false;
        }
        if nodes.len() == 1 {
            return edges.is_empty();
        }
        // Adjacency restricted to the provided edges.
        let node_set: std::collections::HashSet<NodeId> = nodes.iter().copied().collect();
        let mut adj: std::collections::HashMap<NodeId, Vec<NodeId>> =
            std::collections::HashMap::new();
        for &e in edges {
            let edge = self.graph.edge(e);
            if !node_set.contains(&edge.a) || !node_set.contains(&edge.b) {
                return false;
            }
            adj.entry(edge.a).or_default().push(edge.b);
            adj.entry(edge.b).or_default().push(edge.a);
        }
        let mut seen: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        let mut q = VecDeque::new();
        seen.insert(nodes[0]);
        q.push_back(nodes[0]);
        while let Some(v) = q.pop_front() {
            if let Some(ns) = adj.get(&v) {
                for &n in ns {
                    if seen.insert(n) {
                        q.push_back(n);
                    }
                }
            }
        }
        seen.len() == nodes.len()
    }

    /// Dijkstra from `source` restricted to the view, with every per-node
    /// array sized `|V_Q|` rather than `|V|`: the cost of a call depends only
    /// on the view's size, not on how large the surrounding network is (the
    /// property the MaxRS comparison of Section 7.5 relies on).
    ///
    /// Returns distances indexed by [`RegionView::local_index`].  A source
    /// outside the view yields a result with every node unreachable.
    pub fn distances_from(&self, source: NodeId) -> ViewDistances {
        let n = self.nodes.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut settled = 0usize;
        let mut heap: BinaryHeap<ViewHeapEntry> = BinaryHeap::new();
        if let Some(src) = self.local_index(source) {
            dist[src] = 0.0;
            heap.push(ViewHeapEntry {
                dist: 0.0,
                local: src as u32,
            });
        }
        while let Some(ViewHeapEntry { dist: d, local }) = heap.pop() {
            if d > dist[local as usize] {
                continue;
            }
            settled += 1;
            let v = self.nodes[local as usize];
            for &(u, e) in self.graph.neighbors(v) {
                let Some(lu) = self.local_index(u) else {
                    continue;
                };
                let nd = d + self.graph.length(e);
                if nd < dist[lu] {
                    dist[lu] = nd;
                    heap.push(ViewHeapEntry {
                        dist: nd,
                        local: lu as u32,
                    });
                }
            }
        }
        ViewDistances { dist, settled }
    }
}

/// Entry in the view-restricted Dijkstra priority queue (local node ids).
#[derive(Debug, Clone, Copy, PartialEq)]
struct ViewHeapEntry {
    dist: f64,
    local: u32,
}

impl Eq for ViewHeapEntry {}

impl Ord for ViewHeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that the BinaryHeap (max-heap) pops the smallest distance.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.local.cmp(&self.local))
    }
}

impl PartialOrd for ViewHeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of [`RegionView::distances_from`]: shortest-path distances in local
/// (view) node indices, plus the number of nodes the search settled — a
/// machine-independent measure of the work performed, used by regression
/// tests to pin the cost to `|V_Q|`.
#[derive(Debug, Clone)]
pub struct ViewDistances {
    dist: Vec<f64>,
    settled: usize,
}

impl ViewDistances {
    /// Distance to the node at local index `local`, or `None` if unreachable.
    pub fn by_local(&self, local: usize) -> Option<f64> {
        let d = self.dist[local];
        if d.is_finite() {
            Some(d)
        } else {
            None
        }
    }

    /// Number of local slots (equals the view's node count).
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// Whether the view had no nodes at all.
    pub fn is_empty(&self) -> bool {
        self.dist.is_empty()
    }

    /// Number of nodes settled by the search (≤ the view's node count).
    pub fn settled(&self) -> usize {
        self.settled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::geo::Point;

    /// A 4x4 grid graph with unit spacing.
    fn grid4() -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..4 {
            for x in 0..4 {
                ids.push(b.add_node(Point::new(x as f64, y as f64)));
            }
        }
        for y in 0..4 {
            for x in 0..4 {
                let i = y * 4 + x;
                if x < 3 {
                    b.add_edge(ids[i], ids[i + 1], 1.0).unwrap();
                }
                if y < 3 {
                    b.add_edge(ids[i], ids[i + 4], 1.0).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn whole_view_covers_everything() {
        let g = grid4();
        let v = RegionView::whole(&g);
        assert_eq!(v.node_count(), 16);
        assert_eq!(v.edge_count(), 24);
        assert!(v.contains(NodeId(0)));
    }

    #[test]
    fn rect_view_restricts_nodes_and_edges() {
        let g = grid4();
        // Lower-left 2x2 corner.
        let v = RegionView::new(&g, Rect::new(-0.5, -0.5, 1.5, 1.5));
        assert_eq!(v.node_count(), 4);
        assert_eq!(v.edge_count(), 4);
        assert!(v.contains(NodeId(0)));
        assert!(!v.contains(NodeId(15)));
        assert_eq!(v.neighbors(NodeId(0)).len(), 2);
        assert!(v.neighbors(NodeId(15)).is_empty());
    }

    #[test]
    fn view_edge_lengths_delegate_to_graph() {
        let g = grid4();
        let v = RegionView::whole(&g);
        assert_eq!(v.min_edge_length(), Some(1.0));
        assert_eq!(v.max_edge_length(), Some(1.0));
        let e = v.edges()[0];
        assert_eq!(v.length(e), 1.0);
    }

    #[test]
    fn empty_view_has_no_components() {
        let g = grid4();
        let v = RegionView::new(&g, Rect::new(100.0, 100.0, 101.0, 101.0));
        assert_eq!(v.node_count(), 0);
        assert!(v.components().is_empty());
        assert!(v.min_edge_length().is_none());
    }

    #[test]
    fn components_split_by_rectangle() {
        let g = grid4();
        // A thin rectangle containing only rows y=0 and y=3 → two components.
        let v = RegionView::new(&g, Rect::new(-0.5, -0.5, 3.5, 0.5));
        assert_eq!(v.components().len(), 1);
        // Two disjoint columns: x=0 and x=3 cannot both be selected by a single
        // rectangle, so instead check that a full view is a single component.
        let whole = RegionView::whole(&g);
        assert_eq!(whole.components().len(), 1);
    }

    #[test]
    fn is_connected_region_validates_results() {
        let g = grid4();
        let v = RegionView::whole(&g);
        let e01 = g.edge_between(NodeId(0), NodeId(1)).unwrap();
        let e12 = g.edge_between(NodeId(1), NodeId(2)).unwrap();
        assert!(v.is_connected_region(&[NodeId(0), NodeId(1), NodeId(2)], &[e01, e12]));
        // Missing connecting edge → not connected.
        assert!(!v.is_connected_region(&[NodeId(0), NodeId(1), NodeId(2)], &[e01]));
        // Single node with no edges is a valid (degenerate) region.
        assert!(v.is_connected_region(&[NodeId(5)], &[]));
        // Empty region is not valid.
        assert!(!v.is_connected_region(&[], &[]));
        // Edge endpoint outside the node set → invalid.
        assert!(!v.is_connected_region(&[NodeId(0)], &[e01]));
    }

    #[test]
    fn boundary_nodes_are_included() {
        let g = grid4();
        let v = RegionView::new(&g, Rect::new(0.0, 0.0, 1.0, 1.0));
        assert_eq!(v.node_count(), 4);
    }

    #[test]
    fn reused_scratch_builds_identical_views() {
        let g = grid4();
        let mut scratch = RegionScratch::new();
        for rect in [
            Rect::new(-0.5, -0.5, 1.5, 1.5),
            Rect::new(0.5, 0.5, 3.5, 3.5),
            Rect::new(-0.5, -0.5, 3.5, 3.5),
            Rect::new(100.0, 100.0, 101.0, 101.0),
        ] {
            let fresh = RegionView::new(&g, rect);
            let reused = RegionView::new_reusing(&g, rect, &mut scratch);
            assert_eq!(fresh.nodes(), reused.nodes());
            assert_eq!(fresh.edges(), reused.edges());
            for n in g.node_ids() {
                assert_eq!(fresh.contains(n), reused.contains(n));
                assert_eq!(fresh.local_index(n), reused.local_index(n));
            }
            reused.recycle(&mut scratch);
        }
    }

    #[test]
    fn membership_table_is_sized_by_touched_nodes_not_network() {
        // A 4x4 grid plus a 2000-node appendage with higher node ids: a view
        // over the grid corner must size its epoch table by the touched node
        // ids (≤ 16 here), not pay 8 bytes per node of the whole network —
        // the PR 2 one-shot regression ROADMAP recorded.
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..4 {
            for x in 0..4 {
                ids.push(b.add_node(Point::new(x as f64, y as f64)));
            }
        }
        for y in 0..4 {
            for x in 0..4 {
                let i = y * 4 + x;
                if x < 3 {
                    b.add_edge(ids[i], ids[i + 1], 1.0).unwrap();
                }
                if y < 3 {
                    b.add_edge(ids[i], ids[i + 4], 1.0).unwrap();
                }
            }
        }
        let mut prev = ids[15];
        for k in 0..2000 {
            let n = b.add_node(Point::new(100.0 + k as f64, 100.0));
            b.add_edge(prev, n, 1.0).unwrap();
            prev = n;
        }
        let g = b.build().unwrap();
        assert_eq!(g.node_count(), 2016);

        let mut scratch = RegionScratch::new();
        let v = RegionView::new_reusing(&g, Rect::new(-0.5, -0.5, 1.5, 1.5), &mut scratch);
        assert_eq!(v.node_count(), 4);
        v.recycle(&mut scratch);
        assert!(
            scratch.members.table_len() <= 16,
            "epoch table grew to {} entries for a 4-node view of a 2016-node network",
            scratch.members.table_len()
        );
    }

    #[test]
    fn parallel_views_are_identical_to_sequential_for_any_worker_count() {
        let g = grid4();
        let mut scratch = RegionScratch::new();
        for rect in [
            Rect::new(-0.5, -0.5, 1.5, 1.5),
            Rect::new(0.0, 0.0, 3.0, 3.0),
            Rect::new(-10.0, -10.0, 10.0, 10.0),
            Rect::new(100.0, 100.0, 101.0, 101.0), // empty
            Rect::new(1.0, -0.5, 1.0, 3.5),        // zero-width strip
        ] {
            let sequential = RegionView::new(&g, rect);
            for workers in [1, 2, 3, 4, 7, 16] {
                let parallel =
                    RegionView::new_reusing_with_workers(&g, rect, &mut scratch, workers);
                assert_eq!(sequential.nodes(), parallel.nodes(), "workers={workers}");
                assert_eq!(sequential.edges(), parallel.edges(), "workers={workers}");
                for n in g.node_ids() {
                    assert_eq!(sequential.local_index(n), parallel.local_index(n));
                }
                parallel.recycle(&mut scratch);
            }
        }
    }

    #[test]
    fn membership_table_is_sized_by_the_touched_id_band_even_for_high_ids() {
        // A view over nodes carrying the *highest* ids of the network: the
        // lazy high-water bound alone would size the table to the whole id
        // range; the offset rebase keeps it at the band width.
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..4 {
            for x in 0..4 {
                ids.push(b.add_node(Point::new(x as f64, y as f64)));
            }
        }
        let mut prev = ids[15];
        for k in 0..2000 {
            let n = b.add_node(Point::new(100.0 + k as f64, 100.0));
            b.add_edge(prev, n, 1.0).unwrap();
            prev = n;
        }
        let g = b.build().unwrap();
        // Nodes at x = 2090..=2099 are ids 2006..=2015, the network's last ten.
        let mut scratch = RegionScratch::new();
        let v = RegionView::new_reusing(&g, Rect::new(2089.5, 99.0, 2099.5, 101.0), &mut scratch);
        assert_eq!(v.node_count(), 10);
        assert_eq!(v.edge_count(), 9);
        v.recycle(&mut scratch);
        assert!(
            scratch.member_table_len() <= 10,
            "epoch table grew to {} entries for a 10-node band at the top of the id space",
            scratch.member_table_len()
        );
    }

    #[test]
    fn local_index_matches_node_positions() {
        let g = grid4();
        let v = RegionView::new(&g, Rect::new(-0.5, -0.5, 1.5, 1.5));
        for (i, &n) in v.nodes().iter().enumerate() {
            assert_eq!(v.local_index(n), Some(i));
        }
        assert_eq!(v.local_index(NodeId(15)), None);
    }

    #[test]
    fn view_distances_match_restricted_dijkstra() {
        let g = grid4();
        let rect = Rect::new(-0.5, -0.5, 2.5, 2.5); // 3x3 corner
        let v = RegionView::new(&g, rect);
        let inside = |n: NodeId| v.contains(n);
        let full = crate::traversal::dijkstra(&g, NodeId(0), inside);
        let local = v.distances_from(NodeId(0));
        assert_eq!(local.len(), v.node_count());
        assert!(!local.is_empty());
        for (i, &n) in v.nodes().iter().enumerate() {
            assert_eq!(full.distance(n), local.by_local(i));
        }
        // A source outside the view reaches nothing.
        let outside = v.distances_from(NodeId(15));
        assert!((0..v.node_count()).all(|i| outside.by_local(i).is_none()));
        assert_eq!(outside.settled(), 0);
    }

    #[test]
    fn view_distance_cost_is_independent_of_outside_nodes() {
        // The same 2x2 region carved out of a 4x4 grid and out of a network
        // with a long appendage of nodes outside the rectangle must settle the
        // same number of nodes.
        let small = grid4();
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..4 {
            for x in 0..4 {
                ids.push(b.add_node(Point::new(x as f64, y as f64)));
            }
        }
        for y in 0..4 {
            for x in 0..4 {
                let i = y * 4 + x;
                if x < 3 {
                    b.add_edge(ids[i], ids[i + 1], 1.0).unwrap();
                }
                if y < 3 {
                    b.add_edge(ids[i], ids[i + 4], 1.0).unwrap();
                }
            }
        }
        // 500 extra nodes trailing away from the region.
        let mut prev = ids[15];
        for k in 0..500 {
            let n = b.add_node(Point::new(10.0 + k as f64, 10.0));
            b.add_edge(prev, n, 1.0).unwrap();
            prev = n;
        }
        let large = b.build().unwrap();

        let rect = Rect::new(-0.5, -0.5, 1.5, 1.5);
        let vs = RegionView::new(&small, rect);
        let vl = RegionView::new(&large, rect);
        assert_eq!(vs.node_count(), vl.node_count());
        let ds = vs.distances_from(NodeId(0));
        let dl = vl.distances_from(NodeId(0));
        assert_eq!(ds.settled(), dl.settled());
        assert!(ds.settled() <= vs.node_count());
        assert_eq!(ds.len(), dl.len(), "arrays sized to |V_Q|, not |V|");
        for i in 0..ds.len() {
            assert_eq!(ds.by_local(i), dl.by_local(i));
        }
    }
}
