//! Query-region views of a road network.
//!
//! An LCMSR query restricts processing to the rectangular region of interest
//! `Q.Λ`.  [`RegionView`] captures the nodes of the network inside such a
//! rectangle together with the induced edges, and exposes the restricted
//! adjacency that all LCMSR algorithms operate on.

use crate::edge::EdgeId;
use crate::geo::Rect;
use crate::graph::RoadNetwork;
use crate::node::NodeId;
use std::collections::VecDeque;

/// A view of the subgraph of a [`RoadNetwork`] induced by the nodes inside a
/// rectangle (the paper's `Q.Λ`).
///
/// The view borrows the underlying network; node and edge ids are the global
/// ids of the parent network so that results can be interpreted without
/// translation.
#[derive(Debug, Clone)]
pub struct RegionView<'g> {
    graph: &'g RoadNetwork,
    rect: Rect,
    /// Nodes inside the rectangle, sorted by id.
    nodes: Vec<NodeId>,
    /// Edges with both endpoints inside the rectangle, sorted by id.
    edges: Vec<EdgeId>,
    /// membership[i] is true iff node i is inside the view.
    membership: Vec<bool>,
}

impl<'g> RegionView<'g> {
    /// Creates the view of `graph` induced by the nodes located inside `rect`.
    pub fn new(graph: &'g RoadNetwork, rect: Rect) -> Self {
        let mut membership = vec![false; graph.node_count()];
        let mut nodes = Vec::new();
        for n in graph.nodes() {
            if rect.contains(&n.point) {
                membership[n.id.index()] = true;
                nodes.push(n.id);
            }
        }
        let edges: Vec<EdgeId> = graph
            .edges()
            .iter()
            .filter(|e| membership[e.a.index()] && membership[e.b.index()])
            .map(|e| e.id)
            .collect();
        RegionView {
            graph,
            rect,
            nodes,
            edges,
            membership,
        }
    }

    /// A view containing the whole network (`Q.Λ` = entire space).
    pub fn whole(graph: &'g RoadNetwork) -> Self {
        let rect = graph
            .bounding_rect()
            .unwrap_or_else(|| Rect::new(0.0, 0.0, 0.0, 0.0))
            .expanded(1.0);
        Self::new(graph, rect)
    }

    /// The underlying network.
    pub fn graph(&self) -> &'g RoadNetwork {
        self.graph
    }

    /// The rectangle that induced this view.
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// Nodes inside the view, sorted by id (`V_Q` in the paper).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Edges fully inside the view, sorted by id (`E_Q` in the paper).
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of nodes inside the view (`|V_Q|`).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges inside the view (`|E_Q|`).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether `node` belongs to the view.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        self.membership.get(node.index()).copied().unwrap_or(false)
    }

    /// Neighbours of `node` restricted to the view, as `(neighbour, edge)` pairs.
    pub fn neighbors(&self, node: NodeId) -> Vec<(NodeId, EdgeId)> {
        if !self.contains(node) {
            return Vec::new();
        }
        self.graph
            .neighbors(node)
            .iter()
            .copied()
            .filter(|(n, _)| self.contains(*n))
            .collect()
    }

    /// Length of an edge (delegates to the parent network).
    #[inline]
    pub fn length(&self, edge: EdgeId) -> f64 {
        self.graph.length(edge)
    }

    /// Minimum edge length inside the view (`d_min`), or `None` if edgeless.
    pub fn min_edge_length(&self) -> Option<f64> {
        self.edges
            .iter()
            .map(|&e| self.graph.length(e))
            .fold(None, |acc, l| match acc {
                None => Some(l),
                Some(m) => Some(m.min(l)),
            })
    }

    /// Maximum edge length inside the view (`τ_max` used by Greedy), or `None`.
    pub fn max_edge_length(&self) -> Option<f64> {
        self.edges
            .iter()
            .map(|&e| self.graph.length(e))
            .fold(None, |acc, l| match acc {
                None => Some(l),
                Some(m) => Some(m.max(l)),
            })
    }

    /// Connected components of the view, largest first.
    pub fn components(&self) -> Vec<Vec<NodeId>> {
        let mut seen = vec![false; self.graph.node_count()];
        let mut comps = Vec::new();
        for &start in &self.nodes {
            if seen[start.index()] {
                continue;
            }
            let mut comp = Vec::new();
            let mut q = VecDeque::new();
            seen[start.index()] = true;
            q.push_back(start);
            while let Some(v) = q.pop_front() {
                comp.push(v);
                for (n, _) in self.neighbors(v) {
                    if !seen[n.index()] {
                        seen[n.index()] = true;
                        q.push_back(n);
                    }
                }
            }
            comps.push(comp);
        }
        comps.sort_by_key(|c| std::cmp::Reverse(c.len()));
        comps
    }

    /// Checks whether the given node set is connected within the view using
    /// only the given edges.  Used to validate result regions.
    pub fn is_connected_region(&self, nodes: &[NodeId], edges: &[EdgeId]) -> bool {
        if nodes.is_empty() {
            return false;
        }
        if nodes.len() == 1 {
            return edges.is_empty();
        }
        // Adjacency restricted to the provided edges.
        let node_set: std::collections::HashSet<NodeId> = nodes.iter().copied().collect();
        let mut adj: std::collections::HashMap<NodeId, Vec<NodeId>> =
            std::collections::HashMap::new();
        for &e in edges {
            let edge = self.graph.edge(e);
            if !node_set.contains(&edge.a) || !node_set.contains(&edge.b) {
                return false;
            }
            adj.entry(edge.a).or_default().push(edge.b);
            adj.entry(edge.b).or_default().push(edge.a);
        }
        let mut seen: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        let mut q = VecDeque::new();
        seen.insert(nodes[0]);
        q.push_back(nodes[0]);
        while let Some(v) = q.pop_front() {
            if let Some(ns) = adj.get(&v) {
                for &n in ns {
                    if seen.insert(n) {
                        q.push_back(n);
                    }
                }
            }
        }
        seen.len() == nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::geo::Point;

    /// A 4x4 grid graph with unit spacing.
    fn grid4() -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..4 {
            for x in 0..4 {
                ids.push(b.add_node(Point::new(x as f64, y as f64)));
            }
        }
        for y in 0..4 {
            for x in 0..4 {
                let i = y * 4 + x;
                if x < 3 {
                    b.add_edge(ids[i], ids[i + 1], 1.0).unwrap();
                }
                if y < 3 {
                    b.add_edge(ids[i], ids[i + 4], 1.0).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn whole_view_covers_everything() {
        let g = grid4();
        let v = RegionView::whole(&g);
        assert_eq!(v.node_count(), 16);
        assert_eq!(v.edge_count(), 24);
        assert!(v.contains(NodeId(0)));
    }

    #[test]
    fn rect_view_restricts_nodes_and_edges() {
        let g = grid4();
        // Lower-left 2x2 corner.
        let v = RegionView::new(&g, Rect::new(-0.5, -0.5, 1.5, 1.5));
        assert_eq!(v.node_count(), 4);
        assert_eq!(v.edge_count(), 4);
        assert!(v.contains(NodeId(0)));
        assert!(!v.contains(NodeId(15)));
        assert_eq!(v.neighbors(NodeId(0)).len(), 2);
        assert!(v.neighbors(NodeId(15)).is_empty());
    }

    #[test]
    fn view_edge_lengths_delegate_to_graph() {
        let g = grid4();
        let v = RegionView::whole(&g);
        assert_eq!(v.min_edge_length(), Some(1.0));
        assert_eq!(v.max_edge_length(), Some(1.0));
        let e = v.edges()[0];
        assert_eq!(v.length(e), 1.0);
    }

    #[test]
    fn empty_view_has_no_components() {
        let g = grid4();
        let v = RegionView::new(&g, Rect::new(100.0, 100.0, 101.0, 101.0));
        assert_eq!(v.node_count(), 0);
        assert!(v.components().is_empty());
        assert!(v.min_edge_length().is_none());
    }

    #[test]
    fn components_split_by_rectangle() {
        let g = grid4();
        // A thin rectangle containing only rows y=0 and y=3 → two components.
        let v = RegionView::new(&g, Rect::new(-0.5, -0.5, 3.5, 0.5));
        assert_eq!(v.components().len(), 1);
        // Two disjoint columns: x=0 and x=3 cannot both be selected by a single
        // rectangle, so instead check that a full view is a single component.
        let whole = RegionView::whole(&g);
        assert_eq!(whole.components().len(), 1);
    }

    #[test]
    fn is_connected_region_validates_results() {
        let g = grid4();
        let v = RegionView::whole(&g);
        let e01 = g.edge_between(NodeId(0), NodeId(1)).unwrap();
        let e12 = g.edge_between(NodeId(1), NodeId(2)).unwrap();
        assert!(v.is_connected_region(&[NodeId(0), NodeId(1), NodeId(2)], &[e01, e12]));
        // Missing connecting edge → not connected.
        assert!(!v.is_connected_region(&[NodeId(0), NodeId(1), NodeId(2)], &[e01]));
        // Single node with no edges is a valid (degenerate) region.
        assert!(v.is_connected_region(&[NodeId(5)], &[]));
        // Empty region is not valid.
        assert!(!v.is_connected_region(&[], &[]));
        // Edge endpoint outside the node set → invalid.
        assert!(!v.is_connected_region(&[NodeId(0)], &[e01]));
    }

    #[test]
    fn boundary_nodes_are_included() {
        let g = grid4();
        let v = RegionView::new(&g, Rect::new(0.0, 0.0, 1.0, 1.0));
        assert_eq!(v.node_count(), 4);
    }
}
