//! Error types for road-network construction and parsing.

use std::fmt;

/// Errors produced while building or loading a road network.
#[derive(Debug, Clone, PartialEq)]
pub enum RoadNetError {
    /// An edge references a node id that has not been added to the builder.
    UnknownNode {
        /// The offending node id.
        node: u32,
    },
    /// An edge connects a node to itself, which a road segment cannot do.
    SelfLoop {
        /// The node that both endpoints refer to.
        node: u32,
    },
    /// A road segment length is not a positive finite number.
    InvalidLength {
        /// First endpoint.
        a: u32,
        /// Second endpoint.
        b: u32,
        /// The rejected length value.
        length: f64,
    },
    /// A node coordinate is not finite.
    InvalidCoordinate {
        /// The node whose coordinate was rejected.
        node: u32,
    },
    /// A DIMACS input line could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// The graph or co-ordinate file declared a different size than it contained.
    SizeMismatch {
        /// What the header declared.
        declared: usize,
        /// What was actually found.
        found: usize,
        /// Which entity the mismatch concerns ("nodes" or "arcs").
        what: &'static str,
    },
    /// An I/O error occurred while reading an input file.
    Io(String),
}

impl fmt::Display for RoadNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoadNetError::UnknownNode { node } => {
                write!(f, "edge references unknown node id {node}")
            }
            RoadNetError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} is not a valid road segment")
            }
            RoadNetError::InvalidLength { a, b, length } => {
                write!(f, "edge ({a}, {b}) has invalid length {length}")
            }
            RoadNetError::InvalidCoordinate { node } => {
                write!(f, "node {node} has a non-finite coordinate")
            }
            RoadNetError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            RoadNetError::SizeMismatch {
                declared,
                found,
                what,
            } => write!(f, "header declared {declared} {what} but found {found}"),
            RoadNetError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for RoadNetError {}

impl From<std::io::Error> for RoadNetError {
    fn from(e: std::io::Error) -> Self {
        RoadNetError::Io(e.to_string())
    }
}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RoadNetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offending_entities() {
        let e = RoadNetError::UnknownNode { node: 7 };
        assert!(e.to_string().contains('7'));
        let e = RoadNetError::SelfLoop { node: 3 };
        assert!(e.to_string().contains('3'));
        let e = RoadNetError::InvalidLength {
            a: 1,
            b: 2,
            length: -1.0,
        };
        assert!(e.to_string().contains("-1"));
        let e = RoadNetError::Parse {
            line: 12,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("12"));
        let e = RoadNetError::SizeMismatch {
            declared: 10,
            found: 9,
            what: "nodes",
        };
        assert!(e.to_string().contains("10") && e.to_string().contains("9"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: RoadNetError = io.into();
        assert!(matches!(e, RoadNetError::Io(_)));
        assert!(e.to_string().contains("missing"));
    }
}
