//! Road-network nodes.
//!
//! Each node represents a road junction, a dead end, or the mapped location of
//! a geo-textual object (Definition 1 in the paper).

use crate::geo::Point;
use serde::{Deserialize, Serialize};

/// Identifier of a node in a [`crate::graph::RoadNetwork`].
///
/// Node ids are dense indices assigned by the builder, so they can be used
/// directly to index per-node arrays.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a usize suitable for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v as u32)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// What a node stands for in the underlying road network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum NodeKind {
    /// A road junction where two or more segments meet.
    #[default]
    Junction,
    /// A dead end (degree-one node).
    DeadEnd,
    /// The location of one or more geo-textual objects mapped onto the network.
    ObjectLocation,
}

/// A node of the road network: a spatial location plus bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoadNode {
    /// Identifier of the node.
    pub id: NodeId,
    /// Planar location of the node (metres, e.g. UTM).
    pub point: Point,
    /// What the node represents.
    pub kind: NodeKind,
}

impl RoadNode {
    /// Creates a junction node at the given location.
    pub fn new(id: NodeId, point: Point) -> Self {
        RoadNode {
            id,
            point,
            kind: NodeKind::Junction,
        }
    }

    /// Creates a node with an explicit kind.
    pub fn with_kind(id: NodeId, point: Point, kind: NodeKind) -> Self {
        RoadNode { id, point, kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_conversions() {
        let id = NodeId::from(5u32);
        assert_eq!(id.index(), 5);
        assert_eq!(NodeId::from(5usize), id);
        assert_eq!(id.to_string(), "v5");
    }

    #[test]
    fn node_default_kind_is_junction() {
        let n = RoadNode::new(NodeId(1), Point::new(0.0, 0.0));
        assert_eq!(n.kind, NodeKind::Junction);
        let n = RoadNode::with_kind(NodeId(2), Point::new(1.0, 1.0), NodeKind::ObjectLocation);
        assert_eq!(n.kind, NodeKind::ObjectLocation);
    }

    #[test]
    fn node_ids_order_by_value() {
        let mut ids = vec![NodeId(3), NodeId(1), NodeId(2)];
        ids.sort();
        assert_eq!(ids, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }
}
