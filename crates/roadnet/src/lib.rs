//! # lcmsr-roadnet
//!
//! Road-network substrate for the LCMSR reproduction ("Retrieving Regions of
//! Interest for User Exploration", Cao et al., PVLDB 2014).
//!
//! The crate models the road network graph `G = (V, E, τ, λ)` of the paper's
//! Definition 1:
//!
//! * [`graph::RoadNetwork`] — immutable, validated graph with CSR adjacency,
//! * [`builder::GraphBuilder`] — incremental construction with validation,
//! * [`geo`] — planar geometry, rectangles (`Q.Λ`), WGS84→UTM projection,
//! * [`subgraph::RegionView`] — the subgraph induced by a query rectangle,
//! * [`traversal`] — BFS/DFS/Dijkstra/MST used by the algorithms and baselines,
//! * [`dimacs`] — reader for the DIMACS challenge-9 files the paper's New York
//!   and USA networks are distributed in,
//! * [`generator`] — deterministic synthetic network generators used by the
//!   data-substitution layer (`lcmsr-datagen`).
//!
//! # Example
//!
//! ```
//! use lcmsr_roadnet::prelude::*;
//!
//! let mut b = GraphBuilder::new();
//! let a = b.add_node(Point::new(0.0, 0.0));
//! let c = b.add_node(Point::new(100.0, 0.0));
//! b.add_edge(a, c, 100.0).unwrap();
//! let network = b.build().unwrap();
//! assert_eq!(network.node_count(), 2);
//! let view = RegionView::whole(&network);
//! assert_eq!(view.edge_count(), 1);
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod dimacs;
pub mod edge;
pub mod epoch;
pub mod error;
pub mod generator;
pub mod geo;
pub mod graph;
pub mod node;
pub mod spatial;
pub mod subgraph;
pub mod traversal;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::builder::GraphBuilder;
    pub use crate::edge::{EdgeId, RoadEdge};
    pub use crate::error::{Result as RoadNetResult, RoadNetError};
    pub use crate::geo::{km, to_km, LatLon, Point, Rect};
    pub use crate::graph::{NetworkStats, RoadNetwork};
    pub use crate::node::{NodeId, NodeKind, RoadNode};
    pub use crate::spatial::{GridCover, NodeGrid};
    pub use crate::subgraph::RegionView;
}

pub use builder::GraphBuilder;
pub use edge::{EdgeId, RoadEdge};
pub use error::{Result, RoadNetError};
pub use geo::{LatLon, Point, Rect};
pub use graph::{NetworkStats, RoadNetwork};
pub use node::{NodeId, NodeKind, RoadNode};
pub use subgraph::RegionView;
