//! Planar geometry primitives and geodetic conversion.
//!
//! The paper stores locations as WGS84 latitude/longitude pairs and converts
//! them to UTM (Universal Transverse Mercator) so that Euclidean distances in
//! metres are meaningful.  This module provides the [`Point`] and [`Rect`]
//! primitives used throughout the workspace together with a WGS84 → UTM
//! projection and great-circle (haversine) distances.

use serde::{Deserialize, Serialize};

/// A point in a planar coordinate system, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Easting / x coordinate in metres.
    pub x: f64,
    /// Northing / y coordinate in metres.
    pub y: f64,
}

impl Point {
    /// Creates a point from x/y coordinates in metres.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point, in metres.
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root when only ordering matters).
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint between this point and `other`.
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Returns true if both coordinates are finite numbers.
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

/// An axis-aligned rectangle, used for the query region of interest `Q.Λ`
/// and for grid-index cells.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Minimum x (west edge).
    pub min_x: f64,
    /// Minimum y (south edge).
    pub min_y: f64,
    /// Maximum x (east edge).
    pub max_x: f64,
    /// Maximum y (north edge).
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle from its corner coordinates, normalising the order
    /// so that `min_* <= max_*`.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Rect {
            min_x: min_x.min(max_x),
            min_y: min_y.min(max_y),
            max_x: min_x.max(max_x),
            max_y: min_y.max(max_y),
        }
    }

    /// Creates a square rectangle centred at `center` with the given side length.
    pub fn centered_square(center: Point, side: f64) -> Self {
        let half = side / 2.0;
        Rect::new(
            center.x - half,
            center.y - half,
            center.x + half,
            center.y + half,
        )
    }

    /// Creates a rectangle centred at `center` with the given width and height.
    pub fn centered(center: Point, width: f64, height: f64) -> Self {
        Rect::new(
            center.x - width / 2.0,
            center.y - height / 2.0,
            center.x + width / 2.0,
            center.y + height / 2.0,
        )
    }

    /// Smallest rectangle containing every point in `points`.
    ///
    /// Returns `None` for an empty iterator.
    pub fn bounding(points: impl IntoIterator<Item = Point>) -> Option<Rect> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut r = Rect::new(first.x, first.y, first.x, first.y);
        for p in it {
            r.min_x = r.min_x.min(p.x);
            r.min_y = r.min_y.min(p.y);
            r.max_x = r.max_x.max(p.x);
            r.max_y = r.max_y.max(p.y);
        }
        Some(r)
    }

    /// Width of the rectangle in metres.
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height of the rectangle in metres.
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Area of the rectangle in square metres.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Area of the rectangle in square kilometres (the unit used by the paper
    /// when quoting `Q.Λ` sizes, e.g. "100 km²").
    pub fn area_km2(&self) -> f64 {
        self.area() / 1.0e6
    }

    /// Centre of the rectangle.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// Whether the rectangle contains `p` (boundary inclusive).
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Whether the rectangle intersects another rectangle (boundary inclusive).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && self.max_x >= other.min_x
            && self.min_y <= other.max_y
            && self.max_y >= other.min_y
    }

    /// Whether `other` is fully contained in this rectangle.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.min_x >= self.min_x
            && other.max_x <= self.max_x
            && other.min_y >= self.min_y
            && other.max_y <= self.max_y
    }

    /// The intersection of two rectangles, or `None` if they do not overlap.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            min_x: self.min_x.max(other.min_x),
            min_y: self.min_y.max(other.min_y),
            max_x: self.max_x.min(other.max_x),
            max_y: self.max_y.min(other.max_y),
        })
    }

    /// Grows the rectangle by `margin` metres on every side.
    pub fn expanded(&self, margin: f64) -> Rect {
        Rect::new(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )
    }
}

/// A WGS84 latitude/longitude pair in decimal degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatLon {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl LatLon {
    /// Creates a latitude/longitude pair.
    pub fn new(lat: f64, lon: f64) -> Self {
        LatLon { lat, lon }
    }

    /// Great-circle distance to another coordinate using the haversine formula,
    /// in metres.
    pub fn haversine_distance(&self, other: &LatLon) -> f64 {
        const EARTH_RADIUS_M: f64 = 6_371_000.0;
        let lat1 = self.lat.to_radians();
        let lat2 = other.lat.to_radians();
        let dlat = (other.lat - self.lat).to_radians();
        let dlon = (other.lon - self.lon).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        let c = 2.0 * a.sqrt().atan2((1.0 - a).sqrt());
        EARTH_RADIUS_M * c
    }

    /// UTM zone number (1..=60) for this longitude.
    pub fn utm_zone(&self) -> u8 {
        let z = ((self.lon + 180.0) / 6.0).floor() as i32 + 1;
        z.clamp(1, 60) as u8
    }

    /// Projects the coordinate to UTM easting/northing in metres (WGS84 ellipsoid),
    /// mirroring the paper's preprocessing ("convert the data to the UTM format,
    /// using World Geodetic System 84").
    ///
    /// The zone is chosen from the longitude; southern-hemisphere northings get
    /// the usual 10 000 km false northing so they stay positive.
    pub fn to_utm(&self) -> Point {
        // WGS84 ellipsoid constants.
        const A: f64 = 6_378_137.0; // semi-major axis
        const F: f64 = 1.0 / 298.257_223_563; // flattening
        const K0: f64 = 0.9996; // UTM scale factor
        let e2 = F * (2.0 - F); // eccentricity squared
        let ep2 = e2 / (1.0 - e2);

        let zone = self.utm_zone() as f64;
        let lon_origin = (zone - 1.0) * 6.0 - 180.0 + 3.0; // central meridian
        let lat_rad = self.lat.to_radians();
        let lon_rad = self.lon.to_radians();
        let lon_origin_rad = lon_origin.to_radians();

        let n = A / (1.0 - e2 * lat_rad.sin().powi(2)).sqrt();
        let t = lat_rad.tan().powi(2);
        let c = ep2 * lat_rad.cos().powi(2);
        let a_ = lat_rad.cos() * (lon_rad - lon_origin_rad);

        let m = A
            * ((1.0 - e2 / 4.0 - 3.0 * e2 * e2 / 64.0 - 5.0 * e2 * e2 * e2 / 256.0) * lat_rad
                - (3.0 * e2 / 8.0 + 3.0 * e2 * e2 / 32.0 + 45.0 * e2 * e2 * e2 / 1024.0)
                    * (2.0 * lat_rad).sin()
                + (15.0 * e2 * e2 / 256.0 + 45.0 * e2 * e2 * e2 / 1024.0) * (4.0 * lat_rad).sin()
                - (35.0 * e2 * e2 * e2 / 3072.0) * (6.0 * lat_rad).sin());

        let easting = K0
            * n
            * (a_
                + (1.0 - t + c) * a_.powi(3) / 6.0
                + (5.0 - 18.0 * t + t * t + 72.0 * c - 58.0 * ep2) * a_.powi(5) / 120.0)
            + 500_000.0;

        let mut northing = K0
            * (m + n
                * lat_rad.tan()
                * (a_ * a_ / 2.0
                    + (5.0 - t + 9.0 * c + 4.0 * c * c) * a_.powi(4) / 24.0
                    + (61.0 - 58.0 * t + t * t + 600.0 * c - 330.0 * ep2) * a_.powi(6) / 720.0));
        if self.lat < 0.0 {
            northing += 10_000_000.0;
        }
        Point::new(easting, northing)
    }
}

/// Converts a distance expressed in kilometres to metres.
pub fn km(value: f64) -> f64 {
    value * 1000.0
}

/// Converts a distance expressed in metres to kilometres.
pub fn to_km(metres: f64) -> f64 {
    metres / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
        assert_eq!(a.midpoint(&b), Point::new(1.5, 2.0));
    }

    #[test]
    fn rect_normalises_corner_order() {
        let r = Rect::new(10.0, 20.0, -10.0, -20.0);
        assert_eq!(r.min_x, -10.0);
        assert_eq!(r.max_x, 10.0);
        assert_eq!(r.min_y, -20.0);
        assert_eq!(r.max_y, 20.0);
        assert_eq!(r.width(), 20.0);
        assert_eq!(r.height(), 40.0);
    }

    #[test]
    fn rect_contains_and_intersects() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(r.contains(&Point::new(5.0, 5.0)));
        assert!(r.contains(&Point::new(0.0, 10.0)));
        assert!(!r.contains(&Point::new(10.01, 5.0)));
        let other = Rect::new(9.0, 9.0, 20.0, 20.0);
        assert!(r.intersects(&other));
        assert!(!r.intersects(&Rect::new(11.0, 11.0, 12.0, 12.0)));
        let inter = r.intersection(&other).unwrap();
        assert_eq!(inter, Rect::new(9.0, 9.0, 10.0, 10.0));
        assert!(r.contains_rect(&Rect::new(1.0, 1.0, 2.0, 2.0)));
        assert!(!r.contains_rect(&other));
    }

    #[test]
    fn rect_centered_square_has_requested_area() {
        let r = Rect::centered_square(Point::new(100.0, 100.0), 10_000.0);
        assert!((r.area_km2() - 100.0).abs() < 1e-9);
        assert_eq!(r.center(), Point::new(100.0, 100.0));
    }

    #[test]
    fn bounding_box_of_points() {
        let pts = vec![
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
            Point::new(4.0, -1.0),
        ];
        let r = Rect::bounding(pts).unwrap();
        assert_eq!(r, Rect::new(-2.0, -1.0, 4.0, 5.0));
        assert!(Rect::bounding(Vec::new()).is_none());
    }

    #[test]
    fn expanded_grows_on_all_sides() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0).expanded(1.0);
        assert_eq!(r, Rect::new(-1.0, -1.0, 2.0, 2.0));
    }

    #[test]
    fn haversine_distance_known_value() {
        // Times Square to the Empire State Building: roughly 1.0-1.2 km.
        let times_square = LatLon::new(40.758, -73.9855);
        let esb = LatLon::new(40.7484, -73.9857);
        let d = times_square.haversine_distance(&esb);
        assert!(d > 1000.0 && d < 1200.0, "distance {d}");
    }

    #[test]
    fn utm_zone_for_new_york_is_18() {
        let nyc = LatLon::new(40.75, -73.99);
        assert_eq!(nyc.utm_zone(), 18);
    }

    #[test]
    fn utm_projection_preserves_local_distances() {
        // Two points about 1.11 km apart along a meridian.
        let a = LatLon::new(40.750, -73.990);
        let b = LatLon::new(40.760, -73.990);
        let pa = a.to_utm();
        let pb = b.to_utm();
        let planar = pa.distance(&pb);
        let sphere = a.haversine_distance(&b);
        let rel_err = (planar - sphere).abs() / sphere;
        assert!(rel_err < 0.01, "planar {planar} vs sphere {sphere}");
    }

    #[test]
    fn utm_projection_southern_hemisphere_positive_northing() {
        let sydney = LatLon::new(-33.865, 151.21);
        let p = sydney.to_utm();
        assert!(p.y > 0.0);
        assert!(p.x > 0.0);
    }

    #[test]
    fn km_conversions_roundtrip() {
        assert_eq!(km(10.0), 10_000.0);
        assert_eq!(to_km(km(3.5)), 3.5);
    }
}
