//! Reader for the DIMACS shortest-path challenge (challenge 9) road-network
//! format, the format of the New York and USA road networks the paper uses.
//!
//! Two files describe a network:
//!
//! * a **graph file** (`.gr`) with lines `p sp <n> <m>` (header), `c ...`
//!   (comments) and `a <u> <v> <w>` (arcs, 1-based node ids, integer weight),
//! * a **coordinate file** (`.co`) with lines `p aux sp co <n>` (header),
//!   `c ...` and `v <id> <lon> <lat>` where longitude/latitude are given in
//!   units of 10⁻⁶ degrees.
//!
//! The reader accepts the two files as strings (so tests and embedded data do
//! not need the filesystem) and as paths.  Arcs appear in both directions in
//! the DIMACS data; the builder deduplicates them into undirected edges.

use crate::builder::GraphBuilder;
use crate::error::{Result, RoadNetError};
use crate::geo::LatLon;
use crate::graph::RoadNetwork;
use crate::node::NodeId;
use std::path::Path;

/// Unit conversion applied to DIMACS arc weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightUnit {
    /// Arc weights are already metres (the challenge-9 distance graphs use
    /// units close to metres); use them as-is.
    #[default]
    Meters,
    /// Arc weights are tenths of metres.
    Decimeters,
}

impl WeightUnit {
    fn to_meters(self, w: f64) -> f64 {
        match self {
            WeightUnit::Meters => w,
            WeightUnit::Decimeters => w / 10.0,
        }
    }
}

/// Parsed coordinate entry prior to graph assembly.
#[derive(Debug, Clone, Copy)]
struct CoordEntry {
    id: usize,
    lat_lon: LatLon,
}

fn parse_coords(co_text: &str) -> Result<(usize, Vec<CoordEntry>)> {
    let mut declared = 0usize;
    let mut entries = Vec::new();
    for (lineno, raw) in co_text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                // p aux sp co <n>
                let n = parts
                    .last()
                    .and_then(|s| s.parse::<usize>().ok())
                    .ok_or_else(|| RoadNetError::Parse {
                        line: lineno + 1,
                        message: "malformed coordinate header".into(),
                    })?;
                declared = n;
            }
            Some("v") => {
                let id: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                    RoadNetError::Parse {
                        line: lineno + 1,
                        message: "missing node id in v line".into(),
                    }
                })?;
                let lon_micro: f64 =
                    parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                        RoadNetError::Parse {
                            line: lineno + 1,
                            message: "missing longitude in v line".into(),
                        }
                    })?;
                let lat_micro: f64 =
                    parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                        RoadNetError::Parse {
                            line: lineno + 1,
                            message: "missing latitude in v line".into(),
                        }
                    })?;
                entries.push(CoordEntry {
                    id,
                    lat_lon: LatLon::new(lat_micro / 1e6, lon_micro / 1e6),
                });
            }
            Some(other) => {
                return Err(RoadNetError::Parse {
                    line: lineno + 1,
                    message: format!("unexpected line type '{other}' in coordinate file"),
                });
            }
            None => {}
        }
    }
    Ok((declared, entries))
}

/// Arc parsed from the graph file.
#[derive(Debug, Clone, Copy)]
struct ArcEntry {
    from: usize,
    to: usize,
    weight: f64,
}

fn parse_arcs(gr_text: &str) -> Result<(usize, usize, Vec<ArcEntry>)> {
    let mut declared_nodes = 0usize;
    let mut declared_arcs = 0usize;
    let mut arcs = Vec::new();
    for (lineno, raw) in gr_text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                // p sp <n> <m>
                let tokens: Vec<&str> = parts.collect();
                if tokens.len() < 3 {
                    return Err(RoadNetError::Parse {
                        line: lineno + 1,
                        message: "malformed graph header".into(),
                    });
                }
                declared_nodes =
                    tokens[tokens.len() - 2]
                        .parse()
                        .map_err(|_| RoadNetError::Parse {
                            line: lineno + 1,
                            message: "bad node count in header".into(),
                        })?;
                declared_arcs =
                    tokens[tokens.len() - 1]
                        .parse()
                        .map_err(|_| RoadNetError::Parse {
                            line: lineno + 1,
                            message: "bad arc count in header".into(),
                        })?;
            }
            Some("a") => {
                let from: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                    RoadNetError::Parse {
                        line: lineno + 1,
                        message: "missing source in a line".into(),
                    }
                })?;
                let to: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                    RoadNetError::Parse {
                        line: lineno + 1,
                        message: "missing target in a line".into(),
                    }
                })?;
                let weight: f64 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                    RoadNetError::Parse {
                        line: lineno + 1,
                        message: "missing weight in a line".into(),
                    }
                })?;
                arcs.push(ArcEntry { from, to, weight });
            }
            Some(other) => {
                return Err(RoadNetError::Parse {
                    line: lineno + 1,
                    message: format!("unexpected line type '{other}' in graph file"),
                });
            }
            None => {}
        }
    }
    Ok((declared_nodes, declared_arcs, arcs))
}

/// Parses a road network from the textual contents of a DIMACS graph file and
/// its companion coordinate file.
///
/// Node coordinates are projected from WGS84 to UTM metres.  Self-loop arcs
/// are skipped; duplicate/parallel arcs collapse to the shortest segment.
pub fn parse_dimacs(gr_text: &str, co_text: &str, unit: WeightUnit) -> Result<RoadNetwork> {
    let (declared_co, coords) = parse_coords(co_text)?;
    if declared_co != 0 && declared_co != coords.len() {
        return Err(RoadNetError::SizeMismatch {
            declared: declared_co,
            found: coords.len(),
            what: "nodes",
        });
    }
    let (declared_nodes, declared_arcs, arcs) = parse_arcs(gr_text)?;
    if declared_nodes != 0 && !coords.is_empty() && declared_nodes != coords.len() {
        return Err(RoadNetError::SizeMismatch {
            declared: declared_nodes,
            found: coords.len(),
            what: "nodes",
        });
    }
    if declared_arcs != 0 && declared_arcs != arcs.len() {
        return Err(RoadNetError::SizeMismatch {
            declared: declared_arcs,
            found: arcs.len(),
            what: "arcs",
        });
    }

    // DIMACS ids are 1-based and may be sparse in principle; build a dense map.
    let mut max_id = 0usize;
    for c in &coords {
        max_id = max_id.max(c.id);
    }
    for a in &arcs {
        max_id = max_id.max(a.from).max(a.to);
    }
    let mut id_map: Vec<Option<NodeId>> = vec![None; max_id + 1];
    let mut builder = GraphBuilder::with_capacity(coords.len(), arcs.len() / 2 + 1);
    for c in &coords {
        let nid = builder.add_node(c.lat_lon.to_utm());
        id_map[c.id] = Some(nid);
    }
    for a in &arcs {
        if a.from == a.to {
            continue; // skip self-loops present in some data sets
        }
        let from = id_map
            .get(a.from)
            .copied()
            .flatten()
            .ok_or(RoadNetError::UnknownNode {
                node: a.from as u32,
            })?;
        let to = id_map
            .get(a.to)
            .copied()
            .flatten()
            .ok_or(RoadNetError::UnknownNode { node: a.to as u32 })?;
        builder.add_edge(from, to, unit.to_meters(a.weight))?;
    }
    builder.build()
}

/// Loads a network from DIMACS graph (`.gr`) and coordinate (`.co`) files on disk.
pub fn load_dimacs(
    gr_path: impl AsRef<Path>,
    co_path: impl AsRef<Path>,
    unit: WeightUnit,
) -> Result<RoadNetwork> {
    let gr = std::fs::read_to_string(gr_path)?;
    let co = std::fs::read_to_string(co_path)?;
    parse_dimacs(&gr, &co, unit)
}

/// Serialises a network back to the DIMACS pair of files (graph text, coord text).
///
/// Mainly useful for round-trip tests and for exporting synthetic networks so
/// that other tools can consume them.  Coordinates are written as pseudo
/// micro-degrees derived from the planar metre coordinates (inverse of the
/// projection is intentionally not applied; the output is self-consistent for
/// round-tripping through [`parse_dimacs`] with [`WeightUnit::Meters`]).
pub fn to_dimacs_strings(network: &RoadNetwork) -> (String, String) {
    use std::fmt::Write as _;
    let mut gr = String::new();
    let mut co = String::new();
    let _ = writeln!(gr, "c generated by lcmsr-roadnet");
    let _ = writeln!(
        gr,
        "p sp {} {}",
        network.node_count(),
        network.edge_count() * 2
    );
    for e in network.edges() {
        let w = e.length.round().max(1.0) as u64;
        let _ = writeln!(gr, "a {} {} {}", e.a.0 + 1, e.b.0 + 1, w);
        let _ = writeln!(gr, "a {} {} {}", e.b.0 + 1, e.a.0 + 1, w);
    }
    let _ = writeln!(co, "c generated by lcmsr-roadnet");
    let _ = writeln!(co, "p aux sp co {}", network.node_count());
    for n in network.nodes() {
        let _ = writeln!(
            co,
            "v {} {} {}",
            n.id.0 + 1,
            n.point.x.round() as i64,
            n.point.y.round() as i64
        );
    }
    (gr, co)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE_CO: &str = "c sample coordinates\n\
p aux sp co 4\n\
v 1 -73990000 40750000\n\
v 2 -73989000 40750000\n\
v 3 -73989000 40751000\n\
v 4 -73990000 40751000\n";

    const SAMPLE_GR: &str = "c sample graph\n\
p sp 4 8\n\
a 1 2 85\n\
a 2 1 85\n\
a 2 3 111\n\
a 3 2 111\n\
a 3 4 85\n\
a 4 3 85\n\
a 4 1 111\n\
a 1 4 111\n";

    #[test]
    fn parses_sample_network() {
        let g = parse_dimacs(SAMPLE_GR, SAMPLE_CO, WeightUnit::Meters).unwrap();
        assert_eq!(g.node_count(), 4);
        // 8 arcs collapse into 4 undirected edges.
        assert_eq!(g.edge_count(), 4);
        assert_eq!(
            g.length(g.edge_between(NodeId(0), NodeId(1)).unwrap()),
            85.0
        );
    }

    #[test]
    fn decimeter_unit_scales_lengths() {
        let g = parse_dimacs(SAMPLE_GR, SAMPLE_CO, WeightUnit::Decimeters).unwrap();
        assert_eq!(g.length(g.edge_between(NodeId(0), NodeId(1)).unwrap()), 8.5);
    }

    #[test]
    fn coordinates_are_projected_to_metres() {
        let g = parse_dimacs(SAMPLE_GR, SAMPLE_CO, WeightUnit::Meters).unwrap();
        // Nodes 1 and 2 are 0.001 degrees of longitude apart at latitude 40.75,
        // roughly 84-85 metres.
        let d = g.point(NodeId(0)).distance(&g.point(NodeId(1)));
        assert!(d > 80.0 && d < 90.0, "distance was {d}");
    }

    #[test]
    fn header_mismatch_is_reported() {
        let bad_gr = SAMPLE_GR.replace("p sp 4 8", "p sp 4 9");
        let err = parse_dimacs(&bad_gr, SAMPLE_CO, WeightUnit::Meters).unwrap_err();
        assert!(matches!(
            err,
            RoadNetError::SizeMismatch { what: "arcs", .. }
        ));
        let bad_co = SAMPLE_CO.replace("p aux sp co 4", "p aux sp co 5");
        let err = parse_dimacs(SAMPLE_GR, &bad_co, WeightUnit::Meters).unwrap_err();
        assert!(matches!(
            err,
            RoadNetError::SizeMismatch { what: "nodes", .. }
        ));
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let bad = "p sp 1 1\na 1\n";
        let err = parse_dimacs(bad, "p aux sp co 1\nv 1 0 0\n", WeightUnit::Meters).unwrap_err();
        match err {
            RoadNetError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        let bad_type = "x nonsense\n";
        assert!(parse_dimacs(bad_type, SAMPLE_CO, WeightUnit::Meters).is_err());
    }

    #[test]
    fn self_loops_are_skipped() {
        let gr = "p sp 2 3\na 1 2 10\na 2 1 10\na 1 1 5\n";
        let co = "p aux sp co 2\nv 1 0 0\nv 2 1000 0\n";
        let g = parse_dimacs(gr, co, WeightUnit::Meters).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn arc_referencing_unknown_node_is_rejected() {
        let gr = "p sp 2 2\na 1 9 10\na 9 1 10\n";
        let co = "p aux sp co 2\nv 1 0 0\nv 2 1000 0\n";
        // Node 9 exists in neither file: the id map has a hole.
        let err = parse_dimacs(gr, co, WeightUnit::Meters).unwrap_err();
        assert!(
            matches!(err, RoadNetError::UnknownNode { .. })
                || matches!(err, RoadNetError::SizeMismatch { .. })
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let gr = "c a comment\n\nc another\np sp 2 2\na 1 2 7\na 2 1 7\n";
        let co = "c hi\n\np aux sp co 2\nv 1 0 0\nv 2 1000 0\n";
        let g = parse_dimacs(gr, co, WeightUnit::Meters).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn round_trip_through_dimacs_strings() {
        let g = parse_dimacs(SAMPLE_GR, SAMPLE_CO, WeightUnit::Meters).unwrap();
        let (gr2, co2) = to_dimacs_strings(&g);
        // The exported coordinates are planar metres written as integers, which
        // parse_dimacs will interpret as micro-degrees; the round trip keeps the
        // topology (node/edge counts and lengths) intact.
        let g2 = parse_dimacs(&gr2, &co2, WeightUnit::Meters).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for e in g.edges() {
            let l2 = g2.length(g2.edge_between(e.a, e.b).unwrap());
            assert!((l2 - e.length.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn generated_network_round_trips_end_to_end() {
        // The loader exercised on a real generated network, not a handwritten
        // sample: synthesise a perturbed grid, export it, reload it, and
        // assert the graphs are structurally equal.  Coordinates do not round
        // trip exactly (the export writes planar metres that re-import through
        // the WGS84→UTM projection), so equality is asserted on the topology:
        // node count and, edge for edge in order, the endpoint pair and the
        // exported (rounded) length.
        let g = crate::generator::perturbed_grid(&crate::generator::GridParams {
            cols: 12,
            rows: 9,
            spacing: 130.0,
            jitter: 0.15,
            drop_probability: 0.05,
            diagonal_probability: 0.05,
            seed: 2014,
        })
        .unwrap();
        assert!(g.node_count() > 80 && g.edge_count() > 100);
        let (gr, co) = to_dimacs_strings(&g);
        let reloaded = parse_dimacs(&gr, &co, WeightUnit::Meters).unwrap();
        assert_eq!(reloaded.node_count(), g.node_count());
        assert_eq!(reloaded.edge_count(), g.edge_count());
        for (original, round_tripped) in g.edges().iter().zip(reloaded.edges()) {
            assert_eq!(original.a, round_tripped.a);
            assert_eq!(original.b, round_tripped.b);
            assert_eq!(original.length.round().max(1.0), round_tripped.length);
        }
        // A second export is a fixed point: integer lengths and ids survive
        // another pass bit for bit, so the exported graph text is stable.
        let (gr2, co2) = to_dimacs_strings(&reloaded);
        assert_eq!(gr, gr2);
        let _ = co2; // coordinates are re-projected; only the graph is stable
    }

    #[test]
    fn load_dimacs_from_files() {
        let dir = std::env::temp_dir().join("lcmsr_dimacs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let gr_path = dir.join("sample.gr");
        let co_path = dir.join("sample.co");
        std::fs::write(&gr_path, SAMPLE_GR).unwrap();
        std::fs::write(&co_path, SAMPLE_CO).unwrap();
        let g = load_dimacs(&gr_path, &co_path, WeightUnit::Meters).unwrap();
        assert_eq!(g.node_count(), 4);
        assert!(load_dimacs(dir.join("missing.gr"), &co_path, WeightUnit::Meters).is_err());
    }
}
