//! Low-level synthetic road-network generators.
//!
//! These produce the topological "raw material" that `lcmsr-datagen` shapes
//! into the NY-like and USANW-like data sets.  They are deterministic given a
//! seed and only depend on a small internal xorshift PRNG so the substrate
//! crate stays dependency-free.

use crate::builder::GraphBuilder;
use crate::error::Result;
use crate::geo::Point;
use crate::graph::RoadNetwork;
use crate::node::NodeId;

/// A tiny deterministic xorshift64* PRNG used by the generators.
///
/// Not cryptographic; adequate for producing varied synthetic topologies.
#[derive(Debug, Clone)]
pub struct SplitRng {
    state: u64,
}

impl SplitRng {
    /// Creates a generator from a seed; a zero seed is remapped to a constant.
    pub fn new(seed: u64) -> Self {
        SplitRng {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// Parameters controlling [`perturbed_grid`].
#[derive(Debug, Clone)]
pub struct GridParams {
    /// Number of grid columns.
    pub cols: usize,
    /// Number of grid rows.
    pub rows: usize,
    /// Nominal spacing between adjacent intersections, in metres.
    pub spacing: f64,
    /// Fraction of the spacing used as random jitter on node positions (0 disables).
    pub jitter: f64,
    /// Probability of removing an interior grid edge, creating irregular blocks.
    pub drop_probability: f64,
    /// Probability of adding a diagonal shortcut edge within a block.
    pub diagonal_probability: f64,
    /// Seed for the deterministic generator.
    pub seed: u64,
}

impl Default for GridParams {
    fn default() -> Self {
        GridParams {
            cols: 32,
            rows: 32,
            spacing: 120.0,
            jitter: 0.15,
            drop_probability: 0.08,
            diagonal_probability: 0.05,
            seed: 42,
        }
    }
}

/// Generates a Manhattan-style perturbed grid network.
///
/// Node positions are jittered, a fraction of edges is dropped (keeping the
/// network connected by restoring edges when a drop would disconnect the
/// affected corner), and occasional diagonals model cut-through streets.
pub fn perturbed_grid(params: &GridParams) -> Result<RoadNetwork> {
    let mut rng = SplitRng::new(params.seed);
    let mut builder =
        GraphBuilder::with_capacity(params.cols * params.rows, params.cols * params.rows * 2);
    let mut ids = vec![Vec::with_capacity(params.cols); params.rows];
    for (r, row_ids) in ids.iter_mut().enumerate() {
        for c in 0..params.cols {
            let jitter_x = rng.range_f64(-1.0, 1.0) * params.jitter * params.spacing;
            let jitter_y = rng.range_f64(-1.0, 1.0) * params.jitter * params.spacing;
            let p = Point::new(
                c as f64 * params.spacing + jitter_x,
                r as f64 * params.spacing + jitter_y,
            );
            row_ids.push(builder.add_node(p));
        }
    }
    // Track degree so we never drop an edge that would isolate a node.
    let mut degree = vec![0usize; params.cols * params.rows];
    let mut planned: Vec<(NodeId, NodeId)> = Vec::new();
    for r in 0..params.rows {
        for c in 0..params.cols {
            if c + 1 < params.cols {
                planned.push((ids[r][c], ids[r][c + 1]));
            }
            if r + 1 < params.rows {
                planned.push((ids[r][c], ids[r + 1][c]));
            }
        }
    }
    for &(a, b) in &planned {
        degree[a.index()] += 1;
        degree[b.index()] += 1;
    }
    for (a, b) in planned {
        let droppable = degree[a.index()] > 1 && degree[b.index()] > 1;
        if droppable && rng.next_f64() < params.drop_probability {
            degree[a.index()] -= 1;
            degree[b.index()] -= 1;
            continue;
        }
        builder.add_edge_euclidean(a, b)?;
    }
    // Occasional diagonals.
    for r in 0..params.rows.saturating_sub(1) {
        for c in 0..params.cols.saturating_sub(1) {
            if rng.next_f64() < params.diagonal_probability {
                if rng.next_f64() < 0.5 {
                    builder.add_edge_euclidean(ids[r][c], ids[r + 1][c + 1])?;
                } else {
                    builder.add_edge_euclidean(ids[r][c + 1], ids[r + 1][c])?;
                }
            }
        }
    }
    builder.build()
}

/// Parameters controlling [`radial_network`].
#[derive(Debug, Clone)]
pub struct RadialParams {
    /// Number of concentric rings.
    pub rings: usize,
    /// Number of radial spokes.
    pub spokes: usize,
    /// Distance between consecutive rings, in metres.
    pub ring_spacing: f64,
    /// Seed for the deterministic generator.
    pub seed: u64,
}

impl Default for RadialParams {
    fn default() -> Self {
        RadialParams {
            rings: 8,
            spokes: 12,
            ring_spacing: 300.0,
            seed: 7,
        }
    }
}

/// Generates a ring-and-spoke ("European town") network: a centre node,
/// concentric rings connected along spokes, with slight radial jitter.
pub fn radial_network(params: &RadialParams) -> Result<RoadNetwork> {
    let mut rng = SplitRng::new(params.seed);
    let mut builder = GraphBuilder::new();
    let center = builder.add_node(Point::new(0.0, 0.0));
    let mut previous_ring: Vec<NodeId> = vec![center; params.spokes];
    for ring in 1..=params.rings {
        let radius = ring as f64 * params.ring_spacing * rng.range_f64(0.95, 1.05);
        let mut this_ring = Vec::with_capacity(params.spokes);
        for s in 0..params.spokes {
            let angle = s as f64 / params.spokes as f64 * std::f64::consts::TAU
                + rng.range_f64(-0.02, 0.02);
            let p = Point::new(radius * angle.cos(), radius * angle.sin());
            let id = builder.add_node(p);
            this_ring.push(id);
        }
        for s in 0..params.spokes {
            // Connect along the spoke (towards the centre ring below).
            builder.add_edge_euclidean(previous_ring[s], this_ring[s])?;
            // Connect around the ring.
            let next = (s + 1) % params.spokes;
            builder.add_edge_euclidean(this_ring[s], this_ring[next])?;
        }
        previous_ring = this_ring;
    }
    builder.build()
}

/// Connects the connected components of a network by adding the shortest
/// straight-line edges between component representatives until one component
/// remains.  Returns the (possibly unchanged) connected network.
pub fn connect_components(network: RoadNetwork) -> Result<RoadNetwork> {
    use crate::traversal::connected_components;
    let comps = connected_components(&network);
    if comps.len() <= 1 {
        return Ok(network);
    }
    let mut builder =
        GraphBuilder::with_capacity(network.node_count(), network.edge_count() + comps.len());
    for n in network.nodes() {
        builder.add_node_with_kind(n.point, n.kind);
    }
    for e in network.edges() {
        builder.add_edge(e.a, e.b, e.length)?;
    }
    // Greedily connect each component to the largest one via the closest node pair.
    let main = &comps[0];
    for other in comps.iter().skip(1) {
        let mut best: Option<(NodeId, NodeId, f64)> = None;
        for &a in main.iter().step_by(1 + main.len() / 512) {
            for &b in other.iter().step_by(1 + other.len() / 512) {
                let d = network.point(a).distance(&network.point(b));
                if best.map_or(true, |(_, _, bd)| d < bd) {
                    best = Some((a, b, d));
                }
            }
        }
        if let Some((a, b, d)) = best {
            builder.add_edge(a, b, d.max(1.0))?;
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::connected_components;

    #[test]
    fn split_rng_is_deterministic_and_in_range() {
        let mut a = SplitRng::new(123);
        let mut b = SplitRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = SplitRng::new(5);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.range_f64(2.0, 3.0);
            assert!((2.0..3.0).contains(&y));
            assert!(r.below(10) < 10);
        }
        assert_eq!(SplitRng::new(0).state, SplitRng::new(0).state);
    }

    #[test]
    fn perturbed_grid_has_expected_size_and_is_mostly_connected() {
        let params = GridParams {
            cols: 10,
            rows: 10,
            seed: 1,
            ..GridParams::default()
        };
        let g = perturbed_grid(&params).unwrap();
        assert_eq!(g.node_count(), 100);
        assert!(g.edge_count() > 120, "edges = {}", g.edge_count());
        let comps = connected_components(&g);
        // Dropping never isolates a node; the largest component dominates.
        assert!(comps[0].len() >= 95, "largest component {}", comps[0].len());
    }

    #[test]
    fn perturbed_grid_is_deterministic_per_seed() {
        let params = GridParams {
            cols: 6,
            rows: 6,
            seed: 99,
            ..GridParams::default()
        };
        let g1 = perturbed_grid(&params).unwrap();
        let g2 = perturbed_grid(&params).unwrap();
        assert_eq!(g1.node_count(), g2.node_count());
        assert_eq!(g1.edge_count(), g2.edge_count());
        for (a, b) in g1.nodes().iter().zip(g2.nodes()) {
            assert_eq!(a.point, b.point);
        }
        let other = perturbed_grid(&GridParams {
            seed: 100,
            cols: 6,
            rows: 6,
            ..GridParams::default()
        })
        .unwrap();
        // A different seed should change at least the geometry.
        let same_geometry = g1
            .nodes()
            .iter()
            .zip(other.nodes())
            .all(|(a, b)| a.point == b.point);
        assert!(!same_geometry);
    }

    #[test]
    fn grid_without_jitter_or_drops_is_regular() {
        let params = GridParams {
            cols: 5,
            rows: 4,
            spacing: 100.0,
            jitter: 0.0,
            drop_probability: 0.0,
            diagonal_probability: 0.0,
            seed: 3,
        };
        let g = perturbed_grid(&params).unwrap();
        assert_eq!(g.node_count(), 20);
        // 4*(5-1) horizontal + 5*(4-1) vertical = 16 + 15 = 31 edges.
        assert_eq!(g.edge_count(), 31);
        assert_eq!(connected_components(&g).len(), 1);
        assert!((g.min_edge_length().unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn radial_network_is_connected() {
        let g = radial_network(&RadialParams::default()).unwrap();
        assert_eq!(g.node_count(), 1 + 8 * 12);
        assert_eq!(connected_components(&g).len(), 1);
    }

    #[test]
    fn connect_components_merges_everything() {
        let params = GridParams {
            cols: 12,
            rows: 12,
            drop_probability: 0.35,
            seed: 17,
            ..GridParams::default()
        };
        let g = perturbed_grid(&params).unwrap();
        let connected = connect_components(g).unwrap();
        assert_eq!(connected_components(&connected).len(), 1);
    }
}
