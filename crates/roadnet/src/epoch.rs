//! [`EpochMap`]: a dense-keyed map with O(1) clearing and lazy sizing.
//!
//! Several hot paths (query-graph construction, `Q.Λ` view membership, the
//! exact solver's per-subset union-find) need a map from dense `usize` keys —
//! node indices — to small ids, rebuilt for every query or subset.  Allocating
//! or zeroing a network-sized table each time defeats the purpose, so entries
//! are stamped with the generation that wrote them: bumping the generation
//! counter invalidates every entry at once, and the rare counter wrap-around
//! is handled in one audited place instead of being re-implemented per call
//! site.
//!
//! The table is sized **lazily**: it grows (amortised, geometrically) to the
//! largest key actually inserted, not to the declared universe.  A one-shot
//! query over a small rectangle of a continent-scale network therefore pays
//! for the touched prefix of the node-id space only — not 8 bytes per node of
//! the whole network, the regression ROADMAP recorded after PR 2.  On top of
//! the lazy high-water bound, a generation can be **offset-rebased**
//! ([`EpochMap::begin_at`]): keys are stored relative to a caller-supplied
//! base, so a region whose nodes occupy a narrow id *band* anywhere in the id
//! space — including the highest ids of the network — costs table entries for
//! the band width only, not for the prefix up to it.  Callers that know the
//! smallest key of a generation up front (the `Q.Λ` view and the query-graph
//! builder both iterate sorted node ids) pass it to `begin_at`; a key below
//! the base is still handled correctly via a one-off downward rebase.

/// A map from dense `usize` keys to `u32` values whose clear is O(1) and
/// whose backing table grows lazily with the keys actually inserted.
///
/// Call [`EpochMap::begin`] (or [`EpochMap::begin_at`] when the smallest key
/// of the generation is known) to start a new generation (clearing the map),
/// then [`EpochMap::insert`]/[`EpochMap::get`].  Lookups before the first
/// `begin`, and lookups beyond the table, return `None`.
#[derive(Debug, Clone, Default)]
pub struct EpochMap {
    /// Per-rebased-key `(stamp, value)`; the entry is live iff
    /// `stamp == epoch`.  Index `i` stores key `offset + i`.
    entries: Vec<(u32, u32)>,
    epoch: u32,
    /// Base subtracted from every key of the current generation.
    offset: usize,
}

impl EpochMap {
    /// Creates an empty map; the backing table grows on insert.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new generation, invalidating every entry.  Amortised O(1):
    /// the stamp reset on epoch wrap-around happens once per `u32::MAX`
    /// generations.  No storage is touched otherwise — the table grows only
    /// when [`EpochMap::insert`] actually reaches a new high-water key.
    pub fn begin(&mut self) {
        self.begin_at(0);
    }

    /// Starts a new generation whose keys are expected to be `>= offset`,
    /// sizing the backing table by the key *band* `offset..=max_key` instead
    /// of the prefix `0..=max_key`.  Keys below `offset` still work (a one-off
    /// downward rebase shifts the table), they just forfeit the band bound.
    pub fn begin_at(&mut self, offset: usize) {
        if self.epoch == u32::MAX {
            self.entries.iter_mut().for_each(|e| e.0 = 0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        self.offset = offset;
    }

    /// Shifts the table so it is based at `new_offset < self.offset`, keeping
    /// every live entry addressable.  Cold path: only taken when a caller of
    /// [`EpochMap::begin_at`] underestimated its smallest key.
    fn rebase_down(&mut self, new_offset: usize) {
        let shift = self.offset - new_offset;
        let old_len = self.entries.len();
        self.entries.resize(old_len + shift, (0, 0));
        self.entries.rotate_right(shift);
        self.offset = new_offset;
    }

    /// Maps `key` to `value` in the current generation, growing the table to
    /// cover the key band if needed (geometric growth via `Vec`'s reserve).
    #[inline]
    pub fn insert(&mut self, key: usize, value: u32) {
        debug_assert!(self.epoch > 0, "EpochMap::begin must be called first");
        if key < self.offset {
            self.rebase_down(key);
        }
        let slot = key - self.offset;
        if slot >= self.entries.len() {
            self.entries.resize(slot + 1, (0, 0));
        }
        self.entries[slot] = (self.epoch, value);
    }

    /// The value of `key`, if it was inserted in the current generation.
    #[inline]
    pub fn get(&self, key: usize) -> Option<u32> {
        if self.epoch == 0 {
            return None;
        }
        match key
            .checked_sub(self.offset)
            .and_then(|slot| self.entries.get(slot))
        {
            Some(&(stamp, value)) if stamp == self.epoch => Some(value),
            _ => None,
        }
    }

    /// Whether `key` was inserted in the current generation.
    #[inline]
    pub fn contains(&self, key: usize) -> bool {
        self.get(key).is_some()
    }

    /// Current backing-table length — the high-water inserted key + 1, *not*
    /// the universe size (regression tests pin the lazy-sizing behaviour).
    pub fn table_len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generations_isolate_entries() {
        let mut m = EpochMap::new();
        assert!(!m.contains(0), "no entries before the first begin");
        m.begin();
        m.insert(1, 10);
        m.insert(3, 30);
        assert_eq!(m.get(1), Some(10));
        assert_eq!(m.get(3), Some(30));
        assert_eq!(m.get(0), None);
        assert_eq!(m.get(99), None, "never-inserted keys are absent");
        m.begin();
        assert_eq!(m.get(1), None, "a new generation clears old entries");
        m.insert(1, 11);
        assert_eq!(m.get(1), Some(11));
    }

    #[test]
    fn keys_can_grow_between_generations() {
        let mut m = EpochMap::new();
        m.begin();
        m.insert(1, 1);
        m.begin();
        m.insert(5, 5);
        assert_eq!(m.get(5), Some(5));
        assert_eq!(m.get(1), None);
    }

    #[test]
    fn table_is_sized_by_touched_keys_not_universe() {
        let mut m = EpochMap::new();
        m.begin();
        assert_eq!(m.table_len(), 0, "begin allocates nothing");
        m.insert(9, 1);
        assert_eq!(m.table_len(), 10, "grown to the high-water key + 1");
        m.insert(3, 2);
        assert_eq!(m.table_len(), 10, "smaller keys reuse the table");
        assert_eq!(m.get(9), Some(1));
        assert_eq!(m.get(3), Some(2));
        assert_eq!(m.get(1_000_000), None, "huge keys read as absent for free");
        m.begin();
        assert_eq!(m.table_len(), 10, "generations keep the table");
    }

    #[test]
    fn offset_rebasing_sizes_the_table_by_the_key_band() {
        let mut m = EpochMap::new();
        m.begin_at(1_000_000);
        m.insert(1_000_000, 1);
        m.insert(1_000_009, 2);
        assert_eq!(m.table_len(), 10, "band of 10 keys costs 10 entries");
        assert_eq!(m.get(1_000_000), Some(1));
        assert_eq!(m.get(1_000_009), Some(2));
        assert_eq!(m.get(1_000_004), None);
        assert_eq!(m.get(0), None, "keys below the base read as absent");
        assert!(!m.contains(999_999));
        // A plain begin() re-bases at zero for the next generation.
        m.begin();
        assert_eq!(m.get(1_000_000), None);
        m.insert(3, 30);
        assert_eq!(m.get(3), Some(30));
    }

    #[test]
    fn keys_below_the_base_trigger_a_correct_downward_rebase() {
        let mut m = EpochMap::new();
        m.begin_at(100);
        m.insert(100, 1);
        m.insert(105, 2);
        // Contract breach: a key below the declared base.  The table shifts
        // instead of corrupting or dropping entries.
        m.insert(97, 3);
        assert_eq!(m.get(100), Some(1));
        assert_eq!(m.get(105), Some(2));
        assert_eq!(m.get(97), Some(3));
        assert_eq!(m.get(98), None);
        assert_eq!(m.table_len(), 9, "rebased band is 97..=105");
    }

    #[test]
    fn epoch_wraparound_resets_all_stamps() {
        let mut m = EpochMap::new();
        m.begin();
        m.insert(0, 7);
        // Force the wrap path.
        m.epoch = u32::MAX;
        m.begin();
        assert_eq!(m.epoch, 1);
        assert_eq!(m.get(0), None, "pre-wrap entries must not resurface");
        m.insert(0, 8);
        assert_eq!(m.get(0), Some(8));
    }
}
