//! [`EpochMap`]: a dense-keyed map with O(1) clearing.
//!
//! Several hot paths (query-graph construction, `Q.Λ` view membership, the
//! exact solver's per-subset union-find) need a map from dense `usize` keys —
//! node indices — to small ids, rebuilt for every query or subset.  Allocating
//! or zeroing a network-sized table each time defeats the purpose, so entries
//! are stamped with the generation that wrote them: bumping the generation
//! counter invalidates every entry at once, and the rare counter wrap-around
//! is handled in one audited place instead of being re-implemented per call
//! site.

/// A map from dense `usize` keys to `u32` values whose clear is O(1).
///
/// Call [`EpochMap::begin`] to start a new generation (clearing the map),
/// then [`EpochMap::insert`]/[`EpochMap::get`].  Lookups before the first
/// `begin` return `None`.
#[derive(Debug, Clone, Default)]
pub struct EpochMap {
    /// Per-key `(stamp, value)`; the entry is live iff `stamp == epoch`.
    entries: Vec<(u32, u32)>,
    epoch: u32,
}

impl EpochMap {
    /// Creates an empty map; the backing table grows on [`EpochMap::begin`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new generation covering keys `< universe`.  Amortised O(1):
    /// the table only grows to a new high-water mark, and the stamp reset on
    /// epoch wrap-around happens once per `u32::MAX` generations.
    pub fn begin(&mut self, universe: usize) {
        if self.epoch == u32::MAX {
            self.entries.iter_mut().for_each(|e| e.0 = 0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        if self.entries.len() < universe {
            self.entries.resize(universe, (0, 0));
        }
    }

    /// Maps `key` to `value` in the current generation.
    #[inline]
    pub fn insert(&mut self, key: usize, value: u32) {
        debug_assert!(self.epoch > 0, "EpochMap::begin must be called first");
        self.entries[key] = (self.epoch, value);
    }

    /// The value of `key`, if it was inserted in the current generation.
    #[inline]
    pub fn get(&self, key: usize) -> Option<u32> {
        if self.epoch == 0 {
            return None;
        }
        match self.entries.get(key) {
            Some(&(stamp, value)) if stamp == self.epoch => Some(value),
            _ => None,
        }
    }

    /// Whether `key` was inserted in the current generation.
    #[inline]
    pub fn contains(&self, key: usize) -> bool {
        self.get(key).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generations_isolate_entries() {
        let mut m = EpochMap::new();
        assert!(!m.contains(0), "no entries before the first begin");
        m.begin(4);
        m.insert(1, 10);
        m.insert(3, 30);
        assert_eq!(m.get(1), Some(10));
        assert_eq!(m.get(3), Some(30));
        assert_eq!(m.get(0), None);
        assert_eq!(m.get(99), None, "out-of-universe keys are absent");
        m.begin(4);
        assert_eq!(m.get(1), None, "a new generation clears old entries");
        m.insert(1, 11);
        assert_eq!(m.get(1), Some(11));
    }

    #[test]
    fn universe_can_grow_between_generations() {
        let mut m = EpochMap::new();
        m.begin(2);
        m.insert(1, 1);
        m.begin(6);
        m.insert(5, 5);
        assert_eq!(m.get(5), Some(5));
        assert_eq!(m.get(1), None);
    }

    #[test]
    fn epoch_wraparound_resets_all_stamps() {
        let mut m = EpochMap::new();
        m.begin(2);
        m.insert(0, 7);
        // Force the wrap path.
        m.epoch = u32::MAX;
        m.begin(2);
        assert_eq!(m.epoch, 1);
        assert_eq!(m.get(0), None, "pre-wrap entries must not resurface");
        m.insert(0, 8);
        assert_eq!(m.get(0), Some(8));
    }
}
