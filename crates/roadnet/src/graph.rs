//! The road-network graph (Definition 1: `G = (V, E, τ, λ)`).
//!
//! [`RoadNetwork`] is an immutable, validated graph built by
//! [`crate::builder::GraphBuilder`].  Nodes and edges live in flat vectors and
//! adjacency is stored in a CSR-style offset table so neighbourhood scans are
//! cache friendly even on networks with millions of nodes.

use crate::edge::{EdgeId, RoadEdge};
use crate::geo::{Point, Rect};
use crate::node::{NodeId, NodeKind, RoadNode};
use crate::spatial::NodeGrid;
use serde::{Deserialize, Serialize};

/// An immutable undirected road-network graph with spatial node positions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoadNetwork {
    nodes: Vec<RoadNode>,
    edges: Vec<RoadEdge>,
    /// CSR offsets: adjacency of node `i` is `adj[adj_offsets[i]..adj_offsets[i+1]]`.
    adj_offsets: Vec<u32>,
    /// Flattened adjacency entries: (neighbour node, connecting edge).
    adj: Vec<(NodeId, EdgeId)>,
    /// Uniform spatial grid over node locations; `Q.Λ` extraction queries it
    /// so per-query cost tracks the rectangle's cell cover, not `|V|`.
    node_grid: NodeGrid,
}

impl RoadNetwork {
    /// Assembles a network from already-validated parts.
    ///
    /// This is crate-internal; external users go through
    /// [`crate::builder::GraphBuilder`] which performs validation.
    pub(crate) fn from_parts(nodes: Vec<RoadNode>, edges: Vec<RoadEdge>) -> Self {
        let n = nodes.len();
        let mut degree = vec![0u32; n];
        for e in &edges {
            degree[e.a.index()] += 1;
            degree[e.b.index()] += 1;
        }
        let mut adj_offsets = Vec::with_capacity(n + 1);
        adj_offsets.push(0u32);
        let mut acc = 0u32;
        for d in &degree {
            acc += d;
            adj_offsets.push(acc);
        }
        let mut cursor: Vec<u32> = adj_offsets[..n].to_vec();
        let mut adj = vec![(NodeId(0), EdgeId(0)); edges.len() * 2];
        for e in &edges {
            let ia = e.a.index();
            adj[cursor[ia] as usize] = (e.b, e.id);
            cursor[ia] += 1;
            let ib = e.b.index();
            adj[cursor[ib] as usize] = (e.a, e.id);
            cursor[ib] += 1;
        }
        let node_grid = NodeGrid::build(&nodes);
        RoadNetwork {
            nodes,
            edges,
            adj_offsets,
            adj,
            node_grid,
        }
    }

    /// The spatial grid bucketing node ids by cell (built once at
    /// construction).  Prepare-phase consumers use it to confine node
    /// gathering to a query rectangle's cell cover.
    pub fn node_grid(&self) -> &NodeGrid {
        &self.node_grid
    }

    /// Number of nodes in the network.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected edges (road segments) in the network.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns the node with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &RoadNode {
        &self.nodes[id.index()]
    }

    /// Returns the edge with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn edge(&self, id: EdgeId) -> &RoadEdge {
        &self.edges[id.index()]
    }

    /// Location of a node (the spatial mapping λ).
    pub fn point(&self, id: NodeId) -> Point {
        self.nodes[id.index()].point
    }

    /// Length of an edge (the distance function τ).
    pub fn length(&self, id: EdgeId) -> f64 {
        self.edges[id.index()].length
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> &[RoadNode] {
        &self.nodes
    }

    /// All edges, in id order.
    pub fn edges(&self) -> &[RoadEdge] {
        &self.edges
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Neighbours of `node` as `(neighbour, edge)` pairs.
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, EdgeId)] {
        let i = node.index();
        let start = self.adj_offsets[i] as usize;
        let end = self.adj_offsets[i + 1] as usize;
        &self.adj[start..end]
    }

    /// Degree (number of incident road segments) of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.neighbors(node).len()
    }

    /// Finds the edge connecting `a` and `b`, if any.
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        self.neighbors(a)
            .iter()
            .find(|(n, _)| *n == b)
            .map(|(_, e)| *e)
    }

    /// Total length of all road segments in the network, in metres.
    pub fn total_length(&self) -> f64 {
        self.edges.iter().map(|e| e.length).sum()
    }

    /// The shortest road-segment length in the network (`d_min` in the paper's
    /// complexity analysis), or `None` for an edgeless network.
    pub fn min_edge_length(&self) -> Option<f64> {
        self.edges
            .iter()
            .map(|e| e.length)
            .fold(None, |acc, l| match acc {
                None => Some(l),
                Some(m) => Some(m.min(l)),
            })
    }

    /// The longest road-segment length (`τ_max` used by the Greedy algorithm).
    pub fn max_edge_length(&self) -> Option<f64> {
        self.edges
            .iter()
            .map(|e| e.length)
            .fold(None, |acc, l| match acc {
                None => Some(l),
                Some(m) => Some(m.max(l)),
            })
    }

    /// Bounding rectangle of all node locations, or `None` for an empty network.
    pub fn bounding_rect(&self) -> Option<Rect> {
        Rect::bounding(self.nodes.iter().map(|n| n.point))
    }

    /// Node ids whose location falls inside `rect` (boundary inclusive), in
    /// ascending id order.  Served from the node grid: only the rectangle's
    /// cell cover is visited, not the whole node table.
    pub fn nodes_in_rect(&self, rect: &Rect) -> Vec<NodeId> {
        let mut out = Vec::new();
        if let Some(cover) = self.node_grid.cover(rect) {
            self.node_grid.candidates_in_cover(&cover, &mut out);
            out.retain(|id| rect.contains(&self.nodes[id.index()].point));
            out.sort_unstable();
        }
        out
    }

    /// The node nearest to `p` by Euclidean distance, or `None` for an empty network.
    ///
    /// This linear scan is used by object→node mapping on construction; query-time
    /// lookups should go through the grid index in `lcmsr-geotext`.
    pub fn nearest_node(&self, p: &Point) -> Option<NodeId> {
        self.nodes
            .iter()
            .min_by(|x, y| {
                x.point
                    .distance_sq(p)
                    .partial_cmp(&y.point.distance_sq(p))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|n| n.id)
    }

    /// Marks a node as hosting one or more geo-textual objects.
    pub fn mark_object_location(&mut self, node: NodeId) {
        self.nodes[node.index()].kind = NodeKind::ObjectLocation;
    }

    /// Summary statistics of the network, useful for logging and experiments.
    pub fn stats(&self) -> NetworkStats {
        let n = self.node_count();
        let m = self.edge_count();
        let avg_degree = if n == 0 {
            0.0
        } else {
            2.0 * m as f64 / n as f64
        };
        let avg_edge_length = if m == 0 {
            0.0
        } else {
            self.total_length() / m as f64
        };
        NetworkStats {
            nodes: n,
            edges: m,
            avg_degree,
            avg_edge_length,
            total_length: self.total_length(),
            bounding_rect: self.bounding_rect(),
        }
    }
}

/// Aggregate statistics describing a road network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Average node degree.
    pub avg_degree: f64,
    /// Average road-segment length in metres.
    pub avg_edge_length: f64,
    /// Total road length in metres.
    pub total_length: f64,
    /// Bounding rectangle of the node locations.
    pub bounding_rect: Option<Rect>,
}

impl std::fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes, {} edges, avg degree {:.2}, avg segment {:.1} m, total {:.1} km",
            self.nodes,
            self.edges,
            self.avg_degree,
            self.avg_edge_length,
            self.total_length / 1000.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// Builds the 6-node example graph of Figure 2 in the paper.
    pub(crate) fn figure2_graph() -> RoadNetwork {
        let mut b = GraphBuilder::new();
        // Coordinates are arbitrary but distinct; lengths follow Figure 2.
        let v1 = b.add_node(Point::new(0.0, 2.0));
        let v2 = b.add_node(Point::new(2.0, 3.0));
        let v3 = b.add_node(Point::new(4.0, 3.0));
        let v4 = b.add_node(Point::new(5.0, 1.0));
        let v5 = b.add_node(Point::new(3.0, 0.0));
        let v6 = b.add_node(Point::new(1.5, 1.0));
        b.add_edge(v1, v2, 1.0).unwrap();
        b.add_edge(v2, v3, 3.1).unwrap();
        b.add_edge(v3, v4, 5.0).unwrap();
        b.add_edge(v4, v5, 2.8).unwrap();
        b.add_edge(v5, v6, 1.5).unwrap();
        b.add_edge(v6, v1, 3.2).unwrap();
        b.add_edge(v2, v6, 1.6).unwrap();
        b.add_edge(v3, v5, 3.4).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn figure2_graph_has_expected_shape() {
        let g = figure2_graph();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.degree(NodeId(1)), 3); // v2 connects v1, v3, v6
        assert_eq!(
            g.edge_between(NodeId(0), NodeId(1)).map(|e| g.length(e)),
            Some(1.0)
        );
        assert!(g.edge_between(NodeId(0), NodeId(3)).is_none());
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = figure2_graph();
        for e in g.edges() {
            assert!(g
                .neighbors(e.a)
                .iter()
                .any(|(n, id)| *n == e.b && *id == e.id));
            assert!(g
                .neighbors(e.b)
                .iter()
                .any(|(n, id)| *n == e.a && *id == e.id));
        }
    }

    #[test]
    fn length_extremes_and_total() {
        let g = figure2_graph();
        assert_eq!(g.min_edge_length(), Some(1.0));
        assert_eq!(g.max_edge_length(), Some(5.0));
        let total: f64 = g.edges().iter().map(|e| e.length).sum();
        assert!((g.total_length() - total).abs() < 1e-12);
    }

    #[test]
    fn nodes_in_rect_filters_by_location() {
        let g = figure2_graph();
        let rect = Rect::new(0.0, 0.0, 2.0, 3.0);
        let inside = g.nodes_in_rect(&rect);
        assert!(inside.contains(&NodeId(0)));
        assert!(inside.contains(&NodeId(1)));
        assert!(inside.contains(&NodeId(5)));
        assert!(!inside.contains(&NodeId(3)));
    }

    #[test]
    fn nearest_node_finds_closest() {
        let g = figure2_graph();
        assert_eq!(g.nearest_node(&Point::new(0.1, 2.1)), Some(NodeId(0)));
        assert_eq!(g.nearest_node(&Point::new(5.0, 1.0)), Some(NodeId(3)));
    }

    #[test]
    fn stats_report_consistent_numbers() {
        let g = figure2_graph();
        let s = g.stats();
        assert_eq!(s.nodes, 6);
        assert_eq!(s.edges, 8);
        assert!((s.avg_degree - 16.0 / 6.0).abs() < 1e-12);
        assert!(s.bounding_rect.is_some());
        assert!(s.to_string().contains("6 nodes"));
    }

    #[test]
    fn mark_object_location_changes_kind() {
        let mut g = figure2_graph();
        g.mark_object_location(NodeId(2));
        assert_eq!(g.node(NodeId(2)).kind, NodeKind::ObjectLocation);
    }

    #[test]
    fn empty_network_edge_cases() {
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.bounding_rect().is_none());
        assert!(g.min_edge_length().is_none());
        assert!(g.nearest_node(&Point::new(0.0, 0.0)).is_none());
        assert_eq!(g.stats().avg_degree, 0.0);
    }
}
