//! Graph traversal: BFS, DFS, Dijkstra shortest paths, and connected components.

use crate::edge::EdgeId;
use crate::graph::RoadNetwork;
use crate::node::NodeId;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Breadth-first search order from `start`, restricted to nodes for which
/// `allowed` returns true.  Returns the visited nodes in visit order.
pub fn bfs_order(
    graph: &RoadNetwork,
    start: NodeId,
    allowed: impl Fn(NodeId) -> bool,
) -> Vec<NodeId> {
    if !allowed(start) {
        return Vec::new();
    }
    let mut visited = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    visited[start.index()] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &(n, _) in graph.neighbors(v) {
            if !visited[n.index()] && allowed(n) {
                visited[n.index()] = true;
                queue.push_back(n);
            }
        }
    }
    order
}

/// Depth-first search order from `start` over the whole graph.
pub fn dfs_order(graph: &RoadNetwork, start: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        if visited[v.index()] {
            continue;
        }
        visited[v.index()] = true;
        order.push(v);
        for &(n, _) in graph.neighbors(v) {
            if !visited[n.index()] {
                stack.push(n);
            }
        }
    }
    order
}

/// Connected components of the graph; each component is a list of node ids.
/// Components are returned largest first.
pub fn connected_components(graph: &RoadNetwork) -> Vec<Vec<NodeId>> {
    let mut visited = vec![false; graph.node_count()];
    let mut components = Vec::new();
    for start in graph.node_ids() {
        if visited[start.index()] {
            continue;
        }
        let mut comp = Vec::new();
        let mut queue = VecDeque::new();
        visited[start.index()] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            comp.push(v);
            for &(n, _) in graph.neighbors(v) {
                if !visited[n.index()] {
                    visited[n.index()] = true;
                    queue.push_back(n);
                }
            }
        }
        components.push(comp);
    }
    components.sort_by_key(|c| std::cmp::Reverse(c.len()));
    components
}

/// Entry in the Dijkstra priority queue.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that the BinaryHeap (max-heap) pops the smallest distance.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of a single-source shortest-path computation.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<f64>,
    prev: Vec<Option<(NodeId, EdgeId)>>,
}

impl ShortestPaths {
    /// The source node of this computation.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Network distance from the source to `node`, or `None` if unreachable.
    pub fn distance(&self, node: NodeId) -> Option<f64> {
        let d = self.dist[node.index()];
        if d.is_finite() {
            Some(d)
        } else {
            None
        }
    }

    /// Reconstructs the node path from the source to `target`, or `None` if
    /// the target is unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        self.distance(target)?;
        let mut path = vec![target];
        let mut cur = target;
        while let Some((p, _)) = self.prev[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path.first(), Some(&self.source));
        Some(path)
    }

    /// Edges of the path from the source to `target`, or `None` if unreachable.
    pub fn path_edges_to(&self, target: NodeId) -> Option<Vec<EdgeId>> {
        self.distance(target)?;
        let mut edges = Vec::new();
        let mut cur = target;
        while let Some((p, e)) = self.prev[cur.index()] {
            edges.push(e);
            cur = p;
        }
        edges.reverse();
        Some(edges)
    }
}

/// Dijkstra's algorithm from `source` over the nodes for which `allowed`
/// returns true.  All edge lengths must be non-negative, which the builder
/// guarantees.
pub fn dijkstra(
    graph: &RoadNetwork,
    source: NodeId,
    allowed: impl Fn(NodeId) -> bool,
) -> ShortestPaths {
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    if allowed(source) {
        dist[source.index()] = 0.0;
        heap.push(HeapEntry {
            dist: 0.0,
            node: source,
        });
    }
    while let Some(HeapEntry { dist: d, node: v }) = heap.pop() {
        if d > dist[v.index()] {
            continue;
        }
        for &(u, e) in graph.neighbors(v) {
            if !allowed(u) {
                continue;
            }
            let nd = d + graph.length(e);
            if nd < dist[u.index()] {
                dist[u.index()] = nd;
                prev[u.index()] = Some((v, e));
                heap.push(HeapEntry { dist: nd, node: u });
            }
        }
    }
    ShortestPaths { source, dist, prev }
}

/// Dijkstra over the whole graph (no node restriction).
pub fn dijkstra_all(graph: &RoadNetwork, source: NodeId) -> ShortestPaths {
    dijkstra(graph, source, |_| true)
}

/// A spanning tree (or forest edge set) produced by [`minimum_spanning_tree`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanningTree {
    /// Edges of the tree.
    pub edges: Vec<EdgeId>,
    /// Total length of the tree edges.
    pub total_length: f64,
}

/// Kruskal's minimum spanning tree over the subgraph induced by `nodes`.
///
/// If the induced subgraph is disconnected the result is a minimum spanning
/// forest.  Used for computing the minimum connecting length of a MaxRS result
/// (Section 7.5 of the paper) and inside tests.
pub fn minimum_spanning_tree(graph: &RoadNetwork, nodes: &[NodeId]) -> SpanningTree {
    let mut in_set = vec![false; graph.node_count()];
    for &n in nodes {
        in_set[n.index()] = true;
    }
    let mut candidate_edges: Vec<EdgeId> = graph
        .edges()
        .iter()
        .filter(|e| in_set[e.a.index()] && in_set[e.b.index()])
        .map(|e| e.id)
        .collect();
    candidate_edges.sort_by(|&x, &y| {
        graph
            .length(x)
            .partial_cmp(&graph.length(y))
            .unwrap_or(Ordering::Equal)
    });
    let mut parent: Vec<u32> = (0..graph.node_count() as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    let mut edges = Vec::new();
    let mut total = 0.0;
    for e in candidate_edges {
        let edge = graph.edge(e);
        let ra = find(&mut parent, edge.a.0);
        let rb = find(&mut parent, edge.b.0);
        if ra != rb {
            parent[ra as usize] = rb;
            edges.push(e);
            total += edge.length;
        }
    }
    SpanningTree {
        edges,
        total_length: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::geo::Point;

    fn line_graph(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| b.add_node(Point::new(i as f64, 0.0)))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], 1.0).unwrap();
        }
        b.build().unwrap()
    }

    fn figure2() -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let v: Vec<NodeId> = (0..6)
            .map(|i| b.add_node(Point::new(i as f64, 0.0)))
            .collect();
        b.add_edge(v[0], v[1], 1.0).unwrap();
        b.add_edge(v[1], v[2], 3.1).unwrap();
        b.add_edge(v[2], v[3], 5.0).unwrap();
        b.add_edge(v[3], v[4], 2.8).unwrap();
        b.add_edge(v[4], v[5], 1.5).unwrap();
        b.add_edge(v[5], v[0], 3.2).unwrap();
        b.add_edge(v[1], v[5], 1.6).unwrap();
        b.add_edge(v[2], v[4], 3.4).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn bfs_visits_all_reachable_nodes_once() {
        let g = figure2();
        let order = bfs_order(&g, NodeId(0), |_| true);
        assert_eq!(order.len(), 6);
        let mut sorted = order.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
        assert_eq!(order[0], NodeId(0));
    }

    #[test]
    fn bfs_respects_allowed_predicate() {
        let g = line_graph(5);
        // Block node 2: only 0 and 1 reachable.
        let order = bfs_order(&g, NodeId(0), |n| n != NodeId(2));
        assert_eq!(order, vec![NodeId(0), NodeId(1)]);
        // Start not allowed => empty.
        assert!(bfs_order(&g, NodeId(0), |n| n != NodeId(0)).is_empty());
    }

    #[test]
    fn dfs_visits_all_nodes() {
        let g = figure2();
        let order = dfs_order(&g, NodeId(3));
        assert_eq!(order.len(), 6);
        assert_eq!(order[0], NodeId(3));
    }

    #[test]
    fn connected_components_of_disconnected_graph() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(1.0, 0.0));
        let d = b.add_node(Point::new(10.0, 0.0));
        let e = b.add_node(Point::new(11.0, 0.0));
        let f = b.add_node(Point::new(12.0, 0.0));
        b.add_edge(a, c, 1.0).unwrap();
        b.add_edge(d, e, 1.0).unwrap();
        b.add_edge(e, f, 1.0).unwrap();
        let g = b.build().unwrap();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 3); // largest first
        assert_eq!(comps[1].len(), 2);
    }

    #[test]
    fn dijkstra_on_line_graph() {
        let g = line_graph(5);
        let sp = dijkstra_all(&g, NodeId(0));
        assert_eq!(sp.distance(NodeId(4)), Some(4.0));
        assert_eq!(
            sp.path_to(NodeId(3)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(sp.path_edges_to(NodeId(2)).unwrap().len(), 2);
        assert_eq!(sp.source(), NodeId(0));
    }

    #[test]
    fn dijkstra_finds_shortest_route_in_figure2() {
        let g = figure2();
        let sp = dijkstra_all(&g, NodeId(0));
        // v1 -> v2 -> v6: 1.0 + 1.6 = 2.6, shorter than the direct 3.2 edge.
        assert!((sp.distance(NodeId(5)).unwrap() - 2.6).abs() < 1e-12);
        assert_eq!(
            sp.path_to(NodeId(5)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(5)]
        );
    }

    #[test]
    fn dijkstra_unreachable_returns_none() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let _lonely = b.add_node(Point::new(5.0, 5.0));
        let c = b.add_node(Point::new(1.0, 0.0));
        b.add_edge(a, c, 1.0).unwrap();
        let g = b.build().unwrap();
        let sp = dijkstra_all(&g, a);
        assert!(sp.distance(NodeId(1)).is_none());
        assert!(sp.path_to(NodeId(1)).is_none());
        assert!(sp.path_edges_to(NodeId(1)).is_none());
    }

    #[test]
    fn dijkstra_with_restriction_avoids_blocked_nodes() {
        let g = figure2();
        // Block v2 (index 1): v1 to v6 must use the direct 3.2 edge.
        let sp = dijkstra(&g, NodeId(0), |n| n != NodeId(1));
        assert!((sp.distance(NodeId(5)).unwrap() - 3.2).abs() < 1e-12);
    }

    #[test]
    fn mst_of_line_subset() {
        let g = line_graph(6);
        let all: Vec<NodeId> = g.node_ids().collect();
        let t = minimum_spanning_tree(&g, &all);
        assert_eq!(t.edges.len(), 5);
        assert!((t.total_length - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mst_of_cycle_drops_longest_edge() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(1.0, 0.0));
        let d = b.add_node(Point::new(1.0, 1.0));
        b.add_edge(a, c, 1.0).unwrap();
        b.add_edge(c, d, 2.0).unwrap();
        b.add_edge(d, a, 5.0).unwrap();
        let g = b.build().unwrap();
        let all: Vec<NodeId> = g.node_ids().collect();
        let t = minimum_spanning_tree(&g, &all);
        assert_eq!(t.edges.len(), 2);
        assert!((t.total_length - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mst_of_disconnected_subset_is_forest() {
        let g = line_graph(5);
        // Nodes 0,1 and 3,4 (node 2 excluded) → forest with 2 edges.
        let t = minimum_spanning_tree(&g, &[NodeId(0), NodeId(1), NodeId(3), NodeId(4)]);
        assert_eq!(t.edges.len(), 2);
        assert!((t.total_length - 2.0).abs() < 1e-12);
    }
}
