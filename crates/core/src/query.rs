//! The LCMSR query (Definition 3 of the paper).

use crate::error::{LcmsrError, Result};
use lcmsr_roadnet::geo::Rect;
use serde::{Deserialize, Serialize};

/// A Length-Constrained Maximum-Sum Region query `Q = ⟨ψ, ∆, Λ⟩`.
///
/// * `keywords` — the query keywords `Q.ψ`,
/// * `delta` — the length constraint `Q.∆` in metres (how far the user is
///   willing to walk while exploring the region),
/// * `region_of_interest` — the rectangular general region of interest `Q.Λ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LcmsrQuery {
    /// Query keywords `Q.ψ`.
    pub keywords: Vec<String>,
    /// Length constraint `Q.∆` in metres.
    pub delta: f64,
    /// Region of interest `Q.Λ`.
    pub region_of_interest: Rect,
}

impl LcmsrQuery {
    /// Creates a query after validating its arguments.
    pub fn new(
        keywords: impl IntoIterator<Item = impl Into<String>>,
        delta: f64,
        region_of_interest: Rect,
    ) -> Result<Self> {
        let keywords: Vec<String> = keywords
            .into_iter()
            .map(Into::into)
            .filter(|k| !k.trim().is_empty())
            .collect();
        let query = LcmsrQuery {
            keywords,
            delta,
            region_of_interest,
        };
        query.validate()?;
        Ok(query)
    }

    /// Validates the query arguments.
    pub fn validate(&self) -> Result<()> {
        if self.keywords.is_empty() {
            return Err(LcmsrError::EmptyKeywords);
        }
        if !(self.delta.is_finite() && self.delta > 0.0) {
            return Err(LcmsrError::InvalidDelta { delta: self.delta });
        }
        if self.region_of_interest.width() <= 0.0 || self.region_of_interest.height() <= 0.0 {
            return Err(LcmsrError::InvalidRegionOfInterest);
        }
        Ok(())
    }

    /// The query keywords as string slices.
    pub fn keyword_refs(&self) -> Vec<&str> {
        self.keywords.iter().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect() -> Rect {
        Rect::new(0.0, 0.0, 10_000.0, 10_000.0)
    }

    #[test]
    fn valid_query_is_accepted() {
        let q = LcmsrQuery::new(["restaurant", "cafe"], 8_000.0, rect()).unwrap();
        assert_eq!(q.keywords.len(), 2);
        assert_eq!(q.keyword_refs(), vec!["restaurant", "cafe"]);
        assert!(q.validate().is_ok());
    }

    #[test]
    fn blank_keywords_are_dropped_and_empty_rejected() {
        let q = LcmsrQuery::new(["", "  ", "cafe"], 1_000.0, rect()).unwrap();
        assert_eq!(q.keywords, vec!["cafe".to_string()]);
        assert!(matches!(
            LcmsrQuery::new(Vec::<String>::new(), 1_000.0, rect()),
            Err(LcmsrError::EmptyKeywords)
        ));
        assert!(matches!(
            LcmsrQuery::new(["", "  "], 1_000.0, rect()),
            Err(LcmsrError::EmptyKeywords)
        ));
    }

    #[test]
    fn bad_delta_is_rejected() {
        for delta in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                LcmsrQuery::new(["cafe"], delta, rect()),
                Err(LcmsrError::InvalidDelta { .. })
            ));
        }
    }

    #[test]
    fn degenerate_region_is_rejected() {
        let degenerate = Rect::new(5.0, 5.0, 5.0, 9.0);
        assert!(matches!(
            LcmsrQuery::new(["cafe"], 1_000.0, degenerate),
            Err(LcmsrError::InvalidRegionOfInterest)
        ));
    }
}
