//! Exact LCMSR solver for small query graphs.
//!
//! Answering LCMSR is NP-hard (Theorem 1), so exact answers are only practical
//! on small instances.  This solver enumerates every node subset of the query
//! region, keeps those whose induced subgraph is connected, connects each with
//! its minimum spanning tree (the cheapest edge set realising that node set as
//! a region) and returns the feasible subset of maximum weight.
//!
//! The solver exists to *validate* the approximation algorithms: integration
//! and property tests compare APP, TGEN and Greedy against it on graphs with up
//! to [`ExactSolver::DEFAULT_NODE_LIMIT`] nodes.

use crate::arena::TupleArena;
use crate::cancel::CancelToken;
use crate::error::{LcmsrError, Result};
use crate::query_graph::QueryGraph;
use crate::region::RegionTuple;
use crate::trace::TraceCollector;
use lcmsr_roadnet::epoch::EpochMap;
use std::cmp::Ordering;

/// How many subset masks the exact enumeration processes between two polls of
/// the cancellation token.  A power of two so the check compiles to a mask.
const CANCEL_POLL_STRIDE: u32 = 256;

/// Exhaustive-enumeration LCMSR solver.
#[derive(Debug, Clone)]
pub struct ExactSolver {
    node_limit: usize,
}

impl Default for ExactSolver {
    fn default() -> Self {
        ExactSolver {
            node_limit: Self::DEFAULT_NODE_LIMIT,
        }
    }
}

impl ExactSolver {
    /// Default maximum number of nodes the solver will enumerate (2^n subsets).
    pub const DEFAULT_NODE_LIMIT: usize = 20;

    /// Creates a solver with the default node limit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with a custom node limit (values above ~24 are impractical).
    pub fn with_node_limit(limit: usize) -> Self {
        ExactSolver { node_limit: limit }
    }

    /// Finds the optimal region (maximum weight, length ≤ `Q.∆`), or `None`
    /// when no node carries a positive weight.
    ///
    /// When `ctl` fires mid-enumeration the solver stops at the next poll
    /// stride and returns its incumbent — the best region over every subset
    /// enumerated so far — with [`ExactOutcome::interrupted`] set.  The
    /// incumbent is always feasible; it just may not be the true optimum.
    pub fn solve(
        &self,
        graph: &QueryGraph,
        arena: &mut TupleArena,
        ctl: &CancelToken,
        tracer: &mut TraceCollector,
    ) -> Result<ExactOutcome> {
        let mut best: Option<RegionTuple> = None;
        let interrupted = self.enumerate(graph, arena, ctl, tracer, |arena, candidate| {
            let better = match &best {
                None => true,
                Some(b) => {
                    candidate.weight > b.weight + 1e-12
                        || ((candidate.weight - b.weight).abs() <= 1e-12
                            && candidate.length < b.length)
                }
            };
            // Every enumerated tuple has a single owner, so losers recycle.
            if better {
                if let Some(old) = best.replace(candidate) {
                    old.free(arena);
                }
            } else {
                candidate.free(arena);
            }
        })?;
        Ok(ExactOutcome { best, interrupted })
    }

    /// Enumerates the `k` best *distinct node sets* (every subset of `Q.Λ` is
    /// a distinct node set, so no deduplication is needed), ordered by the
    /// shared quality order [`RegionTuple::cmp_quality`] — the same total
    /// order the approximation algorithms' top-k paths use, so exact top-k
    /// results are directly comparable to theirs.
    pub fn solve_topk(
        &self,
        graph: &QueryGraph,
        arena: &mut TupleArena,
        k: usize,
        ctl: &CancelToken,
        tracer: &mut TraceCollector,
    ) -> Result<ExactTopK> {
        let mut top: Vec<RegionTuple> = Vec::with_capacity(k.min(64));
        let mut feasible_enumerated = 0u64;
        if k == 0 {
            // Still validate the graph-size limit for a consistent API.
            if graph.sigma_max() > 0.0 && graph.node_count() > self.node_limit {
                return Err(LcmsrError::GraphTooLargeForExact {
                    nodes: graph.node_count(),
                    limit: self.node_limit,
                });
            }
            return Ok(ExactTopK {
                tuples: top,
                feasible_enumerated,
                interrupted: false,
            });
        }
        let interrupted = self.enumerate(graph, arena, ctl, tracer, |arena, candidate| {
            feasible_enumerated += 1;
            let pos = top.partition_point(|t| t.cmp_quality(&candidate) != Ordering::Greater);
            if pos < k {
                top.insert(pos, candidate);
                if top.len() > k {
                    // The pushed-out tuple is exclusively ours — recycle it.
                    top.pop().expect("len > k").free(arena);
                }
            } else {
                candidate.free(arena);
            }
        })?;
        Ok(ExactTopK {
            tuples: top,
            feasible_enumerated,
            interrupted,
        })
    }

    /// Runs the subset enumeration, invoking `visit` for every feasible
    /// (connected, length ≤ `Q.∆`) region tuple.  Each visited tuple is owned
    /// by the callback alone, which may free it.  Returns `true` when the
    /// cancellation token fired and the enumeration stopped early.
    ///
    /// Each poll stride ([`CANCEL_POLL_STRIDE`] masks) records a `mask_chunk`
    /// span with a `feasible` attr into `tracer`.
    fn enumerate(
        &self,
        graph: &QueryGraph,
        arena: &mut TupleArena,
        ctl: &CancelToken,
        tracer: &mut TraceCollector,
        mut visit: impl FnMut(&mut TupleArena, RegionTuple),
    ) -> Result<bool> {
        let n = graph.node_count();
        if graph.sigma_max() <= 0.0 {
            // No relevant node: the answer is empty regardless of the graph size.
            return Ok(false);
        }
        if n > self.node_limit {
            return Err(LcmsrError::GraphTooLargeForExact {
                nodes: n,
                limit: self.node_limit,
            });
        }
        let delta = graph.delta();
        let mut mst = MstScratch::new(n);
        // Enumerate all non-empty node subsets.
        let mut chunk = tracer.start("mask_chunk");
        let mut chunk_feasible = 0u64;
        for mask in 1u32..(1u32 << n) {
            // Poll coarsely: one clock read per stride of 2^n masks; a trace
            // span covers the same stride.
            if mask % CANCEL_POLL_STRIDE == 0 {
                tracer.end_with(chunk, &[("feasible", chunk_feasible)]);
                chunk_feasible = 0;
                if ctl.is_cancelled() {
                    return Ok(true);
                }
                chunk = tracer.start("mask_chunk");
            }
            let nodes: Vec<u32> = (0..n as u32).filter(|&v| mask & (1 << v) != 0).collect();
            let Some((edges, length)) = induced_mst(graph, &nodes, &mut mst) else {
                continue; // the induced subgraph is disconnected
            };
            if length > delta + 1e-9 {
                continue;
            }
            let weight: f64 = nodes.iter().map(|&v| graph.weight(v)).sum();
            let scaled: u64 = nodes.iter().map(|&v| graph.scaled_weight(v)).sum();
            let tuple = RegionTuple::from_parts(arena, length, weight, scaled, &nodes, &edges);
            chunk_feasible += 1;
            visit(arena, tuple);
        }
        tracer.end_with(chunk, &[("feasible", chunk_feasible)]);
        Ok(false)
    }
}

/// Result of [`ExactSolver::solve`].
#[derive(Debug, Clone)]
pub struct ExactOutcome {
    /// The best feasible region found (`None` when no node carries a positive
    /// weight, or when an interrupt fired before any feasible subset was
    /// enumerated).
    pub best: Option<RegionTuple>,
    /// Whether the enumeration stopped early on cancellation; `best` is then
    /// the incumbent, not necessarily the optimum.
    pub interrupted: bool,
}

/// Result of [`ExactSolver::solve_topk`].
#[derive(Debug, Clone)]
pub struct ExactTopK {
    /// The `k` best distinct feasible regions, best first
    /// ([`RegionTuple::cmp_quality`] order).
    pub tuples: Vec<RegionTuple>,
    /// Number of feasible regions enumerated (reported as `tuples_generated`).
    pub feasible_enumerated: u64,
    /// Whether the enumeration stopped early on cancellation.
    pub interrupted: bool,
}

/// Dense scratch for the per-subset MST: an O(1)-clear membership table and
/// a union-find array over the query graph's local node ids, reused across
/// all `2^n` subsets instead of re-hashing per subset.
struct MstScratch {
    parent: Vec<u32>,
    members: EpochMap,
    candidates: Vec<u32>,
}

impl MstScratch {
    fn new(n: usize) -> Self {
        MstScratch {
            parent: vec![0; n],
            members: EpochMap::new(),
            candidates: Vec::new(),
        }
    }
}

/// Minimum spanning tree of the subgraph induced by `nodes`.
/// Returns `None` when the induced subgraph is not connected.
fn induced_mst(
    graph: &QueryGraph,
    nodes: &[u32],
    scratch: &mut MstScratch,
) -> Option<(Vec<u32>, f64)> {
    if nodes.len() == 1 {
        return Some((Vec::new(), 0.0));
    }
    scratch.members.begin();
    for &v in nodes {
        scratch.members.insert(v as usize, v);
        scratch.parent[v as usize] = v;
    }
    // Collect induced edges sorted by length (Kruskal).
    scratch.candidates.clear();
    for &v in nodes {
        for &(u, e) in graph.neighbors(v) {
            if u > v && scratch.members.contains(u as usize) {
                scratch.candidates.push(e);
            }
        }
    }
    scratch.candidates.sort_by(|&x, &y| {
        graph
            .edge(x)
            .length
            .partial_cmp(&graph.edge(y).length)
            .unwrap_or(Ordering::Equal)
    });
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    let mut edges = Vec::new();
    let mut length = 0.0;
    let mut merged = 0;
    for &e in &scratch.candidates {
        let edge = graph.edge(e);
        let ra = find(&mut scratch.parent, edge.a);
        let rb = find(&mut scratch.parent, edge.b);
        if ra != rb {
            scratch.parent[ra as usize] = rb;
            edges.push(e);
            length += edge.length;
            merged += 1;
            if merged == nodes.len() - 1 {
                break;
            }
        }
    }
    if merged == nodes.len() - 1 {
        edges.sort_unstable();
        Some((edges, length))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_graph::test_support::figure2_query_graph;

    fn solve_best(qg: &QueryGraph, arena: &mut TupleArena) -> Option<RegionTuple> {
        ExactSolver::new()
            .solve(
                qg,
                arena,
                &CancelToken::none(),
                &mut TraceCollector::disabled(),
            )
            .unwrap()
            .best
    }

    #[test]
    fn finds_the_papers_optimum_on_figure2() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        let best = solve_best(&qg, &mut arena).unwrap();
        assert!((best.weight - 1.1).abs() < 1e-9);
        assert!((best.length - 5.9).abs() < 1e-9);
        assert_eq!(best.nodes(&arena), &[1, 3, 4, 5]);
    }

    #[test]
    fn optimum_is_monotone_in_delta() {
        let mut previous = 0.0;
        for delta in [0.5, 1.5, 3.0, 4.5, 6.0, 8.0, 12.0, 20.0] {
            let (_n, qg) = figure2_query_graph(delta, 0.15);
            let mut arena = TupleArena::new();
            let best = solve_best(&qg, &mut arena).unwrap();
            assert!(best.length <= delta + 1e-9);
            assert!(
                best.weight + 1e-12 >= previous,
                "optimum decreased when ∆ grew to {delta}"
            );
            previous = best.weight;
        }
        // With a huge ∆ the whole graph is optimal.
        let (_n, qg) = figure2_query_graph(100.0, 0.15);
        let mut arena = TupleArena::new();
        let best = solve_best(&qg, &mut arena).unwrap();
        assert!((best.weight - 1.7).abs() < 1e-9);
    }

    #[test]
    fn topk_enumerates_distinct_regions_in_quality_order() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        let top = ExactSolver::new()
            .solve_topk(
                &qg,
                &mut arena,
                5,
                &CancelToken::none(),
                &mut TraceCollector::disabled(),
            )
            .unwrap();
        assert_eq!(top.tuples.len(), 5);
        assert!(top.feasible_enumerated >= 5);
        // Best-first under the shared quality order, all feasible, all distinct.
        for w in top.tuples.windows(2) {
            assert_ne!(w[0].cmp_quality(&w[1]), Ordering::Greater);
            assert!(!w[0].same_nodes(&w[1], &arena));
        }
        for t in &top.tuples {
            assert!(t.length <= 6.0 + 1e-9);
        }
        // The head is the true optimum (weight 1.1 — on this instance the
        // scaled and original orders agree).
        assert!((top.tuples[0].weight - 1.1).abs() < 1e-9);
        // The runner-up is strictly worse than the optimum.
        assert!(top.tuples[1].scaled <= top.tuples[0].scaled);
    }

    #[test]
    fn topk_with_k_exceeding_candidates_returns_them_all() {
        use lcmsr_geotext::collection::NodeWeights;
        use lcmsr_roadnet::builder::GraphBuilder;
        use lcmsr_roadnet::geo::Point;
        use lcmsr_roadnet::node::NodeId;
        use lcmsr_roadnet::subgraph::RegionView;

        // Two nodes, one edge too long to combine: exactly 2 feasible regions.
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(10.0, 0.0));
        b.add_edge(a, c, 10.0).unwrap();
        let network = b.build().unwrap();
        let mut weights = NodeWeights::default();
        weights.by_node.insert(NodeId(0), 0.9);
        weights.by_node.insert(NodeId(1), 0.3);
        let view = RegionView::whole(&network);
        let qg = QueryGraph::build(&view, &weights, 5.0, 0.5).unwrap();
        let mut arena = TupleArena::new();
        let top = ExactSolver::new()
            .solve_topk(
                &qg,
                &mut arena,
                10,
                &CancelToken::none(),
                &mut TraceCollector::disabled(),
            )
            .unwrap();
        assert_eq!(top.tuples.len(), 2);
        assert_eq!(top.feasible_enumerated, 2);
        assert!((top.tuples[0].weight - 0.9).abs() < 1e-12);
        assert!((top.tuples[1].weight - 0.3).abs() < 1e-12);
    }

    #[test]
    fn topk_zero_k_and_irrelevant_graphs_are_empty() {
        use lcmsr_geotext::collection::NodeWeights;
        use lcmsr_roadnet::subgraph::RegionView;
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        assert!(ExactSolver::new()
            .solve_topk(
                &qg,
                &mut arena,
                0,
                &CancelToken::none(),
                &mut TraceCollector::disabled()
            )
            .unwrap()
            .tuples
            .is_empty());
        let (network, _) = crate::query_graph::test_support::figure2();
        let view = RegionView::whole(&network);
        let qg0 = QueryGraph::build(&view, &NodeWeights::default(), 5.0, 0.5).unwrap();
        assert!(ExactSolver::new()
            .solve_topk(
                &qg0,
                &mut arena,
                3,
                &CancelToken::none(),
                &mut TraceCollector::disabled()
            )
            .unwrap()
            .tuples
            .is_empty());
        // The size limit still applies for k = 0 on a relevant graph.
        assert!(ExactSolver::with_node_limit(3)
            .solve_topk(
                &qg,
                &mut arena,
                0,
                &CancelToken::none(),
                &mut TraceCollector::disabled()
            )
            .is_err());
    }

    #[test]
    fn topk_head_agrees_with_solve_when_orders_coincide() {
        // On Figure 2 with α = 0.15 the scaled weights are exact multiples of
        // the originals, so cmp_quality and the true-weight order agree and
        // solve_topk(…, 1) must reproduce solve().
        for delta in [1.0, 3.0, 6.0, 12.0] {
            let (_n, qg) = figure2_query_graph(delta, 0.15);
            let mut arena = TupleArena::new();
            let single = solve_best(&qg, &mut arena).unwrap();
            let top = ExactSolver::new()
                .solve_topk(
                    &qg,
                    &mut arena,
                    1,
                    &CancelToken::none(),
                    &mut TraceCollector::disabled(),
                )
                .unwrap();
            assert_eq!(top.tuples.len(), 1);
            assert!(top.tuples[0].same_nodes(&single, &arena));
        }
    }

    #[test]
    fn rejects_oversized_graphs() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let solver = ExactSolver::with_node_limit(3);
        assert!(matches!(
            solver.solve(
                &qg,
                &mut TupleArena::new(),
                &CancelToken::none(),
                &mut TraceCollector::disabled()
            ),
            Err(LcmsrError::GraphTooLargeForExact { nodes: 6, limit: 3 })
        ));
    }

    #[test]
    fn returns_none_without_relevant_nodes() {
        use lcmsr_geotext::collection::NodeWeights;
        use lcmsr_roadnet::subgraph::RegionView;
        let (network, _) = crate::query_graph::test_support::figure2();
        let view = RegionView::whole(&network);
        let qg = QueryGraph::build(&view, &NodeWeights::default(), 5.0, 0.5).unwrap();
        assert!(ExactSolver::new()
            .solve(
                &qg,
                &mut TupleArena::new(),
                &CancelToken::none(),
                &mut TraceCollector::disabled()
            )
            .unwrap()
            .best
            .is_none());
    }

    #[test]
    fn single_positive_node_is_the_optimum_when_isolated() {
        use lcmsr_geotext::collection::NodeWeights;
        use lcmsr_roadnet::builder::GraphBuilder;
        use lcmsr_roadnet::geo::Point;
        use lcmsr_roadnet::node::NodeId;
        use lcmsr_roadnet::subgraph::RegionView;

        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(10.0, 0.0));
        b.add_edge(a, c, 10.0).unwrap();
        let network = b.build().unwrap();
        let mut weights = NodeWeights::default();
        weights.by_node.insert(NodeId(0), 0.9);
        weights.by_node.insert(NodeId(1), 0.3);
        let view = RegionView::whole(&network);
        // ∆ smaller than the connecting edge: only single nodes are feasible.
        let qg = QueryGraph::build(&view, &weights, 5.0, 0.5).unwrap();
        let mut arena = TupleArena::new();
        let best = solve_best(&qg, &mut arena).unwrap();
        assert_eq!(best.node_count(), 1);
        assert!((best.weight - 0.9).abs() < 1e-12);
    }

    #[test]
    fn prefers_shorter_region_among_equal_weights() {
        use lcmsr_geotext::collection::NodeWeights;
        use lcmsr_roadnet::builder::GraphBuilder;
        use lcmsr_roadnet::geo::Point;
        use lcmsr_roadnet::node::NodeId;
        use lcmsr_roadnet::subgraph::RegionView;

        // Path a - b - c where only a and b are weighted: {a,b} and {a,b,c}
        // have the same weight, the shorter {a,b} must win.
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(1.0, 0.0));
        let n2 = b.add_node(Point::new(2.0, 0.0));
        b.add_edge(n0, n1, 1.0).unwrap();
        b.add_edge(n1, n2, 1.0).unwrap();
        let network = b.build().unwrap();
        let mut weights = NodeWeights::default();
        weights.by_node.insert(NodeId(0), 0.5);
        weights.by_node.insert(NodeId(1), 0.5);
        let view = RegionView::whole(&network);
        let qg = QueryGraph::build(&view, &weights, 10.0, 0.5).unwrap();
        let mut arena = TupleArena::new();
        let best = solve_best(&qg, &mut arena).unwrap();
        assert_eq!(best.nodes(&arena), &[0, 1]);
        assert!((best.length - 1.0).abs() < 1e-12);
    }
}
