//! [`LcmsrEngine`]: end-to-end query execution.
//!
//! The engine binds a road network and an indexed object collection, turns an
//! [`LcmsrQuery`] into a scaled [`QueryGraph`] (keyword scoring via the grid
//! index and vector-space model, restriction to `Q.Λ`, weight scaling), runs
//! the requested algorithm, and converts the winning tuple back into a global
//! [`Region`].

use crate::app::{run_app, AppParams};
use crate::error::Result;
use crate::exact::ExactSolver;
use crate::greedy::{run_greedy, GreedyParams};
use crate::maxrs::{max_range_sum, MaxRsResult};
use crate::query::LcmsrQuery;
use crate::query_graph::QueryGraph;
use crate::region::Region;
use crate::stats::RunStats;
use crate::tgen::{run_tgen, TgenParams};
use crate::topk::{topk_app, topk_greedy, topk_tgen};
use lcmsr_geotext::collection::ObjectCollection;
use lcmsr_geotext::object::ObjectId;
use lcmsr_roadnet::graph::RoadNetwork;
use lcmsr_roadnet::node::NodeId;
use lcmsr_roadnet::subgraph::RegionView;
use lcmsr_roadnet::traversal::dijkstra;
use std::time::Instant;

/// Which LCMSR algorithm to run, with its parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum Algorithm {
    /// The (5+ε)-approximation algorithm of Section 4.
    App(AppParams),
    /// The tuple-generation heuristic of Section 5.
    Tgen(TgenParams),
    /// The greedy expansion of Section 6.1.
    Greedy(GreedyParams),
    /// Exhaustive enumeration (small query regions only).
    Exact,
}

impl Algorithm {
    /// Display name of the algorithm.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::App(_) => "APP",
            Algorithm::Tgen(_) => "TGEN",
            Algorithm::Greedy(_) => "Greedy",
            Algorithm::Exact => "Exact",
        }
    }

    /// The scaling parameter α the algorithm wants the query graph built with.
    fn alpha(&self) -> f64 {
        match self {
            Algorithm::App(p) => p.alpha,
            Algorithm::Tgen(p) => p.alpha,
            // Greedy and Exact work on the original weights; any valid α will do.
            Algorithm::Greedy(_) | Algorithm::Exact => 1.0,
        }
    }
}

/// Result of answering one LCMSR query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The best region found, or `None` when no object in `Q.Λ` matches the keywords.
    pub region: Option<Region>,
    /// Execution statistics.
    pub stats: RunStats,
}

/// Result of answering one top-k LCMSR query.
#[derive(Debug, Clone)]
pub struct TopKResult {
    /// The best regions found, ordered best-first.
    pub regions: Vec<Region>,
    /// Execution statistics.
    pub stats: RunStats,
}

/// Result of the MaxRS baseline plus the measures needed by the Section 7.5
/// comparison procedure.
#[derive(Debug, Clone)]
pub struct MaxRsRegion {
    /// The raw sweep result (centre, weight, covered object indices).
    pub result: MaxRsResult,
    /// Objects covered by the optimal rectangle.
    pub objects: Vec<ObjectId>,
    /// Road-network nodes hosting the covered objects.
    pub nodes: Vec<NodeId>,
    /// Total relevance weight of the covered objects.
    pub weight: f64,
    /// Minimum total road length connecting the covered objects' nodes inside
    /// `Q.Λ` (a shortest-path-metric spanning-tree length); used as the LCMSR
    /// `Q.∆` in the paper's comparison.  `None` when fewer than two nodes are
    /// covered or they are disconnected inside `Q.Λ`.
    pub connecting_length: Option<f64>,
    /// Whether the covered nodes are connected inside `Q.Λ` by road segments.
    pub connected_in_network: bool,
}

/// The LCMSR query-processing engine.
#[derive(Debug, Clone, Copy)]
pub struct LcmsrEngine<'a> {
    network: &'a RoadNetwork,
    collection: &'a ObjectCollection,
}

impl<'a> LcmsrEngine<'a> {
    /// Creates an engine over a network and its object collection.
    pub fn new(network: &'a RoadNetwork, collection: &'a ObjectCollection) -> Self {
        LcmsrEngine {
            network,
            collection,
        }
    }

    /// The underlying road network.
    pub fn network(&self) -> &'a RoadNetwork {
        self.network
    }

    /// The underlying object collection.
    pub fn collection(&self) -> &'a ObjectCollection {
        self.collection
    }

    /// Builds the scaled query graph for a query with the given α.
    pub fn prepare(&self, query: &LcmsrQuery, alpha: f64) -> Result<QueryGraph> {
        query.validate()?;
        let weights = self
            .collection
            .node_weights_for_keywords(&query.keywords, &query.region_of_interest);
        let view = RegionView::new(self.network, query.region_of_interest);
        QueryGraph::build(&view, &weights, query.delta, alpha)
    }

    /// Answers a query with the requested algorithm.
    pub fn run(&self, query: &LcmsrQuery, algorithm: &Algorithm) -> Result<QueryResult> {
        let start = Instant::now();
        let graph = self.prepare(query, algorithm.alpha())?;
        let mut stats = RunStats::new(algorithm.name());
        stats.nodes_in_region = graph.node_count();
        stats.edges_in_region = graph.edge_count();
        stats.relevant_nodes = graph.relevant_nodes().len();
        let best = match algorithm {
            Algorithm::App(params) => {
                let outcome = run_app(&graph, params)?;
                stats.kmst_calls = outcome.kmst_calls;
                stats.tuples_generated = outcome.dp_tuples;
                outcome.best
            }
            Algorithm::Tgen(params) => {
                let outcome = run_tgen(&graph, params)?;
                stats.tuples_generated = outcome.tuples_generated;
                outcome.best
            }
            Algorithm::Greedy(params) => {
                let outcome = run_greedy(&graph, params)?;
                stats.greedy_steps = outcome.steps;
                outcome.best
            }
            Algorithm::Exact => ExactSolver::new().solve(&graph)?,
        };
        stats.elapsed = start.elapsed();
        Ok(QueryResult {
            region: best.map(|t| Region::from_tuple(&graph, &t)),
            stats,
        })
    }

    /// Answers a top-k query with the requested algorithm (`Exact` falls back to k = 1).
    pub fn run_topk(
        &self,
        query: &LcmsrQuery,
        algorithm: &Algorithm,
        k: usize,
    ) -> Result<TopKResult> {
        let start = Instant::now();
        let graph = self.prepare(query, algorithm.alpha())?;
        let mut stats = RunStats::new(algorithm.name());
        stats.nodes_in_region = graph.node_count();
        stats.edges_in_region = graph.edge_count();
        stats.relevant_nodes = graph.relevant_nodes().len();
        let tuples = match algorithm {
            Algorithm::App(params) => topk_app(&graph, params, k)?,
            Algorithm::Tgen(params) => topk_tgen(&graph, params, k)?,
            Algorithm::Greedy(params) => topk_greedy(&graph, params, k)?,
            Algorithm::Exact => ExactSolver::new().solve(&graph)?.into_iter().collect(),
        };
        stats.elapsed = start.elapsed();
        Ok(TopKResult {
            regions: tuples
                .iter()
                .map(|t| Region::from_tuple(&graph, t))
                .collect(),
            stats,
        })
    }

    /// Runs the MaxRS baseline over the objects relevant to `query` inside
    /// `Q.Λ`, using a `width` × `height` rectangle (the paper uses 500 m × 500 m),
    /// and derives the measures needed by the Section 7.5 comparison.
    pub fn run_maxrs(
        &self,
        query: &LcmsrQuery,
        width: f64,
        height: f64,
    ) -> Result<Option<MaxRsRegion>> {
        query.validate()?;
        let weights = self
            .collection
            .node_weights_for_keywords(&query.keywords, &query.region_of_interest);
        if weights.by_object.is_empty() {
            return Ok(None);
        }
        // Weighted points of the relevant objects.
        let mut ids: Vec<ObjectId> = weights.by_object.keys().copied().collect();
        ids.sort_unstable();
        let points: Vec<(lcmsr_roadnet::geo::Point, f64)> = ids
            .iter()
            .map(|id| {
                let o = self.collection.object(*id).expect("scored object exists");
                (o.point, weights.by_object[id])
            })
            .collect();
        let Some(result) = max_range_sum(&points, width, height) else {
            return Ok(None);
        };
        let objects: Vec<ObjectId> = result.covered.iter().map(|&i| ids[i]).collect();
        let mut nodes: Vec<NodeId> = objects
            .iter()
            .filter_map(|&o| self.collection.node_of(o))
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        let weight: f64 = objects
            .iter()
            .map(|o| weights.by_object.get(o).copied().unwrap_or(0.0))
            .sum();
        let (connecting_length, connected) = self.connecting_length(query, &nodes);
        Ok(Some(MaxRsRegion {
            result,
            objects,
            nodes,
            weight,
            connecting_length,
            connected_in_network: connected,
        }))
    }

    /// Minimum road length connecting `nodes` inside `Q.Λ`: a spanning tree in
    /// the shortest-path metric (a standard 2-approximation of the Steiner tree).
    fn connecting_length(&self, query: &LcmsrQuery, nodes: &[NodeId]) -> (Option<f64>, bool) {
        if nodes.len() < 2 {
            return (if nodes.len() == 1 { Some(0.0) } else { None }, true);
        }
        let rect = query.region_of_interest;
        let inside = |n: NodeId| rect.contains(&self.network.point(n));
        // Shortest-path distances between all pairs of terminal nodes.
        let mut dist = vec![vec![f64::INFINITY; nodes.len()]; nodes.len()];
        for (i, &src) in nodes.iter().enumerate() {
            let sp = dijkstra(self.network, src, inside);
            for (j, &dst) in nodes.iter().enumerate() {
                if let Some(d) = sp.distance(dst) {
                    dist[i][j] = d;
                }
            }
        }
        // Prim's MST over the metric closure.
        let n = nodes.len();
        let mut in_tree = vec![false; n];
        let mut best = vec![f64::INFINITY; n];
        best[0] = 0.0;
        let mut total = 0.0;
        for _ in 0..n {
            let Some(v) = (0..n)
                .filter(|&v| !in_tree[v] && best[v].is_finite())
                .min_by(|&a, &b| best[a].partial_cmp(&best[b]).unwrap())
            else {
                return (None, false); // some terminal is unreachable inside Q.Λ
            };
            in_tree[v] = true;
            total += best[v];
            for u in 0..n {
                if !in_tree[u] && dist[v][u] < best[u] {
                    best[u] = dist[v][u];
                }
            }
        }
        (Some(total), true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmsr_geotext::object::GeoTextObject;
    use lcmsr_roadnet::builder::GraphBuilder;
    use lcmsr_roadnet::geo::{Point, Rect};

    /// A 6×6 grid network (100 m blocks) with a restaurant cluster in the
    /// south-west corner and a couple of isolated cafes elsewhere.
    fn small_world() -> (RoadNetwork, ObjectCollection) {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..6 {
            for x in 0..6 {
                ids.push(b.add_node(Point::new(x as f64 * 100.0, y as f64 * 100.0)));
            }
        }
        for y in 0..6 {
            for x in 0..6 {
                let i = y * 6 + x;
                if x < 5 {
                    b.add_edge(ids[i], ids[i + 1], 100.0).unwrap();
                }
                if y < 5 {
                    b.add_edge(ids[i], ids[i + 6], 100.0).unwrap();
                }
            }
        }
        let network = b.build().unwrap();
        let mut objects = Vec::new();
        let mut oid = 0u64;
        // Restaurant cluster near (0..200, 0..200).
        for &(x, y) in &[
            (10.0, 10.0),
            (110.0, 10.0),
            (10.0, 110.0),
            (110.0, 110.0),
            (210.0, 10.0),
        ] {
            objects.push(GeoTextObject::from_keywords(
                oid,
                Point::new(x, y),
                ["restaurant", "italian"],
            ));
            oid += 1;
        }
        // Scattered cafes.
        for &(x, y) in &[(410.0, 410.0), (510.0, 310.0)] {
            objects.push(GeoTextObject::from_keywords(
                oid,
                Point::new(x, y),
                ["cafe", "coffee"],
            ));
            oid += 1;
        }
        // A couple of noise objects.
        objects.push(GeoTextObject::from_keywords(
            oid,
            Point::new(300.0, 300.0),
            ["museum"],
        ));
        let collection = ObjectCollection::build(&network, objects, 200.0).unwrap();
        (network, collection)
    }

    fn whole_rect(network: &RoadNetwork) -> Rect {
        network.bounding_rect().unwrap().expanded(50.0)
    }

    #[test]
    fn all_algorithms_return_feasible_regions() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let query = LcmsrQuery::new(["restaurant"], 400.0, whole_rect(&network)).unwrap();
        for algorithm in [
            Algorithm::App(AppParams::default()),
            Algorithm::Tgen(TgenParams { alpha: 1.0 }),
            Algorithm::Greedy(GreedyParams::default()),
        ] {
            let result = engine.run(&query, &algorithm).unwrap();
            let region = result
                .region
                .unwrap_or_else(|| panic!("{} found no region", algorithm.name()));
            assert!(region.length <= 400.0 + 1e-9, "{}", algorithm.name());
            assert!(region.weight > 0.0);
            assert_eq!(result.stats.algorithm, algorithm.name());
            assert!(result.stats.nodes_in_region == 36);
        }
    }

    #[test]
    fn tgen_matches_exact_on_small_instance() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        // Restrict Q.Λ to the south-west corner so the exact solver can enumerate.
        let rect = Rect::new(-50.0, -50.0, 250.0, 250.0);
        let query = LcmsrQuery::new(["restaurant"], 300.0, rect).unwrap();
        let exact = engine
            .run(&query, &Algorithm::Exact)
            .unwrap()
            .region
            .unwrap();
        let tgen = engine
            .run(&query, &Algorithm::Tgen(TgenParams { alpha: 0.1 }))
            .unwrap()
            .region
            .unwrap();
        assert!((tgen.weight - exact.weight).abs() < 1e-9);
        assert!(tgen.length <= 300.0 + 1e-9);
    }

    #[test]
    fn irrelevant_keywords_yield_no_region() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let query = LcmsrQuery::new(["spaceship"], 400.0, whole_rect(&network)).unwrap();
        for algorithm in [
            Algorithm::App(AppParams::default()),
            Algorithm::Tgen(TgenParams::default()),
            Algorithm::Greedy(GreedyParams::default()),
            Algorithm::Exact,
        ] {
            let result = engine.run(&query, &algorithm).unwrap();
            assert!(result.region.is_none(), "{}", algorithm.name());
        }
    }

    #[test]
    fn restricting_the_region_of_interest_excludes_outside_objects() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        // Only the north-east part, where no restaurant lies.
        let rect = Rect::new(300.0, 300.0, 560.0, 560.0);
        let query = LcmsrQuery::new(["restaurant"], 400.0, rect).unwrap();
        let result = engine
            .run(&query, &Algorithm::Tgen(TgenParams { alpha: 1.0 }))
            .unwrap();
        assert!(result.region.is_none());
        // Cafes are there, though.
        let query = LcmsrQuery::new(["cafe"], 400.0, rect).unwrap();
        let result = engine
            .run(&query, &Algorithm::Tgen(TgenParams { alpha: 1.0 }))
            .unwrap();
        assert!(result.region.is_some());
    }

    #[test]
    fn topk_returns_ordered_regions() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let query = LcmsrQuery::new(["restaurant", "cafe"], 300.0, whole_rect(&network)).unwrap();
        for algorithm in [
            Algorithm::App(AppParams::default()),
            Algorithm::Tgen(TgenParams { alpha: 1.0 }),
            Algorithm::Greedy(GreedyParams::default()),
        ] {
            let result = engine.run_topk(&query, &algorithm, 3).unwrap();
            assert!(!result.regions.is_empty(), "{}", algorithm.name());
            assert!(result.regions.len() <= 3);
            for w in result.regions.windows(2) {
                assert!(w[0].weight >= w[1].weight - 1e-6, "{}", algorithm.name());
            }
            for r in &result.regions {
                assert!(r.length <= 300.0 + 1e-9);
            }
        }
    }

    #[test]
    fn maxrs_baseline_finds_the_restaurant_cluster() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let query = LcmsrQuery::new(["restaurant"], 400.0, whole_rect(&network)).unwrap();
        let maxrs = engine.run_maxrs(&query, 250.0, 250.0).unwrap().unwrap();
        assert!(maxrs.objects.len() >= 4, "covered {:?}", maxrs.objects);
        assert!(maxrs.weight > 0.0);
        assert!(maxrs.connecting_length.is_some());
        assert!(maxrs.connected_in_network);
        // No relevant object → None.
        let query = LcmsrQuery::new(["spaceship"], 400.0, whole_rect(&network)).unwrap();
        assert!(engine.run_maxrs(&query, 250.0, 250.0).unwrap().is_none());
    }

    #[test]
    fn lcmsr_beats_or_matches_maxrs_under_the_section_75_procedure() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let query = LcmsrQuery::new(["restaurant"], 400.0, whole_rect(&network)).unwrap();
        let maxrs = engine.run_maxrs(&query, 250.0, 250.0).unwrap().unwrap();
        let delta = maxrs.connecting_length.unwrap().max(100.0);
        let lcmsr_query = LcmsrQuery::new(["restaurant"], delta, whole_rect(&network)).unwrap();
        let lcmsr = engine
            .run(&lcmsr_query, &Algorithm::Tgen(TgenParams { alpha: 0.5 }))
            .unwrap()
            .region
            .unwrap();
        // Under the same connectivity budget the network-aware region should
        // gather at least as much weight as the rectangle's connected content.
        assert!(lcmsr.weight + 1e-9 >= maxrs.weight * 0.9);
    }
}
