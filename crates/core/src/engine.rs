//! [`LcmsrEngine`]: end-to-end query execution.
//!
//! The engine binds a road network and an indexed object collection, turns an
//! [`LcmsrQuery`] into a scaled [`QueryGraph`] (keyword scoring via the grid
//! index and vector-space model, restriction to `Q.Λ`, weight scaling), runs
//! the requested algorithm, and converts the winning tuple back into a global
//! [`Region`].
//!
//! Requests are described by a [`QueryRequest`] — query, algorithm, and
//! [`QueryOptions`] (top-k, deadline, priority, parameter overrides) — and
//! answered by [`LcmsrEngine::execute`].  A request with a
//! [`crate::cancel::Deadline`] runs as an *anytime query*: the solvers poll a
//! cooperative [`crate::cancel::CancelToken`] at their loop boundaries and,
//! on expiry, return the best feasible region found so far with
//! `partial: true` in [`RunStats`] instead of running to completion.
//!
//! Interactive exploration produces many successive queries over the same
//! network, so the engine supports **batched concurrent execution**:
//! [`LcmsrEngine::execute_batch`] fans a slice of requests out over scoped
//! worker threads, each owning a [`QueryWorkspace`] whose scratch buffers
//! (region extraction, keyword scoring, CSR query-graph construction) are
//! recycled from query to query, so steady-state per-query preparation
//! allocates near-zero.  Results come back in input order and are identical
//! to what sequential [`LcmsrEngine::execute`] calls produce.

use crate::app::{run_app, AppParams};
use crate::arena::TupleArena;
use crate::cache::{CacheLookup, ResponseCache};
use crate::cancel::{CancelToken, Deadline};
use crate::error::Result;
use crate::exact::ExactSolver;
use crate::greedy::{run_greedy, GreedyParams};
use crate::maxrs::{max_range_sum, MaxRsResult};
use crate::query::LcmsrQuery;
use crate::query_graph::{QueryGraph, QueryGraphBuilder};
use crate::region::{Region, RegionTuple};
use crate::stats::{PartialCause, RunStats};
use crate::tgen::{run_tgen, TgenParams};
use crate::topk::{topk_app, topk_greedy, topk_tgen};
use crate::trace::{QueryTrace, TraceCollector};
use lcmsr_geotext::collection::{NodeWeights, ObjectCollection};
use lcmsr_geotext::object::ObjectId;
use lcmsr_roadnet::geo::Rect;
use lcmsr_roadnet::graph::RoadNetwork;
use lcmsr_roadnet::node::NodeId;
use lcmsr_roadnet::subgraph::{RegionScratch, RegionView};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Mutex;
use std::time::Duration;

/// Which LCMSR algorithm to run, with its parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum Algorithm {
    /// The (5+ε)-approximation algorithm of Section 4.
    App(AppParams),
    /// The tuple-generation heuristic of Section 5.
    Tgen(TgenParams),
    /// The greedy expansion of Section 6.1.
    Greedy(GreedyParams),
    /// Exhaustive enumeration (small query regions only).
    Exact,
}

impl Algorithm {
    /// Display name of the algorithm.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::App(_) => "APP",
            Algorithm::Tgen(_) => "TGEN",
            Algorithm::Greedy(_) => "Greedy",
            Algorithm::Exact => "Exact",
        }
    }

    /// The scaling parameter α the algorithm wants the query graph built with.
    fn alpha(&self) -> f64 {
        match self {
            Algorithm::App(p) => p.alpha,
            Algorithm::Tgen(p) => p.alpha,
            // Greedy works on the original weights; any valid α will do.
            Algorithm::Greedy(_) => 1.0,
            // Exact's top-k path ranks by the shared quality order, whose
            // primary key is the scaled weight.  A very fine θ (= α·σ_max/|V_Q|)
            // keeps that order faithful to the true weights — with α = 1.0 the
            // floor quantisation could rank a lighter region above the true
            // optimum (e.g. weights {0.3} vs {0.16, 0.16} under θ = 0.1).
            Algorithm::Exact => 1e-6,
        }
    }
}

/// Scheduling priority of a request.  The engine itself treats priorities
/// identically; serving front-ends (the `lcmsr_service` scheduler) use them
/// to pick queue lanes — interactive requests preempt batch ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// A user is waiting on the answer; served first.
    #[default]
    Interactive,
    /// Throughput work; served when no interactive request is queued.
    Batch,
}

impl Priority {
    /// The stable wire/display spelling ("interactive" / "batch").
    pub fn as_str(&self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }

    /// Parses the wire spelling back into a priority.
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "interactive" => Some(Priority::Interactive),
            "batch" => Some(Priority::Batch),
            _ => None,
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-request execution options carried by a [`QueryRequest`].
///
/// The `Default` options reproduce the classic single-region run exactly: no
/// top-k, no deadline, no overrides — and, crucially, no armed cancellation
/// token, so the solve path is bit-identical to one without anytime support.
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// `Some(k)` answers the request as a top-k query (up to `k` best
    /// distinct regions); `None` returns the single best region.
    pub k: Option<usize>,
    /// Wall-clock budget for the whole request.  When it expires mid-solve
    /// the engine returns the best feasible region found so far and marks the
    /// stats `partial: true` with a `deadline_exceeded` cause.
    pub deadline: Option<Deadline>,
    /// External cancellation hook, polled by the solvers exactly like a
    /// deadline.  When set it replaces the token the deadline would have
    /// produced, so a caller combining both should arm this token with the
    /// deadline instant itself ([`CancelToken::with_deadline`]).
    pub cancel: Option<CancelToken>,
    /// Scheduling priority (engine-neutral; see [`Priority`]).
    pub priority: Priority,
    /// Overrides the algorithm's scaling parameter α (APP, TGEN).
    pub alpha: Option<f64>,
    /// Overrides APP's binary-search parameter β.
    pub beta: Option<f64>,
    /// Overrides Greedy's expansion parameter µ.
    pub mu: Option<f64>,
    /// Records a structured span trace of the run.  `false` (the default)
    /// keeps the collector inert — solver hot loops see one predicted branch,
    /// exactly like an unarmed [`CancelToken`] — and the outcome carries no
    /// trace.  `true` fills [`QueryOutcome::trace`] with the span tree.
    pub trace: bool,
    /// Runs the request in cache mode: the engine consults its response
    /// cache before solving, stores complete results afterwards, and lets
    /// successive overlapping requests on the same workspace delta-prepare
    /// from the previous keyword scores.  `false` (the default) keeps the
    /// classic paths bit-identical to a cacheless engine.  Either way the
    /// response is bit-identical to a cold run; serving front-ends default
    /// this on for interactive-lane traffic.
    pub cache: bool,
}

impl QueryOptions {
    /// The token the solvers should poll for this request.
    fn solve_token(&self) -> CancelToken {
        if let Some(token) = &self.cancel {
            return token.clone();
        }
        self.deadline.map_or_else(CancelToken::none, |d| d.token())
    }
}

/// A self-describing query request: the query, the algorithm, and the
/// execution options — one surface replacing the grown positional-argument
/// family (`run`/`run_with`/`run_topk`/`run_topk_with`/`run_batch`/…).
///
/// ```ignore
/// let request = QueryRequest::new(&query, Algorithm::Exact)
///     .top_k(3)
///     .deadline_in(Duration::from_millis(50))
///     .priority(Priority::Batch);
/// let outcome = engine.execute(&request)?;
/// ```
#[derive(Debug, Clone)]
pub struct QueryRequest<'q> {
    /// The LCMSR query to answer.
    pub query: &'q LcmsrQuery,
    /// The algorithm with its base parameters ([`QueryOptions`] overrides
    /// apply on top).
    pub algorithm: Algorithm,
    /// Execution options.
    pub options: QueryOptions,
}

impl<'q> QueryRequest<'q> {
    /// A request with default options: single best region, no deadline.
    pub fn new(query: &'q LcmsrQuery, algorithm: Algorithm) -> Self {
        QueryRequest {
            query,
            algorithm,
            options: QueryOptions::default(),
        }
    }

    /// A request with explicit options (the non-builder construction path,
    /// used when options arrive already assembled, e.g. off the wire).
    pub fn with_options(
        query: &'q LcmsrQuery,
        algorithm: Algorithm,
        options: QueryOptions,
    ) -> Self {
        QueryRequest {
            query,
            algorithm,
            options,
        }
    }

    /// Answers as a top-k query returning up to `k` distinct regions.
    pub fn top_k(mut self, k: usize) -> Self {
        self.options.k = Some(k);
        self
    }

    /// Runs under `deadline` (stamped where the request entered the system).
    pub fn deadline(mut self, deadline: Deadline) -> Self {
        self.options.deadline = Some(deadline);
        self
    }

    /// Runs under a deadline `budget` from now.
    pub fn deadline_in(mut self, budget: Duration) -> Self {
        self.options.deadline = Some(Deadline::after(budget));
        self
    }

    /// Polls `token` instead of a deadline-derived one (see
    /// [`QueryOptions::cancel`]).
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.options.cancel = Some(token);
        self
    }

    /// Sets the scheduling priority.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.options.priority = priority;
        self
    }

    /// Overrides the algorithm's α.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.options.alpha = Some(alpha);
        self
    }

    /// Overrides APP's β.
    pub fn beta(mut self, beta: f64) -> Self {
        self.options.beta = Some(beta);
        self
    }

    /// Overrides Greedy's µ.
    pub fn mu(mut self, mu: f64) -> Self {
        self.options.mu = Some(mu);
        self
    }

    /// Enables (or disables) structured span tracing for this request (see
    /// [`QueryOptions::trace`]).
    pub fn trace(mut self, trace: bool) -> Self {
        self.options.trace = trace;
        self
    }

    /// Enables (or disables) cache mode for this request (see
    /// [`QueryOptions::cache`]).
    pub fn cache(mut self, cache: bool) -> Self {
        self.options.cache = cache;
        self
    }

    /// The algorithm with the option overrides folded in.
    pub(crate) fn effective_algorithm(&self) -> Algorithm {
        let mut algorithm = self.algorithm.clone();
        match &mut algorithm {
            Algorithm::App(p) => {
                if let Some(alpha) = self.options.alpha {
                    p.alpha = alpha;
                }
                if let Some(beta) = self.options.beta {
                    p.beta = beta;
                }
            }
            Algorithm::Tgen(p) => {
                if let Some(alpha) = self.options.alpha {
                    p.alpha = alpha;
                }
            }
            Algorithm::Greedy(p) => {
                if let Some(mu) = self.options.mu {
                    p.mu = mu;
                }
            }
            Algorithm::Exact => {}
        }
        algorithm
    }
}

/// Result of [`LcmsrEngine::execute`]: the best regions found (at most one
/// for a single-region request, up to `k` for top-k), best first, plus the
/// run statistics.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Best-first feasible regions; empty when no object matches.
    pub regions: Vec<Region>,
    /// Execution statistics, including the partial/deadline marks.
    pub stats: RunStats,
    /// The structured span trace of the run; `Some` only when the request
    /// asked for one ([`QueryOptions::trace`]).
    pub trace: Option<QueryTrace>,
}

impl QueryOutcome {
    /// The best region, if any.
    pub fn best(&self) -> Option<&Region> {
        self.regions.first()
    }

    /// Whether the run stopped early and `regions` holds best-so-far
    /// incumbents (see [`RunStats::partial`]).
    pub fn is_partial(&self) -> bool {
        self.stats.partial
    }

    /// Converts into the legacy single-region result shape.
    pub fn into_single(self) -> QueryResult {
        QueryResult {
            region: self.regions.into_iter().next(),
            stats: self.stats,
            trace: self.trace,
        }
    }

    /// Converts into the legacy top-k result shape.
    pub fn into_topk(self) -> TopKResult {
        TopKResult {
            regions: self.regions,
            stats: self.stats,
            trace: self.trace,
        }
    }
}

/// Result of answering one LCMSR query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The best region found, or `None` when no object in `Q.Λ` matches the keywords.
    pub region: Option<Region>,
    /// Execution statistics.
    pub stats: RunStats,
    /// Structured span trace, when the request asked for one.
    pub trace: Option<QueryTrace>,
}

/// Result of answering one top-k LCMSR query.
#[derive(Debug, Clone)]
pub struct TopKResult {
    /// The best regions found, ordered best-first.
    pub regions: Vec<Region>,
    /// Execution statistics.
    pub stats: RunStats,
    /// Structured span trace, when the request asked for one.
    pub trace: Option<QueryTrace>,
}

/// Result of the MaxRS baseline plus the measures needed by the Section 7.5
/// comparison procedure.
#[derive(Debug, Clone)]
pub struct MaxRsRegion {
    /// The raw sweep result (centre, weight, covered object indices).
    pub result: MaxRsResult,
    /// Objects covered by the optimal rectangle.
    pub objects: Vec<ObjectId>,
    /// Road-network nodes hosting the covered objects.
    pub nodes: Vec<NodeId>,
    /// Total relevance weight of the covered objects.
    pub weight: f64,
    /// Minimum total road length connecting the covered objects' nodes inside
    /// `Q.Λ` (a shortest-path-metric spanning-tree length); used as the LCMSR
    /// `Q.∆` in the paper's comparison.  `None` when fewer than two nodes are
    /// covered or they are disconnected inside `Q.Λ`.
    pub connecting_length: Option<f64>,
    /// Whether the covered nodes are connected inside `Q.Λ` by road segments.
    pub connected_in_network: bool,
}

/// Default worker count for batched execution: the available hardware
/// parallelism (1 when it cannot be determined).
fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Per-worker reusable state for answering a stream of queries.
///
/// Holds the scratch buffers of every preparation stage — `Q.Λ` extraction
/// ([`RegionScratch`]), keyword scoring ([`NodeWeights`]) and query-graph
/// construction ([`QueryGraphBuilder`]) — plus the solve phase's
/// [`TupleArena`], so repeated [`LcmsrEngine::run_with`] calls over the same
/// network allocate near-zero.  Each worker thread of
/// [`LcmsrEngine::run_batch`] owns one workspace; one-shot `run`/`run_topk`
/// calls check workspaces out of the engine's [`WorkspacePool`].
#[derive(Debug, Clone, Default)]
pub struct QueryWorkspace {
    builder: QueryGraphBuilder,
    region: RegionScratch,
    weights: NodeWeights,
    arena: TupleArena,
    /// Scratch retained between cache-mode prepares on this workspace: the
    /// previous query's identity plus its keyword scores, enabling
    /// delta-prepare when the next rectangle mostly overlaps this one.
    /// `None` until a cache-mode request runs; ignored by the classic paths.
    session: Option<SessionState>,
    /// Timing split of the most recent `prepare_with` call on this workspace.
    prepare_breakdown: PrepareBreakdown,
    /// Per-query span collector, re-armed (or left inert) by `execute_with`
    /// from [`QueryOptions::trace`].  Pooled with the workspace so an enabled
    /// run reuses the span buffers grown by earlier traced queries.
    tracer: TraceCollector,
}

/// Component timings of one prepare phase, copied into
/// [`RunStats::grid_score_time`] / [`RunStats::graph_build_time`] by the
/// execute paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrepareBreakdown {
    /// Keyword scoring against the grid index.
    pub grid_score_time: Duration,
    /// `Q.Λ` extraction plus scaled query-graph construction.
    pub graph_build_time: Duration,
    /// Whether the scoring component was delta-built from the workspace's
    /// session scratch instead of rescanning the whole region of interest.
    pub delta_prepare: bool,
    /// Grid cells rescanned by a delta prepare (0 on cold prepares).
    pub rescanned_cells: usize,
}

/// The previous cache-mode query answered on a workspace: everything needed
/// to decide delta-eligibility of the next one, plus the keyword scores it
/// would reuse.  The scores depend only on `(epoch, keywords)` per object —
/// the rectangle merely filters them — so survivors of a pan are reused
/// verbatim and stay bit-identical to a cold rescore.
#[derive(Debug, Clone)]
struct SessionState {
    epoch: u64,
    keywords: Vec<String>,
    rect: Rect,
    weights: NodeWeights,
}

/// Minimum `area(old ∩ new) / area(new)` for a session re-query to
/// delta-prepare from the previous scratch instead of rescoring `Q.Λ` cold.
/// Below this, a cold rescan touches few enough shared cells that the delta
/// bookkeeping stops paying for itself.
pub const SESSION_OVERLAP_THRESHOLD: f64 = 0.5;

/// Fraction of `new`'s area covered by `old` (0 when disjoint).
fn session_overlap(old: &Rect, new: &Rect) -> f64 {
    old.intersection(new).map_or(0.0, |i| i.area()) / new.area()
}

impl QueryWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The workspace's tuple arena (diagnostics/benchmarks).
    pub fn arena(&self) -> &TupleArena {
        &self.arena
    }

    /// Timing split of the most recent prepare phase run on this workspace.
    pub fn prepare_breakdown(&self) -> PrepareBreakdown {
        self.prepare_breakdown
    }

    /// Size of the region scratch's membership table after the last prepare —
    /// proportional to the touched node-id band, not the network
    /// (diagnostics/benchmarks).
    pub fn member_table_len(&self) -> usize {
        self.region.member_table_len()
    }
}

/// A lock-guarded stack of idle [`QueryWorkspace`]s owned by the engine.
///
/// `run`/`run_topk` and every batch worker check a workspace out and return
/// it afterwards, so successive calls — including successive `run_batch`
/// invocations — reuse the grown scratch buffers, query-graph pools and tuple
/// arenas instead of rebuilding them per call.
///
/// Idle growth is capped at [`WorkspacePool::max_idle`] workspaces (default:
/// the available hardware parallelism): a burst of concurrent one-shot calls
/// can momentarily check out more workspaces than that, but `recycle` drops
/// the excess instead of pinning their grown buffers forever.  Anything above
/// the cap could never be handed out concurrently again without the same
/// burst recurring, so the cap trades a re-warm on the next burst for a
/// bounded steady-state footprint.
#[derive(Debug)]
pub struct WorkspacePool {
    idle: Mutex<Vec<QueryWorkspace>>,
    max_idle: AtomicUsize,
}

impl Default for WorkspacePool {
    fn default() -> Self {
        WorkspacePool {
            idle: Mutex::new(Vec::new()),
            max_idle: AtomicUsize::new(default_workers()),
        }
    }
}

impl WorkspacePool {
    /// Creates an empty pool with `max_idle` = available parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty pool keeping at most `max_idle` idle workspaces.
    pub fn with_max_idle(max_idle: usize) -> Self {
        WorkspacePool {
            idle: Mutex::new(Vec::new()),
            max_idle: AtomicUsize::new(max_idle),
        }
    }

    /// Takes an idle workspace, or creates a fresh one when none is pooled.
    pub fn checkout(&self) -> QueryWorkspace {
        self.idle
            .lock()
            .expect("workspace pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Returns a workspace to the pool for the next checkout, unless the pool
    /// already holds [`WorkspacePool::max_idle`] idle workspaces — then the
    /// workspace (and its grown buffers) is dropped instead.
    pub fn recycle(&self, workspace: QueryWorkspace) {
        let mut idle = self.idle.lock().expect("workspace pool poisoned");
        if idle.len() < self.max_idle.load(AtomicOrdering::Relaxed) {
            idle.push(workspace);
        }
    }

    /// Number of idle pooled workspaces (diagnostics/tests).
    pub fn idle_count(&self) -> usize {
        self.idle.lock().expect("workspace pool poisoned").len()
    }

    /// The cap on idle pooled workspaces.
    pub fn max_idle(&self) -> usize {
        self.max_idle.load(AtomicOrdering::Relaxed)
    }

    /// Changes the idle cap (a shared-reference operation, so a serving
    /// front-end can tune a live engine's pool).  Workspaces already pooled
    /// above a lowered cap are dropped immediately.
    pub fn set_max_idle(&self, max_idle: usize) {
        self.max_idle.store(max_idle, AtomicOrdering::Relaxed);
        let mut idle = self.idle.lock().expect("workspace pool poisoned");
        idle.truncate(max_idle);
    }

    /// Raises the idle cap to at least `workers`.  The batch paths call this
    /// with their explicit worker count: a caller asking for N concurrent
    /// workers wants N workspaces reused across batches, and without this a
    /// cap below N would silently drop (and re-warm) the excess every batch.
    pub fn ensure_max_idle(&self, workers: usize) {
        self.max_idle.fetch_max(workers, AtomicOrdering::Relaxed);
    }
}

/// The LCMSR query-processing engine.
///
/// The engine is `Send + Sync`: one instance can be shared across threads
/// (`Arc<LcmsrEngine>`, `&'static LcmsrEngine`, or scoped borrows) by a
/// serving front-end whose scheduler and handler threads run queries
/// concurrently.  All interior mutability is confined to the
/// [`WorkspacePool`]'s mutex and the network/collection indexes' atomics;
/// the network and collection themselves are only read.  A compile-time
/// audit lives in this module's tests (`engine_is_send_and_sync`).
#[derive(Debug)]
pub struct LcmsrEngine<'a> {
    network: &'a RoadNetwork,
    collection: &'a ObjectCollection,
    pool: WorkspacePool,
    /// Threads the prepare phase may fan grid scoring and `Q.Λ` extraction
    /// out across.  1 = fully sequential; any value yields bit-identical
    /// results (sharded scoring and banded gathering merge deterministically).
    prepare_workers: AtomicUsize,
    /// Completed responses keyed by canonical request fingerprints, consulted
    /// by cache-mode requests ([`QueryOptions::cache`]).
    cache: ResponseCache,
    /// The dataset epoch stamped into cache fingerprints.  Bumping it
    /// ([`LcmsrEngine::bump_dataset_epoch`]) marks every cached response and
    /// session scratch stale.
    epoch: AtomicU64,
}

impl<'a> LcmsrEngine<'a> {
    /// Creates an engine over a network and its object collection.
    pub fn new(network: &'a RoadNetwork, collection: &'a ObjectCollection) -> Self {
        LcmsrEngine {
            network,
            collection,
            pool: WorkspacePool::new(),
            prepare_workers: AtomicUsize::new(1),
            cache: ResponseCache::new(),
            epoch: AtomicU64::new(0),
        }
    }

    /// The engine's response cache (counters, bounds, diagnostics).
    pub fn response_cache(&self) -> &ResponseCache {
        &self.cache
    }

    /// The current dataset epoch stamped into cache fingerprints.
    pub fn dataset_epoch(&self) -> u64 {
        self.epoch.load(AtomicOrdering::Relaxed)
    }

    /// Declares the underlying dataset changed: bumps the epoch so every
    /// cached response and per-workspace session scratch becomes stale (lazy
    /// invalidation — entries are evicted as they are next looked up).
    /// Returns the new epoch.
    pub fn bump_dataset_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, AtomicOrdering::Relaxed) + 1
    }

    /// Replaces the response cache's bounds (builder style) — for embedders
    /// sizing the cache to their session fan-out, and for tests driving the
    /// eviction path without hundreds of fill queries.
    pub fn with_cache_limits(mut self, max_entries: usize, max_bytes: usize) -> Self {
        self.cache = ResponseCache::with_limits(max_entries, max_bytes);
        self
    }

    /// Sets the prepare-phase worker count (builder style).
    pub fn with_prepare_workers(self, workers: usize) -> Self {
        self.set_prepare_workers(workers);
        self
    }

    /// Sets the number of threads the prepare phase fans out across.  The
    /// output of every query is bit-identical for any value; this only trades
    /// latency for cores.  Clamped to at least 1.
    pub fn set_prepare_workers(&self, workers: usize) {
        self.prepare_workers
            .store(workers.max(1), AtomicOrdering::Relaxed);
    }

    /// The configured prepare-phase worker count.
    pub fn prepare_workers(&self) -> usize {
        self.prepare_workers.load(AtomicOrdering::Relaxed)
    }

    /// The engine's workspace pool (diagnostics/tests).
    pub fn workspace_pool(&self) -> &WorkspacePool {
        &self.pool
    }

    /// The underlying road network.
    pub fn network(&self) -> &'a RoadNetwork {
        self.network
    }

    /// The underlying object collection.
    pub fn collection(&self) -> &'a ObjectCollection {
        self.collection
    }

    /// Builds the scaled query graph for a query with the given α.
    pub fn prepare(&self, query: &LcmsrQuery, alpha: f64) -> Result<QueryGraph> {
        let mut workspace = self.pool.checkout();
        let result = self.prepare_with(&mut workspace, query, alpha);
        self.pool.recycle(workspace);
        result
    }

    /// Like [`LcmsrEngine::prepare`], but reuses the scratch buffers of a
    /// caller-owned [`QueryWorkspace`].  Return the graph to the workspace
    /// with [`LcmsrEngine::release`] once the algorithm is done with it.
    pub fn prepare_with(
        &self,
        workspace: &mut QueryWorkspace,
        query: &LcmsrQuery,
        alpha: f64,
    ) -> Result<QueryGraph> {
        self.prepare_session(workspace, query, alpha, false)
    }

    /// The prepare phase shared by the classic and cache-mode paths.  With
    /// `session` set, the workspace remembers this query's keyword scores;
    /// the next session prepare with the same epoch and keywords whose
    /// rectangle overlaps this one by at least [`SESSION_OVERLAP_THRESHOLD`]
    /// delta-builds from them — reusing the surviving per-object scores and
    /// rescanning only the grid cells the old rectangle did not fully cover —
    /// instead of rescoring `Q.Λ` from scratch.  Either way the produced
    /// graph is bit-identical to a cold prepare.
    fn prepare_session(
        &self,
        workspace: &mut QueryWorkspace,
        query: &LcmsrQuery,
        alpha: f64,
        session: bool,
    ) -> Result<QueryGraph> {
        query.validate()?;
        let workers = self.prepare_workers();
        let epoch = self.dataset_epoch();
        let prepare_span = workspace.tracer.start("prepare");
        let delta_session = if session {
            workspace.session.as_ref().filter(|s| {
                s.epoch == epoch
                    && s.keywords == query.keywords
                    && session_overlap(&s.rect, &query.region_of_interest)
                        >= SESSION_OVERLAP_THRESHOLD
            })
        } else {
            None
        };
        let delta_prepare = delta_session.is_some();
        let score_span = workspace.tracer.start(if delta_prepare {
            "delta_prepare"
        } else {
            "grid_score"
        });
        let score_start = crate::cancel::now();
        let q = self.collection.query_vector(&query.keywords);
        let rescanned_cells = if let Some(sess) = delta_session {
            self.collection.node_weights_delta_into(
                &q,
                &sess.rect,
                &query.region_of_interest,
                &sess.weights,
                &mut workspace.weights,
            )
        } else {
            self.collection.node_weights_into_with_workers(
                &q,
                &query.region_of_interest,
                &mut workspace.weights,
                workers,
            );
            0
        };
        let grid_score_time = score_start.elapsed();
        workspace.tracer.end(score_span);
        if session {
            workspace.session = Some(SessionState {
                epoch,
                keywords: query.keywords.clone(),
                rect: query.region_of_interest,
                weights: workspace.weights.clone(),
            });
        }
        let build_span = workspace.tracer.start("graph_build");
        let build_start = crate::cancel::now();
        let view = RegionView::new_reusing_with_workers(
            self.network,
            query.region_of_interest,
            &mut workspace.region,
            workers,
        );
        let graph = workspace
            .builder
            .build(&view, &workspace.weights, query.delta, alpha);
        view.recycle(&mut workspace.region);
        workspace.prepare_breakdown = PrepareBreakdown {
            grid_score_time,
            graph_build_time: build_start.elapsed(),
            delta_prepare,
            rescanned_cells,
        };
        workspace.tracer.end(build_span);
        if let Ok(g) = &graph {
            workspace.tracer.end_with(
                prepare_span,
                &[
                    ("nodes", g.node_count() as u64),
                    ("edges", g.edge_count() as u64),
                ],
            );
        } else {
            workspace.tracer.end(prepare_span);
        }
        graph
    }

    /// Returns a spent query graph's allocations to `workspace` so the next
    /// [`LcmsrEngine::prepare_with`] call can reuse them.
    pub fn release(&self, workspace: &mut QueryWorkspace, graph: QueryGraph) {
        workspace.builder.recycle(graph);
    }

    /// Answers a [`QueryRequest`], using a pooled workspace (successive calls
    /// on the same engine reuse scratch buffers and arenas).
    pub fn execute(&self, request: &QueryRequest<'_>) -> Result<QueryOutcome> {
        let mut workspace = self.pool.checkout();
        let result = self.execute_with(&mut workspace, request);
        self.pool.recycle(workspace);
        result
    }

    /// Like [`LcmsrEngine::execute`], but reuses a caller-owned workspace —
    /// the building block of [`LcmsrEngine::execute_batch`], also useful on
    /// its own for a sequential stream of requests.
    pub fn execute_with(
        &self,
        workspace: &mut QueryWorkspace,
        request: &QueryRequest<'_>,
    ) -> Result<QueryOutcome> {
        let start = crate::cancel::now();
        let algorithm = request.effective_algorithm();
        let options = &request.options;
        let ctl = options.solve_token();
        workspace.tracer.begin(options.trace);
        let query_span = workspace.tracer.start("query");
        let mut cache_key = None;
        let mut cache_stale = false;
        if options.cache {
            request.query.validate()?;
            let epoch = self.dataset_epoch();
            let lookup_span = workspace.tracer.start("cache_lookup");
            let key = crate::cache::request_key(request);
            let lookup = self.cache.lookup(&key, epoch);
            workspace.tracer.end(lookup_span);
            match lookup {
                CacheLookup::Hit(regions, stats) => {
                    let mut stats = *stats;
                    // The regions are clones of the cold run's — bit-identical
                    // by construction.  The stats keep the cold run's
                    // structural fields but report this run's (near-zero)
                    // timings and deadline.
                    stats.prepare_time = Duration::ZERO;
                    stats.grid_score_time = Duration::ZERO;
                    stats.graph_build_time = Duration::ZERO;
                    stats.solve_time = Duration::ZERO;
                    stats.queue_time = Duration::ZERO;
                    stats.deadline = options.deadline.map(|d| d.budget());
                    stats.cache = true;
                    stats.cache_hit = true;
                    stats.cache_stale = false;
                    stats.delta_prepare = false;
                    workspace.tracer.end(query_span);
                    let trace = workspace.tracer.finish();
                    stats.elapsed = start.elapsed();
                    return Ok(QueryOutcome {
                        regions,
                        stats,
                        trace,
                    });
                }
                CacheLookup::Stale => cache_stale = true,
                CacheLookup::Miss => {}
            }
            cache_key = Some((key, epoch));
        }
        let graph =
            self.prepare_session(workspace, request.query, algorithm.alpha(), options.cache)?;
        let prepare_time = start.elapsed();
        let mut stats = RunStats::new(algorithm.name());
        stats.prepare_time = prepare_time;
        stats.grid_score_time = workspace.prepare_breakdown.grid_score_time;
        stats.graph_build_time = workspace.prepare_breakdown.graph_build_time;
        stats.cache = options.cache;
        stats.cache_stale = cache_stale;
        stats.delta_prepare = workspace.prepare_breakdown.delta_prepare;
        stats.deadline = options.deadline.map(|d| d.budget());
        stats.nodes_in_region = graph.node_count();
        stats.edges_in_region = graph.edge_count();
        stats.relevant_nodes = graph.relevant_nodes().len();
        let solve_start = crate::cancel::now();
        // Epoch-clear the arena: every handle from the previous query dies
        // here, while the slab's capacity carries over.
        workspace.arena.reset();
        let solve_span = workspace.tracer.start("solve");
        let arena = &mut workspace.arena;
        let tracer = &mut workspace.tracer;
        let mut interrupted = false;
        let solved: Result<Vec<RegionTuple>> = (|| match (&algorithm, options.k) {
            (Algorithm::App(params), None) => {
                let outcome = run_app(&graph, arena, params, &ctl, tracer)?;
                stats.kmst_calls = outcome.kmst_calls;
                stats.tuples_generated = outcome.dp_tuples;
                stats.pruned_pairs = outcome.dp_pruned_pairs;
                stats.frontier_tuples = outcome.frontier_tuples;
                stats.frontier_peak = outcome.frontier_peak;
                stats.dominance_evictions = outcome.dominance_evictions;
                interrupted = outcome.interrupted;
                Ok(outcome.best.into_iter().collect())
            }
            (Algorithm::Tgen(params), None) => {
                let outcome = run_tgen(&graph, arena, params, &ctl, tracer)?;
                stats.tuples_generated = outcome.tuples_generated;
                stats.pruned_pairs = outcome.pruned_pairs;
                stats.frontier_tuples = outcome.frontier_tuples;
                stats.frontier_peak = outcome.frontier_peak;
                stats.dominance_evictions = outcome.dominance_evictions;
                interrupted = outcome.interrupted;
                Ok(outcome.best.into_iter().collect())
            }
            (Algorithm::Greedy(params), None) => {
                let outcome = run_greedy(&graph, arena, params, &ctl, tracer)?;
                stats.greedy_steps = outcome.steps;
                interrupted = outcome.interrupted;
                Ok(outcome.best.into_iter().collect())
            }
            (Algorithm::Exact, None) => {
                let outcome = ExactSolver::new().solve(&graph, arena, &ctl, tracer)?;
                interrupted = outcome.interrupted;
                Ok(outcome.best.into_iter().collect())
            }
            (Algorithm::App(params), Some(k)) => {
                let outcome = topk_app(&graph, arena, params, k, &ctl, tracer)?;
                stats.kmst_calls = outcome.kmst_calls;
                stats.tuples_generated = outcome.tuples_generated;
                stats.pruned_pairs = outcome.pruned_pairs;
                stats.frontier_tuples = outcome.frontier_tuples;
                stats.frontier_peak = outcome.frontier_peak;
                stats.dominance_evictions = outcome.dominance_evictions;
                interrupted = outcome.interrupted;
                Ok(outcome.tuples)
            }
            (Algorithm::Tgen(params), Some(k)) => {
                let outcome = topk_tgen(&graph, arena, params, k, &ctl, tracer)?;
                stats.tuples_generated = outcome.tuples_generated;
                stats.pruned_pairs = outcome.pruned_pairs;
                stats.frontier_tuples = outcome.frontier_tuples;
                stats.frontier_peak = outcome.frontier_peak;
                stats.dominance_evictions = outcome.dominance_evictions;
                interrupted = outcome.interrupted;
                Ok(outcome.tuples)
            }
            (Algorithm::Greedy(params), Some(k)) => {
                let outcome = topk_greedy(&graph, arena, params, k, &ctl, tracer)?;
                stats.greedy_steps = outcome.greedy_steps;
                interrupted = outcome.interrupted;
                Ok(outcome.tuples)
            }
            (Algorithm::Exact, Some(k)) => {
                let outcome = ExactSolver::new().solve_topk(&graph, arena, k, &ctl, tracer)?;
                stats.tuples_generated = outcome.feasible_enumerated;
                interrupted = outcome.interrupted;
                Ok(outcome.tuples)
            }
        })();
        stats.solve_time = solve_start.elapsed();
        workspace.tracer.end(solve_span);
        // Return the graph to the pool on the error path too, so a failing
        // request (e.g. Exact over an oversized region) does not cost the
        // workspace its pooled allocations.
        let tuples = match solved {
            Ok(tuples) => tuples,
            Err(e) => {
                self.release(workspace, graph);
                workspace.tracer.finish();
                return Err(e);
            }
        };
        if interrupted {
            stats.mark_partial(match options.deadline {
                Some(_) => PartialCause::DeadlineExceeded,
                None => PartialCause::Cancelled,
            });
        }
        let regions: Vec<Region> = tuples
            .iter()
            .map(|t| Region::from_tuple(&graph, &workspace.arena, t))
            .collect();
        self.release(workspace, graph);
        stats.elapsed = start.elapsed();
        workspace.tracer.end(query_span);
        let trace = workspace.tracer.finish();
        // Only complete runs are worth replaying: a partial incumbent would
        // pin a worse-than-cold answer under the fingerprint.
        if let Some((key, epoch)) = cache_key {
            if !stats.partial {
                self.cache.insert(key, epoch, &regions, &stats);
            }
        }
        Ok(QueryOutcome {
            regions,
            stats,
            trace,
        })
    }

    /// Answers a batch of requests concurrently, using one worker per
    /// available CPU (capped at the batch size).  Results are returned in
    /// input order and are identical to running each request sequentially
    /// with [`LcmsrEngine::execute`]; the first failing request's error (in
    /// input order) is returned if any request fails.
    pub fn execute_batch(&self, requests: &[QueryRequest<'_>]) -> Result<Vec<QueryOutcome>> {
        self.execute_batch_with(requests, default_workers())
    }

    /// Like [`LcmsrEngine::execute_batch`] with an explicit worker count.
    ///
    /// Workers pull requests from a shared atomic cursor (dynamic load
    /// balancing), each runs with its own [`QueryWorkspace`], and every
    /// result lands in its request's input slot.  Each member runs under its
    /// own deadline; a front-end that wants one deadline for a dispatched
    /// group stamps that deadline on every member.
    pub fn execute_batch_with(
        &self,
        requests: &[QueryRequest<'_>],
        workers: usize,
    ) -> Result<Vec<QueryOutcome>> {
        self.batch_over(requests, workers, |ws, request| {
            self.execute_with(ws, request)
        })
    }

    /// Answers a query with the requested algorithm, using a pooled workspace.
    #[deprecated(since = "0.6.0", note = "build a QueryRequest and call execute")]
    pub fn run(&self, query: &LcmsrQuery, algorithm: &Algorithm) -> Result<QueryResult> {
        self.execute(&QueryRequest::new(query, algorithm.clone()))
            .map(QueryOutcome::into_single)
    }

    /// Like `run`, but reuses a caller-owned workspace.
    #[deprecated(since = "0.6.0", note = "build a QueryRequest and call execute_with")]
    pub fn run_with(
        &self,
        workspace: &mut QueryWorkspace,
        query: &LcmsrQuery,
        algorithm: &Algorithm,
    ) -> Result<QueryResult> {
        self.execute_with(workspace, &QueryRequest::new(query, algorithm.clone()))
            .map(QueryOutcome::into_single)
    }

    /// Answers a top-k query with the requested algorithm.
    #[deprecated(
        since = "0.6.0",
        note = "build a QueryRequest with top_k and call execute"
    )]
    pub fn run_topk(
        &self,
        query: &LcmsrQuery,
        algorithm: &Algorithm,
        k: usize,
    ) -> Result<TopKResult> {
        self.execute(&QueryRequest::new(query, algorithm.clone()).top_k(k))
            .map(QueryOutcome::into_topk)
    }

    /// Like `run_topk`, but reuses a caller-owned workspace.
    #[deprecated(
        since = "0.6.0",
        note = "build a QueryRequest with top_k and call execute_with"
    )]
    pub fn run_topk_with(
        &self,
        workspace: &mut QueryWorkspace,
        query: &LcmsrQuery,
        algorithm: &Algorithm,
        k: usize,
    ) -> Result<TopKResult> {
        self.execute_with(
            workspace,
            &QueryRequest::new(query, algorithm.clone()).top_k(k),
        )
        .map(QueryOutcome::into_topk)
    }

    /// Answers a batch of queries concurrently with default workers.
    #[deprecated(since = "0.6.0", note = "build QueryRequests and call execute_batch")]
    pub fn run_batch(
        &self,
        queries: &[LcmsrQuery],
        algorithm: &Algorithm,
    ) -> Result<Vec<QueryResult>> {
        #[allow(deprecated)]
        self.run_batch_with(queries, algorithm, default_workers())
    }

    /// Answers a batch of queries concurrently with an explicit worker count.
    #[deprecated(
        since = "0.6.0",
        note = "build QueryRequests and call execute_batch_with"
    )]
    pub fn run_batch_with(
        &self,
        queries: &[LcmsrQuery],
        algorithm: &Algorithm,
        workers: usize,
    ) -> Result<Vec<QueryResult>> {
        let requests: Vec<QueryRequest<'_>> = queries
            .iter()
            .map(|q| QueryRequest::new(q, algorithm.clone()))
            .collect();
        Ok(self
            .execute_batch_with(&requests, workers)?
            .into_iter()
            .map(QueryOutcome::into_single)
            .collect())
    }

    /// Answers a batch of top-k queries concurrently with default workers.
    #[deprecated(
        since = "0.6.0",
        note = "build QueryRequests with top_k and call execute_batch"
    )]
    pub fn run_topk_batch(
        &self,
        queries: &[LcmsrQuery],
        algorithm: &Algorithm,
        k: usize,
    ) -> Result<Vec<TopKResult>> {
        #[allow(deprecated)]
        self.run_topk_batch_with(queries, algorithm, k, default_workers())
    }

    /// Answers a batch of top-k queries with an explicit worker count.
    #[deprecated(
        since = "0.6.0",
        note = "build QueryRequests with top_k and call execute_batch_with"
    )]
    pub fn run_topk_batch_with(
        &self,
        queries: &[LcmsrQuery],
        algorithm: &Algorithm,
        k: usize,
        workers: usize,
    ) -> Result<Vec<TopKResult>> {
        let requests: Vec<QueryRequest<'_>> = queries
            .iter()
            .map(|q| QueryRequest::new(q, algorithm.clone()).top_k(k))
            .collect();
        Ok(self
            .execute_batch_with(&requests, workers)?
            .into_iter()
            .map(QueryOutcome::into_topk)
            .collect())
    }

    /// Shared batch driver: fans `items` out over `workers` scoped threads,
    /// each owning a workspace, and reassembles per-item results in input
    /// order.  A single worker degenerates to an in-place sequential loop
    /// (still with workspace reuse).
    fn batch_over<I, T, F>(&self, items: &[I], workers: usize, job: F) -> Result<Vec<T>>
    where
        I: Sync,
        T: Send,
        F: Fn(&mut QueryWorkspace, &I) -> Result<T> + Sync,
    {
        let workers = workers.max(1).min(items.len().max(1));
        // An explicit worker count is a statement that `workers` workspaces
        // are worth keeping around between batches.
        self.pool.ensure_max_idle(workers);
        if workers <= 1 {
            let mut workspace = self.pool.checkout();
            let result = items.iter().map(|item| job(&mut workspace, item)).collect();
            self.pool.recycle(workspace);
            return result;
        }
        let cursor = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let mut slots: Vec<Option<Result<T>>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        // Reuse a pooled workspace; consecutive batches on the
                        // same engine keep their grown buffers and arenas.
                        let mut workspace = self.pool.checkout();
                        let mut produced = Vec::new();
                        // Stop claiming work once any item has failed — like
                        // the sequential path, there is no point finishing a
                        // batch whose result will be discarded.
                        while !failed.load(AtomicOrdering::Relaxed) {
                            let i = cursor.fetch_add(1, AtomicOrdering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            let result = job(&mut workspace, &items[i]);
                            if result.is_err() {
                                failed.store(true, AtomicOrdering::Relaxed);
                            }
                            produced.push((i, result));
                        }
                        self.pool.recycle(workspace);
                        produced
                    })
                })
                .collect();
            for handle in handles {
                for (i, result) in handle.join().expect("batch worker panicked") {
                    slots[i] = Some(result);
                }
            }
        });
        // The cursor claims indices in increasing order, so processed slots
        // form a contiguous prefix and any unprocessed tail is preceded by
        // the failure that aborted the batch — an in-order scan therefore
        // yields the first error in input order, matching the sequential path.
        let mut results = Vec::with_capacity(slots.len());
        for slot in slots {
            match slot {
                Some(Ok(value)) => results.push(value),
                Some(Err(e)) => return Err(e),
                None => unreachable!("unprocessed item without a preceding error"),
            }
        }
        Ok(results)
    }

    /// Runs the MaxRS baseline over the objects relevant to `query` inside
    /// `Q.Λ`, using a `width` × `height` rectangle (the paper uses 500 m × 500 m),
    /// and derives the measures needed by the Section 7.5 comparison.
    pub fn run_maxrs(
        &self,
        query: &LcmsrQuery,
        width: f64,
        height: f64,
    ) -> Result<Option<MaxRsRegion>> {
        query.validate()?;
        let weights = self
            .collection
            .node_weights_for_keywords(&query.keywords, &query.region_of_interest);
        if weights.by_object.is_empty() {
            return Ok(None);
        }
        // Weighted points of the relevant objects.
        let mut ids: Vec<ObjectId> = weights.by_object.keys().copied().collect();
        ids.sort_unstable();
        let points: Vec<(lcmsr_roadnet::geo::Point, f64)> = ids
            .iter()
            .map(|id| {
                let o = self.collection.object(*id).expect("scored object exists");
                (o.point, weights.by_object[id])
            })
            .collect();
        let Some(result) = max_range_sum(&points, width, height) else {
            return Ok(None);
        };
        let objects: Vec<ObjectId> = result.covered.iter().map(|&i| ids[i]).collect();
        let mut nodes: Vec<NodeId> = objects
            .iter()
            .filter_map(|&o| self.collection.node_of(o))
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        let weight: f64 = objects
            .iter()
            .map(|o| weights.by_object.get(o).copied().unwrap_or(0.0))
            .sum();
        let (connecting_length, connected) = self.connecting_length(query, &nodes);
        Ok(Some(MaxRsRegion {
            result,
            objects,
            nodes,
            weight,
            connecting_length,
            connected_in_network: connected,
        }))
    }

    /// Minimum road length connecting `nodes` inside `Q.Λ`: a spanning tree in
    /// the shortest-path metric (a standard 2-approximation of the Steiner tree).
    ///
    /// Each search runs entirely inside the `Q.Λ` [`RegionView`] with arrays
    /// sized `|V_Q|`, so the per-terminal cost is independent of how many
    /// nodes the network has outside the region of interest.
    fn connecting_length(&self, query: &LcmsrQuery, nodes: &[NodeId]) -> (Option<f64>, bool) {
        if nodes.len() < 2 {
            return (if nodes.len() == 1 { Some(0.0) } else { None }, true);
        }
        let view = RegionView::new(self.network, query.region_of_interest);
        let locals: Vec<Option<usize>> = nodes.iter().map(|&n| view.local_index(n)).collect();
        // A terminal outside Q.Λ can never be connected inside it.
        if locals.iter().any(Option::is_none) {
            return (None, false);
        }
        // Shortest-path distances between all pairs of terminal nodes.
        let mut dist = vec![vec![f64::INFINITY; nodes.len()]; nodes.len()];
        for (i, &src) in nodes.iter().enumerate() {
            let sp = view.distances_from(src);
            for (j, local) in locals.iter().enumerate() {
                if let Some(d) = sp.by_local(local.expect("checked above")) {
                    dist[i][j] = d;
                }
            }
        }
        // Prim's MST over the metric closure.
        let n = nodes.len();
        let mut in_tree = vec![false; n];
        let mut best = vec![f64::INFINITY; n];
        best[0] = 0.0;
        let mut total = 0.0;
        for _ in 0..n {
            let Some(v) = (0..n)
                .filter(|&v| !in_tree[v] && best[v].is_finite())
                .min_by(|&a, &b| best[a].partial_cmp(&best[b]).unwrap())
            else {
                return (None, false); // some terminal is unreachable inside Q.Λ
            };
            in_tree[v] = true;
            total += best[v];
            for u in 0..n {
                if !in_tree[u] && dist[v][u] < best[u] {
                    best[u] = dist[v][u];
                }
            }
        }
        (Some(total), true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cancel::CancelToken;
    use crate::stats::PartialCause;
    use lcmsr_geotext::object::GeoTextObject;
    use lcmsr_roadnet::builder::GraphBuilder;
    use lcmsr_roadnet::geo::{Point, Rect};

    /// Legacy-shaped helpers: the pre-existing tests keep their call shape
    /// while exercising the new [`QueryRequest`] surface end to end.
    fn run1(
        engine: &LcmsrEngine<'_>,
        query: &LcmsrQuery,
        algorithm: &Algorithm,
    ) -> Result<QueryResult> {
        engine
            .execute(&QueryRequest::new(query, algorithm.clone()))
            .map(QueryOutcome::into_single)
    }

    fn run1_with(
        engine: &LcmsrEngine<'_>,
        workspace: &mut QueryWorkspace,
        query: &LcmsrQuery,
        algorithm: &Algorithm,
    ) -> Result<QueryResult> {
        engine
            .execute_with(workspace, &QueryRequest::new(query, algorithm.clone()))
            .map(QueryOutcome::into_single)
    }

    fn runk(
        engine: &LcmsrEngine<'_>,
        query: &LcmsrQuery,
        algorithm: &Algorithm,
        k: usize,
    ) -> Result<TopKResult> {
        engine
            .execute(&QueryRequest::new(query, algorithm.clone()).top_k(k))
            .map(QueryOutcome::into_topk)
    }

    fn batch1(
        engine: &LcmsrEngine<'_>,
        queries: &[LcmsrQuery],
        algorithm: &Algorithm,
        workers: usize,
    ) -> Result<Vec<QueryResult>> {
        let requests: Vec<QueryRequest<'_>> = queries
            .iter()
            .map(|q| QueryRequest::new(q, algorithm.clone()))
            .collect();
        Ok(engine
            .execute_batch_with(&requests, workers)?
            .into_iter()
            .map(QueryOutcome::into_single)
            .collect())
    }

    fn batchk(
        engine: &LcmsrEngine<'_>,
        queries: &[LcmsrQuery],
        algorithm: &Algorithm,
        k: usize,
        workers: usize,
    ) -> Result<Vec<TopKResult>> {
        let requests: Vec<QueryRequest<'_>> = queries
            .iter()
            .map(|q| QueryRequest::new(q, algorithm.clone()).top_k(k))
            .collect();
        Ok(engine
            .execute_batch_with(&requests, workers)?
            .into_iter()
            .map(QueryOutcome::into_topk)
            .collect())
    }

    /// A 6×6 grid network (100 m blocks) with a restaurant cluster in the
    /// south-west corner and a couple of isolated cafes elsewhere.
    fn small_world() -> (RoadNetwork, ObjectCollection) {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..6 {
            for x in 0..6 {
                ids.push(b.add_node(Point::new(x as f64 * 100.0, y as f64 * 100.0)));
            }
        }
        for y in 0..6 {
            for x in 0..6 {
                let i = y * 6 + x;
                if x < 5 {
                    b.add_edge(ids[i], ids[i + 1], 100.0).unwrap();
                }
                if y < 5 {
                    b.add_edge(ids[i], ids[i + 6], 100.0).unwrap();
                }
            }
        }
        let network = b.build().unwrap();
        let mut objects = Vec::new();
        let mut oid = 0u64;
        // Restaurant cluster near (0..200, 0..200).
        for &(x, y) in &[
            (10.0, 10.0),
            (110.0, 10.0),
            (10.0, 110.0),
            (110.0, 110.0),
            (210.0, 10.0),
        ] {
            objects.push(GeoTextObject::from_keywords(
                oid,
                Point::new(x, y),
                ["restaurant", "italian"],
            ));
            oid += 1;
        }
        // Scattered cafes.
        for &(x, y) in &[(410.0, 410.0), (510.0, 310.0)] {
            objects.push(GeoTextObject::from_keywords(
                oid,
                Point::new(x, y),
                ["cafe", "coffee"],
            ));
            oid += 1;
        }
        // A couple of noise objects.
        objects.push(GeoTextObject::from_keywords(
            oid,
            Point::new(300.0, 300.0),
            ["museum"],
        ));
        let collection = ObjectCollection::build(&network, objects, 200.0).unwrap();
        (network, collection)
    }

    fn whole_rect(network: &RoadNetwork) -> Rect {
        network.bounding_rect().unwrap().expanded(50.0)
    }

    #[test]
    fn all_algorithms_return_feasible_regions() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let query = LcmsrQuery::new(["restaurant"], 400.0, whole_rect(&network)).unwrap();
        for algorithm in [
            Algorithm::App(AppParams::default()),
            Algorithm::Tgen(TgenParams { alpha: 1.0 }),
            Algorithm::Greedy(GreedyParams::default()),
        ] {
            let result = run1(&engine, &query, &algorithm).unwrap();
            let region = result
                .region
                .unwrap_or_else(|| panic!("{} found no region", algorithm.name()));
            assert!(region.length <= 400.0 + 1e-9, "{}", algorithm.name());
            assert!(region.weight > 0.0);
            assert_eq!(result.stats.algorithm, algorithm.name());
            assert!(result.stats.nodes_in_region == 36);
        }
    }

    #[test]
    fn tgen_matches_exact_on_small_instance() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        // Restrict Q.Λ to the south-west corner so the exact solver can enumerate.
        let rect = Rect::new(-50.0, -50.0, 250.0, 250.0);
        let query = LcmsrQuery::new(["restaurant"], 300.0, rect).unwrap();
        let exact = run1(&engine, &query, &Algorithm::Exact)
            .unwrap()
            .region
            .unwrap();
        let tgen = run1(&engine, &query, &Algorithm::Tgen(TgenParams { alpha: 0.1 }))
            .unwrap()
            .region
            .unwrap();
        assert!((tgen.weight - exact.weight).abs() < 1e-9);
        assert!(tgen.length <= 300.0 + 1e-9);
    }

    #[test]
    fn irrelevant_keywords_yield_no_region() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let query = LcmsrQuery::new(["spaceship"], 400.0, whole_rect(&network)).unwrap();
        for algorithm in [
            Algorithm::App(AppParams::default()),
            Algorithm::Tgen(TgenParams::default()),
            Algorithm::Greedy(GreedyParams::default()),
            Algorithm::Exact,
        ] {
            let result = run1(&engine, &query, &algorithm).unwrap();
            assert!(result.region.is_none(), "{}", algorithm.name());
        }
    }

    #[test]
    fn restricting_the_region_of_interest_excludes_outside_objects() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        // Only the north-east part, where no restaurant lies.
        let rect = Rect::new(300.0, 300.0, 560.0, 560.0);
        let query = LcmsrQuery::new(["restaurant"], 400.0, rect).unwrap();
        let result = run1(&engine, &query, &Algorithm::Tgen(TgenParams { alpha: 1.0 })).unwrap();
        assert!(result.region.is_none());
        // Cafes are there, though.
        let query = LcmsrQuery::new(["cafe"], 400.0, rect).unwrap();
        let result = run1(&engine, &query, &Algorithm::Tgen(TgenParams { alpha: 1.0 })).unwrap();
        assert!(result.region.is_some());
    }

    #[test]
    fn topk_returns_ordered_regions() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let query = LcmsrQuery::new(["restaurant", "cafe"], 300.0, whole_rect(&network)).unwrap();
        for algorithm in [
            Algorithm::App(AppParams::default()),
            Algorithm::Tgen(TgenParams { alpha: 1.0 }),
            Algorithm::Greedy(GreedyParams::default()),
        ] {
            let result = runk(&engine, &query, &algorithm, 3).unwrap();
            assert!(!result.regions.is_empty(), "{}", algorithm.name());
            assert!(result.regions.len() <= 3);
            for w in result.regions.windows(2) {
                assert!(w[0].weight >= w[1].weight - 1e-6, "{}", algorithm.name());
            }
            for r in &result.regions {
                assert!(r.length <= 300.0 + 1e-9);
            }
        }
    }

    /// A varied workload over the small world: different keywords, deltas and
    /// rectangles, including queries with no relevant object.
    fn mixed_workload(network: &RoadNetwork) -> Vec<LcmsrQuery> {
        let whole = whole_rect(network);
        let sw = Rect::new(-50.0, -50.0, 250.0, 250.0);
        let ne = Rect::new(300.0, 300.0, 560.0, 560.0);
        let mut queries = Vec::new();
        for delta in [150.0, 300.0, 400.0, 700.0] {
            queries.push(LcmsrQuery::new(["restaurant"], delta, whole).unwrap());
            queries.push(LcmsrQuery::new(["cafe", "coffee"], delta, whole).unwrap());
            queries.push(LcmsrQuery::new(["restaurant", "italian"], delta, sw).unwrap());
            queries.push(LcmsrQuery::new(["cafe"], delta, ne).unwrap());
            queries.push(LcmsrQuery::new(["museum"], delta, whole).unwrap());
            queries.push(LcmsrQuery::new(["spaceship"], delta, whole).unwrap());
            queries.push(LcmsrQuery::new(["restaurant", "cafe"], delta, whole).unwrap());
            queries.push(LcmsrQuery::new(["italian"], delta, sw).unwrap());
        }
        queries
    }

    #[test]
    fn run_batch_matches_sequential_run_exactly() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let queries = mixed_workload(&network);
        assert!(queries.len() >= 32);
        for algorithm in [
            Algorithm::App(AppParams::default()),
            Algorithm::Tgen(TgenParams { alpha: 1.0 }),
            Algorithm::Greedy(GreedyParams::default()),
        ] {
            let sequential: Vec<_> = queries
                .iter()
                .map(|q| run1(&engine, q, &algorithm).unwrap().region)
                .collect();
            for workers in [1, 2, 4] {
                let batched = batch1(&engine, &queries, &algorithm, workers).unwrap();
                assert_eq!(batched.len(), queries.len());
                for (i, (seq, bat)) in sequential.iter().zip(&batched).enumerate() {
                    assert_eq!(
                        seq,
                        &bat.region,
                        "{} query {i} diverged with {workers} workers",
                        algorithm.name()
                    );
                }
            }
        }
    }

    #[test]
    fn prepare_workers_never_change_results_and_fill_the_timing_split() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        assert_eq!(engine.prepare_workers(), 1);
        let queries = mixed_workload(&network);
        let algorithm = Algorithm::Tgen(TgenParams { alpha: 1.0 });
        let sequential: Vec<_> = queries
            .iter()
            .map(|q| run1(&engine, q, &algorithm).unwrap())
            .collect();
        for workers in [2usize, 4, 7] {
            let parallel = LcmsrEngine::new(&network, &collection).with_prepare_workers(workers);
            assert_eq!(parallel.prepare_workers(), workers);
            for (i, (q, seq)) in queries.iter().zip(&sequential).enumerate() {
                let out = run1(&parallel, q, &algorithm).unwrap();
                assert_eq!(
                    out.region, seq.region,
                    "query {i} diverged with {workers} prepare workers"
                );
                assert_eq!(out.stats.nodes_in_region, seq.stats.nodes_in_region);
                assert_eq!(out.stats.relevant_nodes, seq.stats.relevant_nodes);
                assert!(
                    out.stats.grid_score_time + out.stats.graph_build_time
                        <= out.stats.prepare_time,
                    "split must be contained in prepare_time"
                );
            }
        }
    }

    #[test]
    fn run_topk_batch_matches_sequential_topk() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let queries = mixed_workload(&network);
        let algorithm = Algorithm::Tgen(TgenParams { alpha: 1.0 });
        let sequential: Vec<_> = queries
            .iter()
            .map(|q| runk(&engine, q, &algorithm, 3).unwrap().regions)
            .collect();
        let batched = batchk(&engine, &queries, &algorithm, 3, 4).unwrap();
        for (seq, bat) in sequential.iter().zip(&batched) {
            assert_eq!(seq, &bat.regions);
        }
    }

    #[test]
    fn run_batch_propagates_the_first_error_in_input_order() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let mut queries = mixed_workload(&network);
        // Bypass the constructor to craft an invalid query mid-batch.
        queries[5].delta = -1.0;
        queries[9].keywords.clear();
        let err = batch1(
            &engine,
            &queries,
            &Algorithm::Greedy(GreedyParams::default()),
            4,
        )
        .unwrap_err();
        assert!(matches!(err, crate::error::LcmsrError::InvalidDelta { .. }));
    }

    #[test]
    fn engine_is_send_and_sync() {
        // The serving front-end shares one engine across scheduler and
        // handler threads; this pins the auto-trait audit at compile time.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LcmsrEngine<'static>>();
        assert_send_sync::<WorkspacePool>();
        assert_send_sync::<QueryResult>();
        assert_send_sync::<TopKResult>();
    }

    #[test]
    fn workspace_pool_growth_is_capped_at_max_idle() {
        let pool = WorkspacePool::with_max_idle(2);
        assert_eq!(pool.max_idle(), 2);
        // A burst of six concurrent checkouts…
        let burst: Vec<QueryWorkspace> = (0..6).map(|_| pool.checkout()).collect();
        assert_eq!(pool.idle_count(), 0);
        // …recycles down to the cap, not to the burst size.
        for ws in burst {
            pool.recycle(ws);
        }
        assert_eq!(pool.idle_count(), 2, "recycle must drop beyond max_idle");
        // Lowering the cap trims the already-pooled excess.
        pool.set_max_idle(1);
        assert_eq!(pool.idle_count(), 1);
        // Raising it lets future recycles pool more again.
        pool.set_max_idle(3);
        for _ in 0..4 {
            pool.recycle(QueryWorkspace::new());
        }
        assert_eq!(pool.idle_count(), 3);
        // ensure_max_idle only ever raises the cap.
        pool.ensure_max_idle(2);
        assert_eq!(pool.max_idle(), 3);
        pool.ensure_max_idle(5);
        assert_eq!(pool.max_idle(), 5);
    }

    #[test]
    fn explicit_batch_worker_counts_raise_the_idle_cap() {
        // A cap below the requested worker count would silently drop (and
        // re-warm) workspaces every batch — run_batch_with must widen it.
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        engine.workspace_pool().set_max_idle(1);
        let queries = mixed_workload(&network);
        let _ = batch1(
            &engine,
            &queries,
            &Algorithm::Greedy(GreedyParams::default()),
            4,
        )
        .unwrap();
        assert!(
            engine.workspace_pool().max_idle() >= 4,
            "batch with 4 workers must raise the idle cap, got {}",
            engine.workspace_pool().max_idle()
        );
        // A second batch can now reuse every worker's workspace.
        let _ = batch1(
            &engine,
            &queries,
            &Algorithm::Greedy(GreedyParams::default()),
            4,
        )
        .unwrap();
        assert!(engine.workspace_pool().idle_count() >= 1);
    }

    #[test]
    fn engine_pool_defaults_to_available_parallelism_cap() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        assert_eq!(engine.workspace_pool().max_idle(), default_workers());
        // A burst of one-shot runs through the engine's own pool never pins
        // more than the cap.
        let query = LcmsrQuery::new(["restaurant"], 400.0, whole_rect(&network)).unwrap();
        engine.workspace_pool().set_max_idle(2);
        std::thread::scope(|scope| {
            for _ in 0..6 {
                scope.spawn(|| {
                    run1(&engine, &query, &Algorithm::Greedy(GreedyParams::default())).unwrap()
                });
            }
        });
        assert!(
            engine.workspace_pool().idle_count() <= 2,
            "burst must not pin workspaces beyond the cap, pooled {}",
            engine.workspace_pool().idle_count()
        );
    }

    #[test]
    fn one_shot_runs_recycle_a_pooled_workspace() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        assert_eq!(engine.workspace_pool().idle_count(), 0);
        let query = LcmsrQuery::new(["restaurant"], 400.0, whole_rect(&network)).unwrap();
        let first = run1(&engine, &query, &Algorithm::Tgen(TgenParams { alpha: 1.0 })).unwrap();
        assert_eq!(
            engine.workspace_pool().idle_count(),
            1,
            "run must return its workspace to the pool"
        );
        // The second run reuses the same workspace (the pool does not grow)
        // and produces the identical region.
        let second = run1(&engine, &query, &Algorithm::Tgen(TgenParams { alpha: 1.0 })).unwrap();
        assert_eq!(engine.workspace_pool().idle_count(), 1);
        assert_eq!(first.region, second.region);
        // Top-k and batch paths recycle too.
        let _ = runk(
            &engine,
            &query,
            &Algorithm::Greedy(GreedyParams::default()),
            2,
        )
        .unwrap();
        assert_eq!(engine.workspace_pool().idle_count(), 1);
        let queries = mixed_workload(&network);
        let _ = batch1(
            &engine,
            &queries,
            &Algorithm::Greedy(GreedyParams::default()),
            4,
        )
        .unwrap();
        let pooled = engine.workspace_pool().idle_count();
        assert!(
            (1..=4).contains(&pooled),
            "batch workers must recycle their workspaces, pooled {pooled}"
        );
        // A failing query still returns the workspace.
        let mut bad = queries[0].clone();
        bad.delta = -1.0;
        assert!(run1(&engine, &bad, &Algorithm::Greedy(GreedyParams::default())).is_err());
        assert_eq!(engine.workspace_pool().idle_count(), pooled);
    }

    #[test]
    fn pooled_engine_matches_fresh_workspaces_across_interleaved_algorithms() {
        // Interleave algorithms and queries on one pooled engine: every result
        // must equal a run with a brand-new workspace (fresh arena, fresh
        // builder), i.e. arena recycling must never leak state across queries.
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let queries = mixed_workload(&network);
        let algorithms = [
            Algorithm::Tgen(TgenParams { alpha: 1.0 }),
            Algorithm::App(AppParams::default()),
            Algorithm::Greedy(GreedyParams::default()),
        ];
        for (i, query) in queries.iter().enumerate() {
            let algorithm = &algorithms[i % algorithms.len()];
            let pooled = run1(&engine, query, algorithm).unwrap();
            let fresh = run1_with(&engine, &mut QueryWorkspace::new(), query, algorithm).unwrap();
            assert_eq!(
                pooled.region,
                fresh.region,
                "{} query {i}",
                algorithm.name()
            );
        }
    }

    #[test]
    fn workspace_reuse_produces_identical_results() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let queries = mixed_workload(&network);
        let mut workspace = QueryWorkspace::new();
        for algorithm in [
            Algorithm::App(AppParams::default()),
            Algorithm::Tgen(TgenParams { alpha: 1.0 }),
            Algorithm::Greedy(GreedyParams::default()),
        ] {
            for query in &queries {
                let fresh = run1(&engine, query, &algorithm).unwrap();
                let reused = run1_with(&engine, &mut workspace, query, &algorithm).unwrap();
                assert_eq!(fresh.region, reused.region, "{}", algorithm.name());
            }
        }
    }

    #[test]
    fn prepare_and_solve_times_are_bounded_by_elapsed() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let query = LcmsrQuery::new(["restaurant"], 400.0, whole_rect(&network)).unwrap();
        for algorithm in [
            Algorithm::App(AppParams::default()),
            Algorithm::Tgen(TgenParams { alpha: 1.0 }),
            Algorithm::Greedy(GreedyParams::default()),
        ] {
            let result = run1(&engine, &query, &algorithm).unwrap();
            let s = &result.stats;
            assert!(
                s.prepare_time + s.solve_time <= s.elapsed,
                "{}: prepare {:?} + solve {:?} > elapsed {:?}",
                algorithm.name(),
                s.prepare_time,
                s.solve_time,
                s.elapsed
            );
            let topk = runk(&engine, &query, &algorithm, 2).unwrap();
            assert!(topk.stats.prepare_time + topk.stats.solve_time <= topk.stats.elapsed);
        }
    }

    #[test]
    fn topk_stats_are_populated_for_every_algorithm() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let query = LcmsrQuery::new(["restaurant", "cafe"], 300.0, whole_rect(&network)).unwrap();
        let app = runk(&engine, &query, &Algorithm::App(AppParams::default()), 3).unwrap();
        assert!(app.stats.kmst_calls > 0, "top-k APP must count kmst calls");
        assert!(app.stats.tuples_generated > 0);
        let tgen = runk(
            &engine,
            &query,
            &Algorithm::Tgen(TgenParams { alpha: 1.0 }),
            3,
        )
        .unwrap();
        assert!(
            tgen.stats.tuples_generated > 0,
            "top-k TGEN must count tuples"
        );
        let greedy = runk(
            &engine,
            &query,
            &Algorithm::Greedy(GreedyParams::default()),
            3,
        )
        .unwrap();
        assert!(
            greedy.stats.greedy_steps > 0,
            "top-k Greedy must count steps"
        );
    }

    #[test]
    fn frontier_counters_reach_run_stats() {
        // The PR 5 counters must flow from the solvers through the engine on
        // both the single and top-k paths, for TGEN and APP alike.
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let query = LcmsrQuery::new(["restaurant", "cafe"], 300.0, whole_rect(&network)).unwrap();
        for algorithm in [
            Algorithm::Tgen(TgenParams { alpha: 1.0 }),
            Algorithm::App(AppParams::default()),
        ] {
            let single = run1(&engine, &query, &algorithm).unwrap().stats;
            // APP skips `findOptTree` (and its arrays) when the candidate
            // tree is already feasible — counters then legitimately stay 0,
            // flagged by tuples_generated being 0 too.
            if single.tuples_generated > 0 {
                assert!(
                    single.frontier_tuples > 0,
                    "{}: frontier_tuples must be counted",
                    algorithm.name()
                );
                assert!(single.frontier_peak > 0, "{}", algorithm.name());
                assert!(
                    single.frontier_peak <= single.frontier_tuples,
                    "{}: peak cannot exceed the total",
                    algorithm.name()
                );
            }
            let tgen_like = matches!(algorithm, Algorithm::Tgen(_));
            if tgen_like {
                assert!(single.frontier_tuples > 0, "TGEN always builds arrays");
            }
            let topk = runk(&engine, &query, &algorithm, 3).unwrap().stats;
            if topk.tuples_generated > 0 {
                assert!(topk.frontier_tuples > 0, "{}", algorithm.name());
            }
        }
        // A tight budget forces the combine loops to prune pairs.
        let tight = LcmsrQuery::new(["restaurant"], 150.0, whole_rect(&network)).unwrap();
        let stats = run1(&engine, &tight, &Algorithm::Tgen(TgenParams { alpha: 1.0 }))
            .unwrap()
            .stats;
        assert!(
            stats.pruned_pairs > 0,
            "a tight ∆ must budget-prune combine pairs, stats: {stats}"
        );
        // Greedy never touches tuple arrays.
        let greedy = run1(&engine, &query, &Algorithm::Greedy(GreedyParams::default()))
            .unwrap()
            .stats;
        assert_eq!(greedy.frontier_tuples, 0);
        assert_eq!(greedy.pruned_pairs, 0);
    }

    #[test]
    fn exact_topk_returns_k_distinct_regions() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        // Restrict Q.Λ so the exact solver can enumerate.
        let rect = Rect::new(-50.0, -50.0, 250.0, 250.0);
        let query = LcmsrQuery::new(["restaurant"], 300.0, rect).unwrap();
        let result = runk(&engine, &query, &Algorithm::Exact, 4).unwrap();
        assert!(
            result.regions.len() >= 2,
            "Exact top-k must return more than one region, got {}",
            result.regions.len()
        );
        assert!(result.regions.len() <= 4);
        assert!(result.stats.tuples_generated > 0);
        for pair in result.regions.windows(2) {
            assert_ne!(pair[0].nodes, pair[1].nodes, "node sets must be distinct");
            assert!(pair[0].scaled_weight >= pair[1].scaled_weight);
        }
        for r in &result.regions {
            assert!(r.length <= 300.0 + 1e-9);
        }
        // The head agrees with the single-region Exact answer's measures.
        let single = run1(&engine, &query, &Algorithm::Exact)
            .unwrap()
            .region
            .unwrap();
        assert!((result.regions[0].weight - single.weight).abs() < 1e-9);
    }

    #[test]
    fn exact_topk_head_matches_exact_run_under_quantization_adversary() {
        // Weights {0.3} vs {0.16, 0.16}: under the old Exact α = 1.0 the
        // scaling θ = 0.1 floored the pair to 1+1 = 2 < 3, so run_topk ranked
        // the single 0.3 node above the true optimum (weight 0.32) while run()
        // returned the pair.  The fine Exact α must keep both paths agreeing.
        use crate::exact::ExactSolver;
        use crate::query_graph::QueryGraph;
        use lcmsr_geotext::collection::NodeWeights;
        use lcmsr_roadnet::builder::GraphBuilder;
        use lcmsr_roadnet::node::NodeId;

        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(10.0, 0.0));
        let d = b.add_node(Point::new(11.0, 0.0));
        b.add_edge(a, c, 10.0).unwrap();
        b.add_edge(c, d, 1.0).unwrap();
        let network = b.build().unwrap();
        let mut weights = NodeWeights::default();
        weights.by_node.insert(NodeId(0), 0.3);
        weights.by_node.insert(NodeId(1), 0.16);
        weights.by_node.insert(NodeId(2), 0.16);
        let view = RegionView::whole(&network);
        let alpha = Algorithm::Exact.alpha();
        let qg = QueryGraph::build(&view, &weights, 5.0, alpha).unwrap();
        let mut arena = TupleArena::new();
        let single = ExactSolver::new()
            .solve(
                &qg,
                &mut arena,
                &CancelToken::none(),
                &mut TraceCollector::disabled(),
            )
            .unwrap()
            .best
            .unwrap();
        assert!(
            (single.weight - 0.32).abs() < 1e-12,
            "true optimum is the pair"
        );
        let top = ExactSolver::new()
            .solve_topk(
                &qg,
                &mut arena,
                1,
                &CancelToken::none(),
                &mut TraceCollector::disabled(),
            )
            .unwrap();
        assert!(
            top.tuples[0].same_nodes(&single, &arena),
            "run_topk(Exact, 1) must return the same region as run(Exact)"
        );
    }

    #[test]
    fn connecting_length_cost_is_independent_of_outside_nodes() {
        // The same objects and Q.Λ over the plain small world and over a
        // network with a 2000-node appendage far outside the rectangle: the
        // MaxRS comparison measures must be identical (and the per-terminal
        // searches never touch the appendage).
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let rect = Rect::new(-50.0, -50.0, 560.0, 560.0);
        let query = LcmsrQuery::new(["restaurant"], 400.0, rect).unwrap();
        let small = engine.run_maxrs(&query, 250.0, 250.0).unwrap().unwrap();

        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for y in 0..6 {
            for x in 0..6 {
                ids.push(b.add_node(Point::new(x as f64 * 100.0, y as f64 * 100.0)));
            }
        }
        for y in 0..6 {
            for x in 0..6 {
                let i = y * 6 + x;
                if x < 5 {
                    b.add_edge(ids[i], ids[i + 1], 100.0).unwrap();
                }
                if y < 5 {
                    b.add_edge(ids[i], ids[i + 6], 100.0).unwrap();
                }
            }
        }
        let mut prev = ids[35];
        for k in 0..2000 {
            let n = b.add_node(Point::new(1000.0 + k as f64, 1000.0));
            b.add_edge(prev, n, 1.0).unwrap();
            prev = n;
        }
        let big_network = b.build().unwrap();
        let objects = collection.objects().to_vec();
        let big_collection = ObjectCollection::build(&big_network, objects, 200.0).unwrap();
        let big_engine = LcmsrEngine::new(&big_network, &big_collection);
        let big = big_engine.run_maxrs(&query, 250.0, 250.0).unwrap().unwrap();

        assert_eq!(small.nodes, big.nodes);
        assert_eq!(small.connecting_length, big.connecting_length);
        assert_eq!(small.connected_in_network, big.connected_in_network);
        // The search itself is bounded by the view: terminals settle at most
        // |V_Q| nodes even on the 2036-node network.
        let view = RegionView::new(&big_network, rect);
        assert_eq!(view.node_count(), 36, "appendage lies outside Q.Λ");
        for &n in &big.nodes {
            let sp = view.distances_from(n);
            assert!(sp.settled() <= view.node_count());
            assert_eq!(sp.len(), 36, "arrays sized to |V_Q|, not |V|");
        }
    }

    #[test]
    fn maxrs_baseline_finds_the_restaurant_cluster() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let query = LcmsrQuery::new(["restaurant"], 400.0, whole_rect(&network)).unwrap();
        let maxrs = engine.run_maxrs(&query, 250.0, 250.0).unwrap().unwrap();
        assert!(maxrs.objects.len() >= 4, "covered {:?}", maxrs.objects);
        assert!(maxrs.weight > 0.0);
        assert!(maxrs.connecting_length.is_some());
        assert!(maxrs.connected_in_network);
        // No relevant object → None.
        let query = LcmsrQuery::new(["spaceship"], 400.0, whole_rect(&network)).unwrap();
        assert!(engine.run_maxrs(&query, 250.0, 250.0).unwrap().is_none());
    }

    #[test]
    fn lcmsr_beats_or_matches_maxrs_under_the_section_75_procedure() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let query = LcmsrQuery::new(["restaurant"], 400.0, whole_rect(&network)).unwrap();
        let maxrs = engine.run_maxrs(&query, 250.0, 250.0).unwrap().unwrap();
        let delta = maxrs.connecting_length.unwrap().max(100.0);
        let lcmsr_query = LcmsrQuery::new(["restaurant"], delta, whole_rect(&network)).unwrap();
        let lcmsr = run1(
            &engine,
            &lcmsr_query,
            &Algorithm::Tgen(TgenParams { alpha: 0.5 }),
        )
        .unwrap()
        .region
        .unwrap();
        // Under the same connectivity budget the network-aware region should
        // gather at least as much weight as the rectangle's connected content.
        assert!(lcmsr.weight + 1e-9 >= maxrs.weight * 0.9);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_agree_with_execute() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let query = LcmsrQuery::new(["restaurant"], 300.0, whole_rect(&network)).unwrap();
        for algorithm in [
            Algorithm::Tgen(TgenParams { alpha: 0.5 }),
            Algorithm::Greedy(GreedyParams::default()),
        ] {
            let outcome = engine
                .execute(&QueryRequest::new(&query, algorithm.clone()))
                .unwrap();
            let legacy = engine.run(&query, &algorithm).unwrap();
            assert_eq!(legacy.region.as_ref(), outcome.best());
            let topk = engine.run_topk(&query, &algorithm, 3).unwrap();
            let via_request = engine
                .execute(&QueryRequest::new(&query, algorithm.clone()).top_k(3))
                .unwrap();
            assert_eq!(topk.regions, via_request.regions);
            let batch = engine
                .run_batch(std::slice::from_ref(&query), &algorithm)
                .unwrap();
            assert_eq!(batch[0].region.as_ref(), outcome.best());
        }
    }

    #[test]
    fn expired_deadline_returns_partial_incumbent_for_exact() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        // 3×3 corner of the grid: 9 nodes, 511 subset masks, so enumeration
        // passes the poll stride (256) and the expired deadline fires with an
        // incumbent already in hand.
        let rect = Rect::new(-50.0, -50.0, 250.0, 250.0);
        let query = LcmsrQuery::new(["restaurant"], 300.0, rect).unwrap();
        let request =
            QueryRequest::new(&query, Algorithm::Exact).deadline(Deadline::after(Duration::ZERO));
        let partial = engine.execute(&request).unwrap();
        assert!(partial.is_partial());
        assert_eq!(
            partial.stats.partial_cause,
            Some(PartialCause::DeadlineExceeded)
        );
        assert_eq!(partial.stats.deadline, Some(Duration::ZERO));
        let incumbent = partial.best().expect("best-so-far incumbent");
        assert!(incumbent.length <= 300.0 + 1e-9);
        // Without a deadline the same query completes and is at least as good.
        let full = engine
            .execute(&QueryRequest::new(&query, Algorithm::Exact))
            .unwrap();
        assert!(!full.is_partial());
        assert_eq!(full.stats.partial_cause, None);
        assert!(full.best().unwrap().weight + 1e-9 >= incumbent.weight);
    }

    #[test]
    fn manual_cancellation_marks_partial_cancelled() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let query = LcmsrQuery::new(["restaurant"], 400.0, whole_rect(&network)).unwrap();
        let token = CancelToken::manual();
        token.cancel();
        let request = QueryRequest::new(&query, Algorithm::Greedy(GreedyParams::default()))
            .cancel_token(token);
        let outcome = engine.execute(&request).unwrap();
        assert!(outcome.is_partial());
        // No deadline was set, so the cause is attributed to cancellation.
        assert_eq!(outcome.stats.partial_cause, Some(PartialCause::Cancelled));
        assert_eq!(outcome.stats.deadline, None);
        // Greedy seeds its best before the expansion loop, so a region is
        // still returned.
        assert!(outcome.best().is_some());
    }

    #[test]
    fn unarmed_requests_never_report_partial() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let query = LcmsrQuery::new(["restaurant"], 400.0, whole_rect(&network)).unwrap();
        for algorithm in [
            Algorithm::App(AppParams::default()),
            Algorithm::Tgen(TgenParams { alpha: 0.5 }),
            Algorithm::Greedy(GreedyParams::default()),
        ] {
            let outcome = engine
                .execute(&QueryRequest::new(&query, algorithm))
                .unwrap();
            assert!(!outcome.is_partial());
            assert_eq!(outcome.stats.partial_cause, None);
        }
        // Exact needs a sub-node-limit window.
        let corner = Rect::new(-50.0, -50.0, 250.0, 250.0);
        let small = LcmsrQuery::new(["restaurant"], 300.0, corner).unwrap();
        let outcome = engine
            .execute(&QueryRequest::new(&small, Algorithm::Exact))
            .unwrap();
        assert!(!outcome.is_partial());
        assert_eq!(outcome.stats.partial_cause, None);
    }

    #[test]
    fn option_overrides_patch_the_effective_algorithm() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let query = LcmsrQuery::new(["restaurant"], 400.0, whole_rect(&network)).unwrap();
        let overridden = engine
            .execute(
                &QueryRequest::new(&query, Algorithm::Tgen(TgenParams { alpha: 1.0 })).alpha(0.25),
            )
            .unwrap();
        let direct = engine
            .execute(&QueryRequest::new(
                &query,
                Algorithm::Tgen(TgenParams { alpha: 0.25 }),
            ))
            .unwrap();
        assert_eq!(overridden.regions, direct.regions);
        let mu_override = engine
            .execute(&QueryRequest::new(&query, Algorithm::Greedy(GreedyParams::default())).mu(0.9))
            .unwrap();
        let mu_direct = engine
            .execute(&QueryRequest::new(
                &query,
                Algorithm::Greedy(GreedyParams { mu: 0.9 }),
            ))
            .unwrap();
        assert_eq!(mu_override.regions, mu_direct.regions);
    }

    #[test]
    fn priority_parses_and_displays_stably() {
        assert_eq!(Priority::parse("interactive"), Some(Priority::Interactive));
        assert_eq!(Priority::parse("batch"), Some(Priority::Batch));
        assert_eq!(Priority::parse("bogus"), None);
        assert_eq!(Priority::Interactive.to_string(), "interactive");
        assert_eq!(Priority::Batch.as_str(), "batch");
        assert_eq!(Priority::default(), Priority::Interactive);
    }

    #[test]
    fn traced_runs_yield_well_formed_span_trees_for_every_algorithm() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let whole = whole_rect(&network);
        // Exact needs a region under its node cap; the others take the world.
        let corner = Rect::new(-50.0, -50.0, 160.0, 160.0);
        let cases = [
            (Algorithm::App(AppParams::default()), whole),
            (Algorithm::Tgen(TgenParams { alpha: 1.0 }), whole),
            (Algorithm::Greedy(GreedyParams::default()), whole),
            (Algorithm::Exact, corner),
        ];
        for (algorithm, rect) in cases {
            let query = LcmsrQuery::new(["restaurant"], 400.0, rect).unwrap();
            let outcome = engine
                .execute(&QueryRequest::new(&query, algorithm.clone()).trace(true))
                .unwrap();
            let trace = outcome
                .trace
                .as_ref()
                .unwrap_or_else(|| panic!("{algorithm:?} must produce a trace"));
            // Structural invariants: parents precede and contain their
            // children, and direct children sum to at most the parent.
            trace
                .validate()
                .unwrap_or_else(|e| panic!("{algorithm:?}: {e}"));
            assert_eq!(trace.dropped, 0, "{algorithm:?}");
            // Exactly one root: the whole query.
            let roots: Vec<u32> = trace.children_of(crate::trace::SpanRecord::ROOT).collect();
            assert_eq!(roots.len(), 1, "{algorithm:?}: {:?}", trace.spans);
            assert_eq!(trace.spans[roots[0] as usize].label, "query");
            // The prepare phase splits into grid scoring and graph build.
            let (prepare, _) = trace.find("prepare").expect("prepare span");
            let prepare_children: Vec<&str> = trace
                .children_of(prepare)
                .map(|i| trace.spans[i as usize].label)
                .collect();
            assert!(
                prepare_children.contains(&"grid_score")
                    && prepare_children.contains(&"graph_build"),
                "{algorithm:?}: {prepare_children:?}"
            );
            let attrs: Vec<(&str, u64)> = trace.attrs_of(prepare).collect();
            assert!(
                attrs.iter().any(|&(k, v)| k == "nodes" && v > 0),
                "{algorithm:?}: {attrs:?}"
            );
            // The solver contributed at least one span under "solve".
            let (solve, _) = trace.find("solve").expect("solve span");
            assert!(
                trace.children_of(solve).count() >= 1,
                "{algorithm:?} solver must record spans: {:?}",
                trace.spans
            );
        }
    }

    #[test]
    fn traced_and_untraced_runs_return_identical_results() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let query = LcmsrQuery::new(["restaurant"], 400.0, whole_rect(&network)).unwrap();
        for algorithm in [
            Algorithm::App(AppParams::default()),
            Algorithm::Tgen(TgenParams { alpha: 1.0 }),
            Algorithm::Greedy(GreedyParams::default()),
        ] {
            let request = QueryRequest::new(&query, algorithm.clone());
            let untraced = engine.execute(&request.clone().trace(false)).unwrap();
            let traced = engine.execute(&request.trace(true)).unwrap();
            assert!(untraced.trace.is_none());
            assert!(traced.trace.is_some());
            assert_eq!(untraced.regions, traced.regions, "{algorithm:?}");
            assert_eq!(
                untraced.stats.tuples_generated,
                traced.stats.tuples_generated
            );
        }
    }

    #[test]
    fn workspace_tracer_does_not_leak_spans_across_queries() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let mut workspace = QueryWorkspace::new();
        let query = LcmsrQuery::new(["restaurant"], 400.0, whole_rect(&network)).unwrap();
        let algorithm = Algorithm::Tgen(TgenParams { alpha: 1.0 });

        // Traced, then untraced, on the same pooled workspace.
        let first = engine
            .execute_with(
                &mut workspace,
                &QueryRequest::new(&query, algorithm.clone()).trace(true),
            )
            .unwrap();
        let first_spans = first.trace.expect("traced run").spans.len();
        assert!(first_spans >= 4, "query/prepare/split/solve at minimum");
        let second = engine
            .execute_with(
                &mut workspace,
                &QueryRequest::new(&query, algorithm.clone()),
            )
            .unwrap();
        assert!(second.trace.is_none(), "tracing must not stick to the pool");

        // A traced *failing* query (Exact over too many nodes) must leave the
        // workspace collector disarmed for the next run.
        let failing = QueryRequest::new(&query, Algorithm::Exact).trace(true);
        assert!(engine.execute_with(&mut workspace, &failing).is_err());
        let after_error = engine
            .execute_with(
                &mut workspace,
                &QueryRequest::new(&query, algorithm.clone()).trace(true),
            )
            .unwrap();
        let trace = after_error.trace.expect("re-armed run");
        trace.validate().expect("well-formed after an error");
        assert_eq!(
            trace.spans.len(),
            first_spans,
            "stale spans from the failed query must not accumulate"
        );
    }

    /// Bit-faithful fingerprint of a result's regions: `Debug` for `f64`
    /// prints the shortest round-trip decimal, so two prints agree iff the
    /// floats are bit-identical (and `-0.0` prints differently from `0.0`).
    fn regions_fingerprint(regions: &[Region]) -> String {
        format!("{regions:?}")
    }

    #[test]
    fn cache_hits_replay_bit_identical_responses() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let query = LcmsrQuery::new(["restaurant"], 400.0, whole_rect(&network)).unwrap();
        let algorithm = Algorithm::Tgen(TgenParams { alpha: 1.0 });
        let cold = engine
            .execute(&QueryRequest::new(&query, algorithm.clone()))
            .unwrap();
        assert!(!cold.stats.cache, "cache mode defaults off");
        let request = QueryRequest::new(&query, algorithm.clone()).cache(true);
        let first = engine.execute(&request).unwrap();
        assert!(first.stats.cache);
        assert!(!first.stats.cache_hit);
        let second = engine.execute(&request).unwrap();
        assert!(second.stats.cache_hit, "exact repeat must hit");
        for outcome in [&first, &second] {
            assert_eq!(
                regions_fingerprint(&outcome.regions),
                regions_fingerprint(&cold.regions),
                "cache-mode responses must stay bit-identical to cold runs"
            );
        }
        assert_eq!(engine.response_cache().hits(), 1);
        assert_eq!(engine.response_cache().misses(), 1);
        assert_eq!(engine.response_cache().stale(), 0);
        // Structural stats replay from the cold run; timings are this run's.
        assert_eq!(second.stats.nodes_in_region, first.stats.nodes_in_region);
        assert_eq!(second.stats.tuples_generated, first.stats.tuples_generated);
        assert_eq!(second.stats.prepare_time, Duration::ZERO);
        assert_eq!(second.stats.solve_time, Duration::ZERO);
        // A traced hit records the lookup span and skips prepare entirely.
        let traced = engine.execute(&request.clone().trace(true)).unwrap();
        assert!(traced.stats.cache_hit);
        let trace = traced.trace.expect("traced run");
        trace.validate().expect("well-formed hit trace");
        assert!(trace.find("cache_lookup").is_some());
        assert!(trace.find("prepare").is_none());
        // A different top-k setting is a different fingerprint.
        let topk = engine.execute(&request.clone().top_k(3)).unwrap();
        assert!(!topk.stats.cache_hit);
    }

    #[test]
    fn session_delta_prepare_matches_cold_runs_bit_for_bit() {
        let (network, collection) = small_world();
        let warm = LcmsrEngine::new(&network, &collection);
        let cold = LcmsrEngine::new(&network, &collection);
        let algorithm = Algorithm::Tgen(TgenParams { alpha: 1.0 });
        let mut workspace = QueryWorkspace::new();
        // A pan/zoom trace: big-overlap steps delta-prepare, the zoom-out
        // falls back to a cold rescan, the final jump is fully contained in
        // the previous view and delta-prepares again.
        let rects = [
            Rect::new(-50.0, -50.0, 250.0, 250.0),
            Rect::new(-20.0, -50.0, 280.0, 250.0),
            Rect::new(0.0, -20.0, 260.0, 300.0),
            Rect::new(-50.0, -50.0, 560.0, 560.0),
            Rect::new(350.0, 250.0, 560.0, 560.0),
        ];
        let mut deltas = 0;
        for (i, rect) in rects.iter().enumerate() {
            let query = LcmsrQuery::new(["restaurant", "cafe"], 400.0, *rect).unwrap();
            let warm_out = warm
                .execute_with(
                    &mut workspace,
                    &QueryRequest::new(&query, algorithm.clone()).cache(true),
                )
                .unwrap();
            let cold_out = cold
                .execute(&QueryRequest::new(&query, algorithm.clone()))
                .unwrap();
            assert!(!warm_out.stats.cache_hit, "distinct rects never hit");
            assert_eq!(
                regions_fingerprint(&warm_out.regions),
                regions_fingerprint(&cold_out.regions),
                "step {i} must be bit-identical to a cold run"
            );
            if warm_out.stats.delta_prepare {
                deltas += 1;
            }
        }
        assert!(
            deltas >= 2,
            "overlapping pan steps must delta-prepare, got {deltas}"
        );
        // A keyword refinement on the same rect cannot reuse the scores.
        let refined =
            LcmsrQuery::new(["restaurant"], 400.0, Rect::new(350.0, 250.0, 560.0, 560.0)).unwrap();
        let refined_out = warm
            .execute_with(
                &mut workspace,
                &QueryRequest::new(&refined, algorithm.clone()).cache(true),
            )
            .unwrap();
        assert!(!refined_out.stats.delta_prepare);
        // A traced delta step replaces grid_score with delta_prepare.
        let panned =
            LcmsrQuery::new(["restaurant"], 400.0, Rect::new(340.0, 240.0, 560.0, 560.0)).unwrap();
        let traced = warm
            .execute_with(
                &mut workspace,
                &QueryRequest::new(&panned, algorithm.clone())
                    .cache(true)
                    .trace(true),
            )
            .unwrap();
        assert!(traced.stats.delta_prepare);
        let cold_panned = cold
            .execute(&QueryRequest::new(&panned, algorithm.clone()))
            .unwrap();
        assert_eq!(
            regions_fingerprint(&traced.regions),
            regions_fingerprint(&cold_panned.regions)
        );
        let trace = traced.trace.expect("traced run");
        trace.validate().expect("well-formed delta trace");
        let (prepare, _) = trace.find("prepare").expect("prepare span");
        let children: Vec<&str> = trace
            .children_of(prepare)
            .map(|i| trace.spans[i as usize].label)
            .collect();
        assert!(
            children.contains(&"delta_prepare") && children.contains(&"graph_build"),
            "{children:?}"
        );
        assert!(trace.find("grid_score").is_none());
    }

    #[test]
    fn epoch_bump_invalidates_cache_and_session_scratch() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let query = LcmsrQuery::new(["restaurant"], 400.0, whole_rect(&network)).unwrap();
        let request =
            QueryRequest::new(&query, Algorithm::Greedy(GreedyParams::default())).cache(true);
        let mut workspace = QueryWorkspace::new();
        let first = engine.execute_with(&mut workspace, &request).unwrap();
        assert!(
            engine
                .execute_with(&mut workspace, &request)
                .unwrap()
                .stats
                .cache_hit
        );
        assert_eq!(engine.dataset_epoch(), 0);
        assert_eq!(engine.bump_dataset_epoch(), 1);
        let after = engine.execute_with(&mut workspace, &request).unwrap();
        assert!(!after.stats.cache_hit);
        assert!(after.stats.cache_stale, "old-epoch entry must read stale");
        assert!(
            !after.stats.delta_prepare,
            "old-epoch session scratch must not be reused"
        );
        assert_eq!(
            regions_fingerprint(&after.regions),
            regions_fingerprint(&first.regions),
            "dataset unchanged here, so the recomputed answer agrees"
        );
        assert_eq!(engine.response_cache().stale(), 1);
        // The recomputed response is cached under the new epoch.
        assert!(
            engine
                .execute_with(&mut workspace, &request)
                .unwrap()
                .stats
                .cache_hit
        );
    }

    #[test]
    fn partial_runs_are_never_cached() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        let rect = Rect::new(-50.0, -50.0, 250.0, 250.0);
        let query = LcmsrQuery::new(["restaurant"], 300.0, rect).unwrap();
        let doomed = QueryRequest::new(&query, Algorithm::Exact)
            .cache(true)
            .deadline(Deadline::after(Duration::ZERO));
        let partial = engine.execute(&doomed).unwrap();
        assert!(partial.is_partial());
        assert!(partial.stats.cache);
        assert_eq!(
            engine.response_cache().len(),
            0,
            "partial incumbents must not be pinned under the fingerprint"
        );
        // The deadline is not part of the fingerprint, so a completed run…
        let complete = engine
            .execute(&QueryRequest::new(&query, Algorithm::Exact).cache(true))
            .unwrap();
        assert!(!complete.stats.cache_hit);
        assert!(!complete.is_partial());
        // …serves later deadline-bound repeats of the same request complete.
        let replay = engine.execute(&doomed).unwrap();
        assert!(replay.stats.cache_hit);
        assert!(!replay.is_partial());
        assert_eq!(
            regions_fingerprint(&replay.regions),
            regions_fingerprint(&complete.regions)
        );
    }

    #[test]
    fn classic_paths_leave_the_cache_untouched() {
        let (network, collection) = small_world();
        let engine = LcmsrEngine::new(&network, &collection);
        assert!(!QueryOptions::default().cache);
        let queries = mixed_workload(&network);
        for query in queries.iter().take(8) {
            let _ = run1(&engine, query, &Algorithm::Greedy(GreedyParams::default())).unwrap();
        }
        let _ = batch1(
            &engine,
            &queries,
            &Algorithm::Tgen(TgenParams { alpha: 1.0 }),
            4,
        )
        .unwrap();
        let cache = engine.response_cache();
        assert!(cache.is_empty());
        assert_eq!(cache.hits() + cache.misses() + cache.stale(), 0);
    }
}
