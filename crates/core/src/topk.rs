//! Top-k LCMSR queries (Section 6.2).
//!
//! Instead of the single best region, the top-k variant returns the `k`
//! highest-scoring feasible regions (distinct node sets):
//!
//! * **APP** — after the candidate tree is found, `findOptTree` computes the
//!   tuple arrays of all its nodes and the best `k` regions are read off them;
//! * **TGEN** — the best `k` regions are collected from the explored tuple
//!   arrays while edges are processed;
//! * **Greedy** — regions are grown repeatedly, each time seeding at the
//!   largest-weight node not contained in any previous region.

use crate::app::{binary_search, AppParams};
use crate::arena::TupleArena;
use crate::cancel::CancelToken;
use crate::error::Result;
use crate::greedy::{run_greedy_excluding, GreedyParams};
use crate::kmst::make_solver;
use crate::opt_tree::find_opt_tree;
use crate::query_graph::QueryGraph;
use crate::region::RegionTuple;
use crate::tgen::{run_tgen, TgenParams};
use crate::trace::TraceCollector;

/// Orders candidate tuples with the shared quality order
/// ([`RegionTuple::cmp_quality`]) so `run_topk(…, 1)` agrees with the
/// single-region `run`.
fn rank(a: &RegionTuple, b: &RegionTuple) -> std::cmp::Ordering {
    a.cmp_quality(b)
}

/// Deduplicates by node set, keeping the first (best-ranked) occurrence, and
/// truncates to `k`.
fn dedupe_topk(arena: &TupleArena, mut tuples: Vec<RegionTuple>, k: usize) -> Vec<RegionTuple> {
    tuples.sort_by(rank);
    let mut out: Vec<RegionTuple> = Vec::with_capacity(k);
    for t in tuples {
        if out.iter().any(|existing| existing.same_nodes(&t, arena)) {
            continue;
        }
        out.push(t);
        if out.len() == k {
            break;
        }
    }
    out
}

/// Result of a top-k run: the ranked tuples plus the solver statistics the
/// engine reports in [`crate::stats::RunStats`] (previously the top-k path
/// silently dropped them).
#[derive(Debug, Clone, Default)]
pub struct TopKOutcome {
    /// The best `k` distinct feasible regions, best first.
    pub tuples: Vec<RegionTuple>,
    /// Number of k-MST oracle invocations (APP only).
    pub kmst_calls: u64,
    /// Number of region tuples materialised (APP's DP and TGEN).
    pub tuples_generated: u64,
    /// Number of greedy expansion steps across all seeds (Greedy only).
    pub greedy_steps: u64,
    /// Combine pairs skipped by the frontier's length-budget pruning
    /// (APP's DP and TGEN).
    pub pruned_pairs: u64,
    /// Tuples resident across the final tuple arrays (APP's DP and TGEN).
    pub frontier_tuples: u64,
    /// Largest single tuple array at the end of the run.
    pub frontier_peak: u64,
    /// Array entries evicted by dominating inserts across the run.
    pub dominance_evictions: u64,
    /// Whether any underlying stage stopped early on cancellation; `tuples`
    /// then holds the best feasible regions found before the interrupt.
    pub interrupted: bool,
}

/// Top-k via APP: quota binary search, then the tuple arrays of the candidate tree.
pub fn topk_app(
    graph: &QueryGraph,
    arena: &mut TupleArena,
    params: &AppParams,
    k: usize,
    ctl: &CancelToken,
    tracer: &mut TraceCollector,
) -> Result<TopKOutcome> {
    params.validate()?;
    if k == 0 || graph.sigma_max() <= 0.0 {
        return Ok(TopKOutcome::default());
    }
    let mut solver = make_solver(params.solver);
    let (candidate, _trace, search_interrupted) = binary_search(
        graph,
        arena,
        solver.as_mut(),
        params.beta,
        params.max_iterations,
        ctl,
        tracer,
    );
    let kmst_calls = solver.invocations();
    let Some(candidate) = candidate else {
        // Fall back to the k best single nodes.
        let mut singles: Vec<RegionTuple> = graph
            .node_indices()
            .filter(|&v| graph.weight(v) > 0.0)
            .map(|v| RegionTuple::singleton(arena, v, graph.weight(v), graph.scaled_weight(v)))
            .collect();
        let tuples_generated = singles.len() as u64;
        singles.sort_by(rank);
        singles.truncate(k);
        return Ok(TopKOutcome {
            tuples: singles,
            kmst_calls,
            tuples_generated,
            interrupted: search_interrupted,
            ..TopKOutcome::default()
        });
    };
    // Per Section 6.2, always compute the tuple arrays over the candidate tree.
    let span = tracer.start("find_opt_tree");
    let dp = find_opt_tree(graph, arena, &candidate, ctl, tracer);
    tracer.end_with(
        span,
        &[("tuples", dp.tuples_generated), ("pruned", dp.pruned_pairs)],
    );
    let tuples_generated = dp.tuples_generated;
    let pruned_pairs = dp.pruned_pairs;
    let dp_interrupted = dp.interrupted;
    let (frontier_tuples, frontier_peak, dominance_evictions) = dp.frontier_stats();
    // The runners-up are read straight off the candidate tree's frontier
    // arrays.  Chosen top-k semantics for dominated-but-distinct node sets:
    // a node set evicted from (or never admitted to) every array it touched
    // is not reported — whenever that happens, a dominating region (scaled
    // weight ≥, length ≤) is in the result instead.  Dominance filtering is
    // per array, so the merged list can still contain a set dominated by an
    // entry of a *different* node's array; only same-array dominance prunes.
    // Behaviour pinned byte-for-byte by the committed golden top-3 suite
    // (`tests/golden_regions.rs`), which PR 5 regenerated for exactly these
    // APP runner-up lines (17 of 384; every vanished region verified
    // dominated by a reported one — singles untouched).
    let mut all: Vec<RegionTuple> = dp
        .arrays
        .into_values()
        .flat_map(super::tuple_array::TupleArray::into_tuples)
        .filter(|t| t.length <= graph.delta() + 1e-9)
        .collect();
    if candidate.length <= graph.delta() + 1e-9 {
        all.push(candidate);
    }
    Ok(TopKOutcome {
        tuples: dedupe_topk(arena, all, k),
        kmst_calls,
        tuples_generated,
        greedy_steps: 0,
        pruned_pairs,
        frontier_tuples,
        frontier_peak,
        dominance_evictions,
        interrupted: search_interrupted || dp_interrupted,
    })
}

/// Top-k via TGEN: the best tuples gathered during edge processing.
pub fn topk_tgen(
    graph: &QueryGraph,
    arena: &mut TupleArena,
    params: &TgenParams,
    k: usize,
    ctl: &CancelToken,
    tracer: &mut TraceCollector,
) -> Result<TopKOutcome> {
    params.validate()?;
    if k == 0 {
        return Ok(TopKOutcome::default());
    }
    let outcome = run_tgen(graph, arena, params, ctl, tracer)?;
    Ok(TopKOutcome {
        tuples: dedupe_topk(arena, outcome.top_tuples, k),
        kmst_calls: 0,
        tuples_generated: outcome.tuples_generated,
        greedy_steps: 0,
        pruned_pairs: outcome.pruned_pairs,
        frontier_tuples: outcome.frontier_tuples,
        frontier_peak: outcome.frontier_peak,
        dominance_evictions: outcome.dominance_evictions,
        interrupted: outcome.interrupted,
    })
}

/// Top-k via Greedy: repeated expansion, each seeded outside previous regions.
pub fn topk_greedy(
    graph: &QueryGraph,
    arena: &mut TupleArena,
    params: &GreedyParams,
    k: usize,
    ctl: &CancelToken,
    tracer: &mut TraceCollector,
) -> Result<TopKOutcome> {
    params.validate()?;
    if k == 0 {
        return Ok(TopKOutcome::default());
    }
    let mut regions: Vec<RegionTuple> = Vec::with_capacity(k);
    let mut excluded: Vec<u32> = Vec::new();
    let mut greedy_steps = 0u64;
    let mut interrupted = false;
    for _ in 0..k {
        let span = tracer.start("candidate");
        let outcome = run_greedy_excluding(graph, arena, params, &excluded, ctl, tracer)?;
        tracer.end_with(span, &[("steps", outcome.steps)]);
        greedy_steps += outcome.steps;
        interrupted |= outcome.interrupted;
        let Some(region) = outcome.best else { break };
        excluded.extend_from_slice(region.nodes(arena));
        regions.push(region);
        if interrupted {
            // Completed seeds stay in the result; skip the remaining ones.
            break;
        }
    }
    // Regions are discovered seed-by-seed; report them best-first like the
    // other algorithms.
    regions.sort_by(rank);
    Ok(TopKOutcome {
        tuples: regions,
        greedy_steps,
        interrupted,
        ..TopKOutcome::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_graph::test_support::figure2_query_graph;

    #[test]
    fn ranks_and_dedupes() {
        let mut arena = TupleArena::new();
        let a = RegionTuple::from_parts(&mut arena, 2.0, 0.5, 50, &[1, 2], &[0]);
        let b = RegionTuple::from_parts(&mut arena, 1.0, 0.5, 50, &[1, 2], &[1]);
        let c = RegionTuple::from_parts(&mut arena, 4.0, 0.9, 90, &[3, 4], &[2]);
        let top = dedupe_topk(&arena, vec![a, b, c], 5);
        assert_eq!(top.len(), 2);
        assert!(top[0].same_nodes(&c, &arena));
        assert_eq!(top[1].length, b.length, "shorter duplicate must survive");
        let top1 = dedupe_topk(&arena, vec![b, c], 1);
        assert_eq!(top1.len(), 1);
        assert!(top1[0].same_nodes(&c, &arena));
    }

    #[test]
    fn topk_app_returns_distinct_feasible_regions_in_order() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        let outcome = topk_app(
            &qg,
            &mut arena,
            &AppParams::default(),
            3,
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap();
        assert!(outcome.kmst_calls > 0, "oracle invocations must be counted");
        assert!(outcome.tuples_generated > 0, "DP tuples must be counted");
        let regions = outcome.tuples;
        assert!(!regions.is_empty() && regions.len() <= 3);
        for r in &regions {
            assert!(r.length <= 6.0 + 1e-9);
        }
        for w in regions.windows(2) {
            assert!(w[0].scaled >= w[1].scaled);
            assert!(!w[0].same_nodes(&w[1], &arena));
        }
    }

    #[test]
    fn topk_tgen_first_region_matches_single_query() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        let params = TgenParams { alpha: 0.15 };
        let single = run_tgen(
            &qg,
            &mut arena,
            &params,
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap()
        .best
        .unwrap();
        arena.reset();
        let outcome = topk_tgen(
            &qg,
            &mut arena,
            &params,
            4,
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap();
        assert!(outcome.tuples_generated > 0, "TGEN tuples must be counted");
        assert_eq!(outcome.kmst_calls, 0);
        let regions = outcome.tuples;
        assert!(!regions.is_empty());
        assert_eq!(regions[0].scaled, single.scaled);
        for r in &regions {
            assert!(r.length <= 6.0 + 1e-9);
        }
        for w in regions.windows(2) {
            assert!(w[0].scaled >= w[1].scaled);
        }
    }

    #[test]
    fn topk_greedy_regions_have_disjoint_seeds() {
        let (_n, qg) = figure2_query_graph(2.0, 0.15);
        let mut arena = TupleArena::new();
        let outcome = topk_greedy(
            &qg,
            &mut arena,
            &GreedyParams::default(),
            3,
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap();
        let regions = outcome.tuples;
        assert!(regions.len() >= 2);
        // Every multi-node region required at least one expansion step.
        let multi: u64 = regions.iter().map(|r| (r.node_count() - 1) as u64).sum();
        assert!(outcome.greedy_steps >= multi);
        // Later regions never reuse an earlier region's nodes as their seed; with
        // a small ∆ the regions are in fact disjoint on this instance.
        for i in 0..regions.len() {
            for j in (i + 1)..regions.len() {
                assert!(!regions[i].same_nodes(&regions[j], &arena));
            }
        }
    }

    #[test]
    fn k_zero_and_irrelevant_queries_return_empty() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        assert!(topk_app(
            &qg,
            &mut arena,
            &AppParams::default(),
            0,
            &CancelToken::none(),
            &mut TraceCollector::disabled()
        )
        .unwrap()
        .tuples
        .is_empty());
        assert!(topk_tgen(
            &qg,
            &mut arena,
            &TgenParams { alpha: 0.15 },
            0,
            &CancelToken::none(),
            &mut TraceCollector::disabled()
        )
        .unwrap()
        .tuples
        .is_empty());
        assert!(topk_greedy(
            &qg,
            &mut arena,
            &GreedyParams::default(),
            0,
            &CancelToken::none(),
            &mut TraceCollector::disabled()
        )
        .unwrap()
        .tuples
        .is_empty());

        use lcmsr_geotext::collection::NodeWeights;
        use lcmsr_roadnet::subgraph::RegionView;
        let (network, _) = crate::query_graph::test_support::figure2();
        let view = RegionView::whole(&network);
        let qg0 = QueryGraph::build(&view, &NodeWeights::default(), 5.0, 0.5).unwrap();
        assert!(topk_app(
            &qg0,
            &mut arena,
            &AppParams::default(),
            3,
            &CancelToken::none(),
            &mut TraceCollector::disabled()
        )
        .unwrap()
        .tuples
        .is_empty());
        assert!(topk_tgen(
            &qg0,
            &mut arena,
            &TgenParams { alpha: 0.5 },
            3,
            &CancelToken::none(),
            &mut TraceCollector::disabled()
        )
        .unwrap()
        .tuples
        .is_empty());
        assert!(topk_greedy(
            &qg0,
            &mut arena,
            &GreedyParams::default(),
            3,
            &CancelToken::none(),
            &mut TraceCollector::disabled()
        )
        .unwrap()
        .tuples
        .is_empty());
    }

    #[test]
    fn larger_k_never_shrinks_the_result() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        let two = topk_tgen(
            &qg,
            &mut arena,
            &TgenParams { alpha: 0.15 },
            2,
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap()
        .tuples;
        let five = topk_tgen(
            &qg,
            &mut arena,
            &TgenParams { alpha: 0.15 },
            5,
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap()
        .tuples;
        assert!(five.len() >= two.len());
        // The first entries agree.
        assert!(five[0].same_nodes(&two[0], &arena));
    }
}
