//! Error types for LCMSR query processing.

use std::fmt;

/// Errors produced while validating or answering LCMSR queries.
#[derive(Debug, Clone, PartialEq)]
pub enum LcmsrError {
    /// The query has no keywords.
    EmptyKeywords,
    /// The length constraint `Q.∆` is not a positive finite number.
    InvalidDelta {
        /// The rejected value (metres).
        delta: f64,
    },
    /// The region of interest `Q.Λ` has zero or negative area.
    InvalidRegionOfInterest,
    /// An algorithm parameter is outside its valid range.
    InvalidParameter {
        /// Name of the parameter (e.g. "alpha").
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable description of the valid range.
        expected: &'static str,
    },
    /// The query region contains no node of the road network.
    EmptyQueryRegion,
    /// The exact solver was asked to handle a graph larger than it can enumerate.
    GraphTooLargeForExact {
        /// Number of nodes in the query region.
        nodes: usize,
        /// The solver's limit.
        limit: usize,
    },
}

impl fmt::Display for LcmsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LcmsrError::EmptyKeywords => write!(f, "LCMSR query must have at least one keyword"),
            LcmsrError::InvalidDelta { delta } => {
                write!(
                    f,
                    "length constraint must be positive and finite, got {delta}"
                )
            }
            LcmsrError::InvalidRegionOfInterest => {
                write!(f, "region of interest must have positive area")
            }
            LcmsrError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(
                f,
                "parameter {name} = {value} is invalid: expected {expected}"
            ),
            LcmsrError::EmptyQueryRegion => {
                write!(f, "the region of interest contains no road-network node")
            }
            LcmsrError::GraphTooLargeForExact { nodes, limit } => write!(
                f,
                "exact solver supports at most {limit} nodes, query region has {nodes}"
            ),
        }
    }
}

impl std::error::Error for LcmsrError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LcmsrError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(LcmsrError::EmptyKeywords.to_string().contains("keyword"));
        assert!(LcmsrError::InvalidDelta { delta: -1.0 }
            .to_string()
            .contains("-1"));
        assert!(LcmsrError::InvalidRegionOfInterest
            .to_string()
            .contains("area"));
        assert!(LcmsrError::InvalidParameter {
            name: "alpha",
            value: 2.0,
            expected: "0 < alpha < 1"
        }
        .to_string()
        .contains("alpha"));
        assert!(LcmsrError::EmptyQueryRegion.to_string().contains("no road"));
        assert!(LcmsrError::GraphTooLargeForExact {
            nodes: 100,
            limit: 20
        }
        .to_string()
        .contains("100"));
    }
}
