//! Goemans–Williamson primal–dual moat growing for the (unrooted)
//! prize-collecting Steiner tree problem, followed by strong pruning.
//!
//! This is the engine behind the Garg-style k-MST oracle: given per-node
//! prizes `π_v` (in the same unit as edge lengths), the growth phase produces a
//! forest and the pruning phase extracts, from the best component, a tree whose
//! prize-minus-cost trade-off is locally optimal.  Larger prizes keep more
//! nodes; the quota search in [`super::garg`] exploits this monotone behaviour.
//!
//! The implementation is the classical event-driven formulation: clusters of
//! nodes grow "moats" uniformly while they are active; an edge whose moats meet
//! merges two clusters; a cluster whose total prize is exhausted deactivates.
//! Each iteration scans all edges to find the next event, giving `O(n·m)`
//! worst-case time — adequate for query-region subgraphs, which is where it runs.

use crate::arena::TupleArena;
use crate::query_graph::QueryGraph;
use crate::region::RegionTuple;

const EPS: f64 = 1e-9;

/// Result of one GW growth + pruning run.
#[derive(Debug, Clone)]
pub struct PcstResult {
    /// The pruned tree (local node/edge ids) as a region tuple.
    pub tree: RegionTuple,
    /// Number of event-loop iterations performed (for statistics).
    pub iterations: usize,
}

/// Union-find with path compression.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) -> u32 {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
        rb
    }
}

/// Runs GW moat growing with the given per-node prizes and returns the pruned
/// tree of the best component (allocated in `arena`).
///
/// `prizes` must have one entry per local node.  The returned tree always
/// contains at least one node (the best single node when nothing larger pays off).
pub fn pcst(graph: &QueryGraph, arena: &mut TupleArena, prizes: &[f64]) -> PcstResult {
    let n = graph.node_count();
    assert_eq!(prizes.len(), n, "one prize per node required");
    let mut uf = UnionFind::new(n);
    // moat[v]: total dual grown around node v (depth of moats containing v).
    let mut moat = vec![0.0f64; n];
    // Per cluster root: remaining potential and activity flag.
    let mut remaining: Vec<f64> = prizes.to_vec();
    let mut active: Vec<bool> = prizes.iter().map(|&p| p > EPS).collect();
    let mut forest_edges: Vec<u32> = Vec::new();
    let mut iterations = 0usize;

    loop {
        iterations += 1;
        if iterations > 4 * n + 16 {
            break; // safety net; cannot happen with consistent events
        }
        // Find the next event.
        let mut best_dt = f64::INFINITY;
        enum Event {
            Edge(u32),
            Deactivate(u32),
            None,
        }
        let mut event = Event::None;
        // Edge events.
        for (idx, e) in graph.edges().iter().enumerate() {
            let ra = uf.find(e.a);
            let rb = uf.find(e.b);
            if ra == rb {
                continue;
            }
            let rate = (active[ra as usize] as u32 + active[rb as usize] as u32) as f64;
            if rate == 0.0 {
                continue;
            }
            let slack = e.length - moat[e.a as usize] - moat[e.b as usize];
            let dt = (slack / rate).max(0.0);
            if dt < best_dt - EPS {
                best_dt = dt;
                event = Event::Edge(idx as u32);
            }
        }
        // Cluster deactivation events.
        for v in 0..n as u32 {
            let r = uf.find(v);
            if r != v {
                continue; // only roots carry cluster state
            }
            if active[r as usize] {
                let dt = remaining[r as usize].max(0.0);
                if dt < best_dt - EPS {
                    best_dt = dt;
                    event = Event::Deactivate(r);
                }
            }
        }
        if matches!(event, Event::None) || !best_dt.is_finite() {
            break;
        }
        // Advance time by best_dt: grow moats of nodes in active clusters and
        // spend the active clusters' potential.
        if best_dt > 0.0 {
            for v in 0..n as u32 {
                let r = uf.find(v);
                if active[r as usize] {
                    moat[v as usize] += best_dt;
                }
            }
            for r in 0..n as u32 {
                if uf.find(r) == r && active[r as usize] {
                    remaining[r as usize] -= best_dt;
                }
            }
        }
        // Apply the event.
        match event {
            Event::Edge(idx) => {
                let e = graph.edge(idx);
                let ra = uf.find(e.a);
                let rb = uf.find(e.b);
                if ra == rb {
                    continue;
                }
                let merged_remaining =
                    remaining[ra as usize].max(0.0) + remaining[rb as usize].max(0.0);
                let new_root = uf.union(ra, rb);
                let other = if new_root == ra { rb } else { ra };
                remaining[new_root as usize] = merged_remaining;
                remaining[other as usize] = 0.0;
                active[new_root as usize] = merged_remaining > EPS;
                active[other as usize] = false;
                forest_edges.push(idx);
            }
            Event::Deactivate(r) => {
                active[r as usize] = false;
                remaining[r as usize] = 0.0;
            }
            Event::None => unreachable!(),
        }
        // Stop early when no active cluster remains.
        let any_active = (0..n as u32).any(|v| uf.find(v) == v && active[v as usize]);
        if !any_active {
            break;
        }
    }

    let tree = extract_best_pruned_tree(graph, arena, prizes, &forest_edges);
    PcstResult { tree, iterations }
}

/// From the GW forest, picks the component with the largest pruned value and
/// strong-prunes it: subtrees whose total prize does not pay for their
/// connecting edge are cut.
fn extract_best_pruned_tree(
    graph: &QueryGraph,
    arena: &mut TupleArena,
    prizes: &[f64],
    forest_edges: &[u32],
) -> RegionTuple {
    let n = graph.node_count();
    // Forest adjacency.
    let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
    for &e in forest_edges {
        let edge = graph.edge(e);
        adj[edge.a as usize].push((edge.b, e));
        adj[edge.b as usize].push((edge.a, e));
    }
    let mut visited = vec![false; n];
    let mut best: Option<(RegionTuple, f64)> = None;
    for start in 0..n as u32 {
        if visited[start as usize] {
            continue;
        }
        // Collect the component.
        let mut component = Vec::new();
        let mut stack = vec![start];
        visited[start as usize] = true;
        while let Some(v) = stack.pop() {
            component.push(v);
            for &(u, _) in &adj[v as usize] {
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    stack.push(u);
                }
            }
        }
        // Root the component at its highest-prize node and strong-prune.
        let root = *component
            .iter()
            .max_by(|&&a, &&b| {
                prizes[a as usize]
                    .partial_cmp(&prizes[b as usize])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap();
        let pruned = strong_prune(graph, arena, prizes, &adj, root);
        let candidate_value: f64 = pruned
            .nodes(arena)
            .iter()
            .map(|&v| prizes[v as usize])
            .sum::<f64>()
            - pruned.length;
        let best_value = best.as_ref().map_or(f64::NEG_INFINITY, |(_, v)| *v);
        if candidate_value > best_value {
            // The displaced tree has a single owner here — recycle it.
            if let Some((old, _)) = best.replace((pruned, candidate_value)) {
                old.free(arena);
            }
        } else {
            pruned.free(arena);
        }
    }
    best.map_or_else(
        || {
            // Degenerate case (no nodes): cannot happen because QueryGraph is non-empty.
            RegionTuple::singleton(arena, 0, graph.weight(0), graph.scaled_weight(0))
        },
        |(t, _)| t,
    )
}

/// Strong pruning: rooted DP keeping a child subtree only when its net worth
/// exceeds the cost of the edge connecting it.  Returns the pruned tree
/// containing `root` as a region tuple with graph weights.
fn strong_prune(
    graph: &QueryGraph,
    arena: &mut TupleArena,
    prizes: &[f64],
    adj: &[Vec<(u32, u32)>],
    root: u32,
) -> RegionTuple {
    // Iterative post-order over the tree rooted at `root`.
    let n = graph.node_count();
    let mut parent: Vec<Option<(u32, u32)>> = vec![None; n]; // (parent node, edge)
    let mut order = Vec::new();
    let mut stack = vec![root];
    let mut seen = vec![false; n];
    seen[root as usize] = true;
    while let Some(v) = stack.pop() {
        order.push(v);
        for &(u, e) in &adj[v as usize] {
            if !seen[u as usize] {
                seen[u as usize] = true;
                parent[u as usize] = Some((v, e));
                stack.push(u);
            }
        }
    }
    // net[v] = prize(v) + Σ_{kept children} (net[c] − cost(v,c)); kept[c] records the decision.
    let mut net = vec![0.0f64; n];
    let mut kept_edge = vec![false; graph.edge_count()];
    for &v in order.iter().rev() {
        net[v as usize] = prizes[v as usize];
    }
    for &v in order.iter().rev() {
        if let Some((p, e)) = parent[v as usize] {
            let gain = net[v as usize] - graph.edge(e).length;
            if gain > EPS {
                net[p as usize] += gain;
                kept_edge[e as usize] = true;
            }
        }
    }
    // Collect the nodes reachable from root through kept edges.
    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    let mut length = 0.0;
    let mut stack = vec![root];
    let mut included = vec![false; n];
    included[root as usize] = true;
    while let Some(v) = stack.pop() {
        nodes.push(v);
        for &(u, e) in &adj[v as usize] {
            // Only descend child edges (u's parent is v) that were kept.
            if parent[u as usize] == Some((v, e)) && kept_edge[e as usize] && !included[u as usize]
            {
                included[u as usize] = true;
                edges.push(e);
                length += graph.edge(e).length;
                stack.push(u);
            }
        }
    }
    nodes.sort_unstable();
    edges.sort_unstable();
    let weight: f64 = nodes.iter().map(|&v| graph.weight(v)).sum();
    let scaled: u64 = nodes.iter().map(|&v| graph.scaled_weight(v)).sum();
    RegionTuple::from_parts(arena, length, weight, scaled, &nodes, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmst::validate_tree;
    use crate::query_graph::test_support::figure2_query_graph;

    #[test]
    fn zero_prizes_give_a_singleton() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        let prizes = vec![0.0; qg.node_count()];
        let result = pcst(&qg, &mut arena, &prizes);
        assert_eq!(result.tree.node_count(), 1);
        assert_eq!(result.tree.edge_count(), 0);
    }

    #[test]
    fn huge_prizes_span_the_whole_graph() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        let prizes = vec![1000.0; qg.node_count()];
        let result = pcst(&qg, &mut arena, &prizes);
        assert_eq!(result.tree.node_count(), qg.node_count());
        assert_eq!(result.tree.edge_count(), qg.node_count() - 1);
        validate_tree(&qg, &arena, &result.tree);
        // A spanning tree of Figure 2 cannot be longer than the total edge length.
        let total: f64 = qg.edges().iter().map(|e| e.length).sum();
        assert!(result.tree.length < total);
    }

    #[test]
    fn moderate_prizes_keep_the_profitable_cluster() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        // Prize 2.0 at v1, v2, v6 (local 0, 1, 5) which form a cheap triangle
        // (edges 1.0 and 1.6), tiny prizes elsewhere: the expensive far nodes
        // should be pruned away.
        let mut arena = TupleArena::new();
        let mut prizes = vec![0.01; qg.node_count()];
        prizes[0] = 2.0;
        prizes[1] = 2.0;
        prizes[5] = 2.0;
        let result = pcst(&qg, &mut arena, &prizes);
        validate_tree(&qg, &arena, &result.tree);
        assert!(result.tree.contains_node(0, &arena));
        assert!(result.tree.contains_node(1, &arena));
        assert!(result.tree.contains_node(5, &arena));
        assert!(result.tree.node_count() <= 4, "far nodes should be pruned");
    }

    #[test]
    fn prizes_proportional_to_scaled_weights_behave_monotonically() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let base: Vec<f64> = (0..qg.node_count() as u32)
            .map(|v| qg.scaled_weight(v) as f64)
            .collect();
        let mut arena = TupleArena::new();
        let mut previous_scaled = 0;
        for lambda in [0.0001, 0.01, 0.05, 0.2, 1.0] {
            let prizes: Vec<f64> = base.iter().map(|&b| b * lambda).collect();
            let result = pcst(&qg, &mut arena, &prizes);
            validate_tree(&qg, &arena, &result.tree);
            // The kept scaled weight should not decrease as λ grows.
            assert!(
                result.tree.scaled >= previous_scaled,
                "λ={lambda}: scaled {} < previous {previous_scaled}",
                result.tree.scaled
            );
            previous_scaled = result.tree.scaled;
        }
        assert_eq!(previous_scaled, qg.total_scaled_weight());
    }

    #[test]
    fn result_tree_is_always_valid_on_a_line_graph() {
        use lcmsr_geotext::collection::NodeWeights;
        use lcmsr_roadnet::builder::GraphBuilder;
        use lcmsr_roadnet::geo::Point;
        use lcmsr_roadnet::node::NodeId;
        use lcmsr_roadnet::subgraph::RegionView;

        let mut b = GraphBuilder::new();
        let ids: Vec<_> = (0..6)
            .map(|i| b.add_node(Point::new(i as f64 * 10.0, 0.0)))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], 10.0).unwrap();
        }
        let network = b.build().unwrap();
        let mut weights = NodeWeights::default();
        weights.by_node.insert(NodeId(0), 1.0);
        weights.by_node.insert(NodeId(5), 1.0);
        let view = RegionView::whole(&network);
        let qg = QueryGraph::build(&view, &weights, 100.0, 0.5).unwrap();
        let mut arena = TupleArena::new();
        for lambda in [0.1, 1.0, 10.0, 60.0] {
            let prizes: Vec<f64> = (0..qg.node_count() as u32)
                .map(|v| qg.scaled_weight(v) as f64 * lambda)
                .collect();
            let r = pcst(&qg, &mut arena, &prizes);
            validate_tree(&qg, &arena, &r.tree);
        }
        // With a very large λ the tree must connect both prize nodes across the
        // zero-weight middle nodes (a Steiner-style connection).
        let prizes: Vec<f64> = (0..qg.node_count() as u32)
            .map(|v| qg.scaled_weight(v) as f64 * 100.0)
            .collect();
        let r = pcst(&qg, &mut arena, &prizes);
        assert_eq!(r.tree.node_count(), 6);
        assert!((r.tree.length - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one prize per node")]
    fn wrong_prize_length_panics() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let _ = pcst(&qg, &mut TupleArena::new(), &[1.0, 2.0]);
    }
}
