//! Garg-style quota search on top of the GW primal–dual.
//!
//! Garg's 3-approximation for k-MST runs the Goemans–Williamson
//! prize-collecting algorithm with a uniform per-unit prize `λ` and searches
//! for the `λ` at which the collected weight reaches the quota.  We do the same
//! for the node-weighted variant used by APP: prizes are `λ·σ̂_v` and `λ` is
//! bisected until the pruned GW tree's scaled weight reaches the quota, keeping
//! the smallest such tree.  Results are cached per `λ` because APP's outer
//! binary search issues many quota queries against the same graph.

use super::gw::pcst;
use super::KMstSolver;
use crate::arena::TupleArena;
use crate::cancel::CancelToken;
use crate::query_graph::QueryGraph;
use crate::region::RegionTuple;
use crate::trace::TraceCollector;
use std::collections::BTreeMap;

/// Default number of λ-bisection steps.
const DEFAULT_LAMBDA_STEPS: usize = 14;
/// Maximum number of doublings when searching for an upper λ bound.
const MAX_DOUBLINGS: usize = 24;

/// The GW/Garg-style node-weighted k-MST oracle.
#[derive(Debug)]
pub struct GargKMst {
    lambda_steps: usize,
    cache: BTreeMap<u64, RegionTuple>,
    /// Arena generation the cached handles belong to; the cache is dropped
    /// whenever the caller's arena identity or reset count differs (cached
    /// `RegionTuple`s are handles — after a reset they would dangle).
    cache_generation: Option<(u64, u64)>,
    invocations: u64,
    gw_runs: u64,
}

impl Default for GargKMst {
    fn default() -> Self {
        Self::new()
    }
}

impl GargKMst {
    /// Creates a solver with the default λ-bisection depth.
    pub fn new() -> Self {
        GargKMst {
            lambda_steps: DEFAULT_LAMBDA_STEPS,
            cache: BTreeMap::new(),
            cache_generation: None,
            invocations: 0,
            gw_runs: 0,
        }
    }

    /// Creates a solver with a custom λ-bisection depth (more steps → slightly
    /// shorter trees, more GW runs).
    pub fn with_lambda_steps(steps: usize) -> Self {
        GargKMst {
            lambda_steps: steps.max(4),
            ..Self::new()
        }
    }

    /// Number of underlying GW runs performed so far (cache misses).
    pub fn gw_runs(&self) -> u64 {
        self.gw_runs
    }

    /// Clears the λ cache.  Call when switching to a different query graph
    /// (arena switches and resets are detected automatically via
    /// [`TupleArena::generation`]).
    pub fn reset_cache(&mut self) {
        self.cache.clear();
        self.cache_generation = None;
    }

    /// Drops cached trees whose handles do not belong to `arena`'s current
    /// generation — they would dangle into reset or foreign slab memory.
    fn sync_cache_to(&mut self, arena: &TupleArena) {
        let generation = arena.generation();
        if self.cache_generation != Some(generation) {
            self.cache.clear();
            self.cache_generation = Some(generation);
        }
    }

    fn tree_for_lambda(
        &mut self,
        graph: &QueryGraph,
        arena: &mut TupleArena,
        lambda: f64,
    ) -> RegionTuple {
        let key = lambda.to_bits();
        if let Some(t) = self.cache.get(&key) {
            return *t;
        }
        let prizes: Vec<f64> = (0..graph.node_count() as u32)
            .map(|v| graph.scaled_weight(v) as f64 * lambda)
            .collect();
        self.gw_runs += 1;
        let result = pcst(graph, arena, &prizes);
        self.cache.insert(key, result.tree);
        result.tree
    }

    /// The best single node as a degenerate tree (used for quota 0 or tiny quotas).
    fn best_singleton(graph: &QueryGraph, arena: &mut TupleArena) -> RegionTuple {
        let v = graph
            .node_indices()
            .max_by_key(|&v| graph.scaled_weight(v))
            .unwrap_or(0);
        RegionTuple::singleton(arena, v, graph.weight(v), graph.scaled_weight(v))
    }
}

impl KMstSolver for GargKMst {
    fn solve(
        &mut self,
        graph: &QueryGraph,
        arena: &mut TupleArena,
        quota: u64,
        ctl: &CancelToken,
        tracer: &mut TraceCollector,
    ) -> Option<RegionTuple> {
        self.invocations += 1;
        self.sync_cache_to(arena);
        let best_single = Self::best_singleton(graph, arena);
        if quota == 0 || best_single.scaled >= quota {
            return Some(best_single);
        }
        if graph.total_scaled_weight() < quota {
            return None;
        }
        // Establish an upper λ bound that reaches the quota.
        let total_length: f64 = graph.edges().iter().map(|e| e.length).sum();
        let mut lambda_hi = (total_length.max(1.0) / quota.max(1) as f64).max(1e-6);
        let mut hi_tree = self.tree_for_lambda(graph, arena, lambda_hi);
        let mut doublings = 0;
        while hi_tree.scaled < quota && doublings < MAX_DOUBLINGS {
            if ctl.is_cancelled() {
                // No quota-meeting tree yet; nothing partial to hand back.
                return None;
            }
            let span = tracer.start("lambda_double");
            lambda_hi *= 2.0;
            hi_tree = self.tree_for_lambda(graph, arena, lambda_hi);
            doublings += 1;
            tracer.end_with(span, &[("scaled", hi_tree.scaled)]);
        }
        if hi_tree.scaled < quota {
            // GW pruning kept less than the quota even with huge prizes (can
            // happen when the graph is disconnected inside Q.Λ and no single
            // component reaches the quota).
            return None;
        }
        // Bisect λ keeping the smallest tree that meets the quota.
        let mut lo = 0.0f64;
        let mut best = hi_tree;
        let mut hi = lambda_hi;
        for _ in 0..self.lambda_steps {
            // `best` already meets the quota — on cancellation, stop
            // tightening and return it as-is.
            if ctl.is_cancelled() {
                break;
            }
            let mid = (lo + hi) / 2.0;
            if mid <= lo || mid >= hi {
                break;
            }
            let span = tracer.start("lambda_step");
            let tree = self.tree_for_lambda(graph, arena, mid);
            let meets = tree.scaled >= quota;
            if meets {
                if tree.length < best.length
                    || (tree.length <= best.length + 1e-12 && tree.scaled > best.scaled)
                {
                    best = tree;
                }
                hi = mid;
            } else {
                lo = mid;
            }
            tracer.end_with(
                span,
                &[("scaled", tree.scaled), ("meets_quota", meets as u64)],
            );
        }
        Some(best)
    }

    fn name(&self) -> &'static str {
        "garg-gw"
    }

    fn invocations(&self) -> u64 {
        self.invocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmst::validate_tree;
    use crate::query_graph::test_support::figure2_query_graph;

    #[test]
    fn quota_zero_returns_best_singleton() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        let mut solver = GargKMst::new();
        let t = solver
            .solve(
                &qg,
                &mut arena,
                0,
                &CancelToken::none(),
                &mut TraceCollector::disabled(),
            )
            .unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.scaled, 40); // a 0.4-weight node scaled 100×
        assert_eq!(solver.invocations(), 1);
    }

    #[test]
    fn unreachable_quota_returns_none() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let total = qg.total_scaled_weight();
        let mut arena = TupleArena::new();
        let mut solver = GargKMst::new();
        assert!(solver
            .solve(
                &qg,
                &mut arena,
                total + 1,
                &CancelToken::none(),
                &mut TraceCollector::disabled()
            )
            .is_none());
        assert!(solver
            .solve(
                &qg,
                &mut arena,
                total,
                &CancelToken::none(),
                &mut TraceCollector::disabled()
            )
            .is_some());
    }

    #[test]
    fn returned_trees_meet_the_quota_and_are_valid() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        let mut solver = GargKMst::new();
        for quota in [10u64, 40, 70, 90, 110, 130, 150, 170] {
            let t = solver
                .solve(
                    &qg,
                    &mut arena,
                    quota,
                    &CancelToken::none(),
                    &mut TraceCollector::disabled(),
                )
                .unwrap_or_else(|| panic!("quota {quota} should be attainable"));
            assert!(t.scaled >= quota, "quota {quota}, got {}", t.scaled);
            validate_tree(&qg, &arena, &t);
        }
    }

    #[test]
    fn larger_quotas_produce_longer_trees() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        let mut solver = GargKMst::new();
        let small = solver
            .solve(
                &qg,
                &mut arena,
                40,
                &CancelToken::none(),
                &mut TraceCollector::disabled(),
            )
            .unwrap();
        let large = solver
            .solve(
                &qg,
                &mut arena,
                150,
                &CancelToken::none(),
                &mut TraceCollector::disabled(),
            )
            .unwrap();
        assert!(large.length >= small.length);
        assert!(large.node_count() >= small.node_count());
    }

    #[test]
    fn tree_length_is_reasonable_for_known_instance() {
        // Figure 2 with quota 110 (the example optimal region's scaled weight):
        // the optimum connects {v2,v4,v5,v6} with length 5.9; a 3-approximation
        // style oracle should stay within a small constant factor.
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        let mut solver = GargKMst::new();
        let t = solver
            .solve(
                &qg,
                &mut arena,
                110,
                &CancelToken::none(),
                &mut TraceCollector::disabled(),
            )
            .unwrap();
        assert!(t.scaled >= 110);
        assert!(
            t.length <= 3.0 * 5.9 + 1e-9,
            "length {} exceeds 3x the optimum",
            t.length
        );
    }

    #[test]
    fn cache_prevents_repeated_gw_runs() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        let mut solver = GargKMst::new();
        let _ = solver.solve(
            &qg,
            &mut arena,
            100,
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        );
        let runs_after_first = solver.gw_runs();
        let _ = solver.solve(
            &qg,
            &mut arena,
            100,
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        );
        // The second identical call should be mostly served from the cache.
        assert!(solver.gw_runs() <= runs_after_first + 2);
        solver.reset_cache();
        let _ = solver.solve(
            &qg,
            &mut arena,
            100,
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        );
        assert!(solver.gw_runs() > runs_after_first);
    }

    #[test]
    fn cache_survives_neither_arena_resets_nor_arena_switches() {
        // Cached trees are arena handles: reusing one solver after a reset
        // (or with a different arena) must re-run GW instead of returning
        // handles that dangle into reclaimed slab memory.
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut solver = GargKMst::new();
        let mut arena = TupleArena::new();
        let first = solver
            .solve(
                &qg,
                &mut arena,
                110,
                &CancelToken::none(),
                &mut TraceCollector::disabled(),
            )
            .unwrap();
        validate_tree(&qg, &arena, &first);
        let first_nodes: Vec<u32> = first.nodes(&arena).to_vec();
        let runs_warm = solver.gw_runs();

        // Same arena, no reset: served from cache.
        let again = solver
            .solve(
                &qg,
                &mut arena,
                110,
                &CancelToken::none(),
                &mut TraceCollector::disabled(),
            )
            .unwrap();
        assert_eq!(again.nodes(&arena), first_nodes.as_slice());
        assert!(solver.gw_runs() <= runs_warm + 2);

        // Reset between queries: the stale cache must be dropped and the
        // result still be a valid identical tree in the fresh slab.
        arena.reset();
        let after_reset = solver
            .solve(
                &qg,
                &mut arena,
                110,
                &CancelToken::none(),
                &mut TraceCollector::disabled(),
            )
            .unwrap();
        validate_tree(&qg, &arena, &after_reset);
        assert_eq!(after_reset.nodes(&arena), first_nodes.as_slice());
        assert!(
            solver.gw_runs() > runs_warm,
            "reset must invalidate the cache"
        );

        // A different arena entirely gets the same treatment.
        let runs_reset = solver.gw_runs();
        let mut other = TupleArena::new();
        let cross = solver
            .solve(
                &qg,
                &mut other,
                110,
                &CancelToken::none(),
                &mut TraceCollector::disabled(),
            )
            .unwrap();
        validate_tree(&qg, &other, &cross);
        assert_eq!(cross.nodes(&other), first_nodes.as_slice());
        assert!(solver.gw_runs() > runs_reset);
    }

    #[test]
    fn custom_lambda_steps_are_clamped() {
        let solver = GargKMst::with_lambda_steps(1);
        assert_eq!(solver.lambda_steps, 4);
        let solver = GargKMst::with_lambda_steps(20);
        assert_eq!(solver.lambda_steps, 20);
    }
}
