//! Node-weighted k-MST oracles.
//!
//! APP (Section 4) relies on a solver for the *node-weighted k minimum spanning
//! tree* problem: given integer node weights and a weight quota `X`, find the
//! tree with the smallest total edge length whose nodes have total weight at
//! least `X`.  The paper adopts Garg's 3-approximation, which is built on the
//! Goemans–Williamson primal–dual technique for constrained forest problems.
//!
//! This module provides the [`KMstSolver`] trait and two implementations:
//!
//! * [`garg::GargKMst`] — the default; runs the GW prize-collecting
//!   Steiner-tree primal–dual ([`gw`]) with per-node prizes `λ·σ̂_v` and
//!   bisects `λ` until the quota is met, mirroring the structure of Garg's
//!   algorithm (see DESIGN.md §4 for the substitution note),
//! * [`density::DensityKMst`] — a fast multi-root greedy used as an ablation
//!   baseline and as a fallback.

pub mod density;
pub mod garg;
pub mod gw;

use crate::arena::TupleArena;
use crate::cancel::CancelToken;
use crate::query_graph::QueryGraph;
use crate::region::RegionTuple;
use crate::trace::TraceCollector;

/// A solver for the node-weighted k-MST problem on a query graph.
pub trait KMstSolver {
    /// Returns a tree (as a region tuple) whose total *scaled* node weight is at
    /// least `quota`, with total edge length as small as the solver can manage.
    /// The tree's node/edge sets are allocated in `arena` and stay live until
    /// the arena is reset (solvers may cache and return the same handles for
    /// repeated quotas).
    ///
    /// Returns `None` when no tree in the query graph can reach the quota
    /// (i.e. the quota exceeds the total scaled weight of the graph).
    ///
    /// Solvers poll `ctl` at their outer iteration boundaries (λ-bisection
    /// steps, candidate roots) and, once it fires, return the best
    /// quota-meeting tree found so far — or `None` when none has been found
    /// yet.  Callers detect the interruption through the token itself.
    ///
    /// The same boundaries record spans into `tracer` (λ-bisection iterations,
    /// candidate roots); a disabled collector costs one predicted branch, like
    /// the inert token.
    fn solve(
        &mut self,
        graph: &QueryGraph,
        arena: &mut TupleArena,
        quota: u64,
        ctl: &CancelToken,
        tracer: &mut TraceCollector,
    ) -> Option<RegionTuple>;

    /// Human-readable solver name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Number of times the underlying optimisation routine ran (for statistics).
    fn invocations(&self) -> u64;
}

/// Which k-MST oracle APP should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KMstSolverKind {
    /// GW primal–dual with λ-bisection (Garg-style); the default.
    #[default]
    Garg,
    /// Multi-root density greedy (fast ablation baseline).
    Density,
}

/// Instantiates a boxed solver of the requested kind.
pub fn make_solver(kind: KMstSolverKind) -> Box<dyn KMstSolver> {
    match kind {
        KMstSolverKind::Garg => Box::new(garg::GargKMst::new()),
        KMstSolverKind::Density => Box::new(density::DensityKMst::new()),
    }
}

/// Checks that a tuple returned by a solver is a valid tree in the graph:
/// connected, edge endpoints inside the node set, |E| = |V| − 1, and measures
/// consistent with the graph.  Used by tests for every solver.
#[cfg(test)]
pub(crate) fn validate_tree(graph: &QueryGraph, arena: &TupleArena, tree: &RegionTuple) {
    use std::collections::{BTreeMap, BTreeSet, VecDeque};
    let nodes = tree.nodes(arena);
    let edges = tree.edges(arena);
    assert!(!nodes.is_empty(), "tree has no nodes");
    assert_eq!(edges.len() + 1, nodes.len(), "a tree must have |V|-1 edges");
    let node_set: BTreeSet<u32> = nodes.iter().copied().collect();
    assert_eq!(node_set.len(), nodes.len(), "duplicate nodes");
    let mut adj: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    let mut length = 0.0;
    for &e in edges {
        let edge = graph.edge(e);
        assert!(node_set.contains(&edge.a) && node_set.contains(&edge.b));
        adj.entry(edge.a).or_default().push(edge.b);
        adj.entry(edge.b).or_default().push(edge.a);
        length += edge.length;
    }
    assert!((length - tree.length).abs() < 1e-6, "length mismatch");
    let weight: f64 = nodes.iter().map(|&v| graph.weight(v)).sum();
    assert!((weight - tree.weight).abs() < 1e-6, "weight mismatch");
    let scaled: u64 = nodes.iter().map(|&v| graph.scaled_weight(v)).sum();
    assert_eq!(scaled, tree.scaled, "scaled weight mismatch");
    // Connectivity.
    let mut seen = BTreeSet::new();
    let mut q = VecDeque::new();
    seen.insert(nodes[0]);
    q.push_back(nodes[0]);
    while let Some(v) = q.pop_front() {
        if let Some(ns) = adj.get(&v) {
            for &n in ns {
                if seen.insert(n) {
                    q.push_back(n);
                }
            }
        }
    }
    assert_eq!(seen.len(), nodes.len(), "tree is not connected");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_solver_returns_requested_kind() {
        assert_eq!(make_solver(KMstSolverKind::Garg).name(), "garg-gw");
        assert_eq!(make_solver(KMstSolverKind::Density).name(), "density");
        assert_eq!(KMstSolverKind::default(), KMstSolverKind::Garg);
    }
}
