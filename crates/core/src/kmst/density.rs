//! A fast density-greedy node-weighted k-MST heuristic.
//!
//! Used as an ablation baseline against the GW/Garg oracle and as a cheap
//! fallback.  From each of a handful of high-weight roots it repeatedly runs a
//! multi-source shortest-path search from the current tree and attaches the
//! relevant node with the best scaled-weight-per-connection-length ratio
//! (together with its connecting path) until the quota is met; the shortest
//! tree over all roots wins.

use super::KMstSolver;
use crate::arena::TupleArena;
use crate::cancel::CancelToken;
use crate::query_graph::QueryGraph;
use crate::region::RegionTuple;
use crate::trace::TraceCollector;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Number of alternative roots tried by default.
const DEFAULT_ROOTS: usize = 4;

/// The density-greedy k-MST heuristic.
#[derive(Debug)]
pub struct DensityKMst {
    roots: usize,
    invocations: u64,
}

impl Default for DensityKMst {
    fn default() -> Self {
        Self::new()
    }
}

impl DensityKMst {
    /// Creates a solver trying the default number of roots.
    pub fn new() -> Self {
        DensityKMst {
            roots: DEFAULT_ROOTS,
            invocations: 0,
        }
    }

    /// Creates a solver trying `roots` alternative starting nodes.
    pub fn with_roots(roots: usize) -> Self {
        DensityKMst {
            roots: roots.max(1),
            invocations: 0,
        }
    }

    /// Grows a quota tree from `root`; returns `None` when the quota cannot be
    /// reached from this root's connected component.
    fn grow(
        graph: &QueryGraph,
        arena: &mut TupleArena,
        root: u32,
        quota: u64,
        ctl: &CancelToken,
    ) -> Option<RegionTuple> {
        let n = graph.node_count();
        let mut in_tree = vec![false; n];
        let mut tree_nodes = vec![root];
        let mut tree_edges: Vec<u32> = Vec::new();
        let mut length = 0.0f64;
        let mut scaled = graph.scaled_weight(root);
        in_tree[root as usize] = true;

        while scaled < quota {
            // A tree below the quota is not a usable partial answer, so a
            // cancelled grow abandons the root entirely.
            if ctl.is_cancelled() {
                return None;
            }
            // Multi-source Dijkstra from the current tree.
            let mut dist = vec![f64::INFINITY; n];
            let mut prev: Vec<Option<(u32, u32)>> = vec![None; n];
            let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
            for &v in &tree_nodes {
                dist[v as usize] = 0.0;
                heap.push(HeapEntry { dist: 0.0, node: v });
            }
            while let Some(HeapEntry { dist: d, node: v }) = heap.pop() {
                if d > dist[v as usize] {
                    continue;
                }
                for &(u, e) in graph.neighbors(v) {
                    let nd = d + graph.edge(e).length;
                    if nd < dist[u as usize] {
                        dist[u as usize] = nd;
                        prev[u as usize] = Some((v, e));
                        heap.push(HeapEntry { dist: nd, node: u });
                    }
                }
            }
            // Pick the best relevant node outside the tree by ratio σ̂ / distance.
            let mut best: Option<(u32, f64)> = None;
            for v in 0..n as u32 {
                if in_tree[v as usize] || graph.scaled_weight(v) == 0 {
                    continue;
                }
                let d = dist[v as usize];
                if !d.is_finite() || d <= 0.0 {
                    continue;
                }
                let ratio = graph.scaled_weight(v) as f64 / d;
                if best.map_or(true, |(_, r)| ratio > r) {
                    best = Some((v, ratio));
                }
            }
            let (target, _) = best?;
            // Attach the shortest path from the tree to `target`.
            let mut cur = target;
            let mut path_nodes = Vec::new();
            let mut path_edges = Vec::new();
            while !in_tree[cur as usize] {
                path_nodes.push(cur);
                let (p, e) = prev[cur as usize].expect("path must lead back to the tree");
                path_edges.push(e);
                cur = p;
            }
            for &v in &path_nodes {
                in_tree[v as usize] = true;
                tree_nodes.push(v);
                scaled += graph.scaled_weight(v);
            }
            for &e in &path_edges {
                tree_edges.push(e);
                length += graph.edge(e).length;
            }
        }
        tree_nodes.sort_unstable();
        tree_edges.sort_unstable();
        let weight = tree_nodes.iter().map(|&v| graph.weight(v)).sum();
        Some(RegionTuple::from_parts(
            arena,
            length,
            weight,
            scaled,
            &tree_nodes,
            &tree_edges,
        ))
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl KMstSolver for DensityKMst {
    fn solve(
        &mut self,
        graph: &QueryGraph,
        arena: &mut TupleArena,
        quota: u64,
        ctl: &CancelToken,
        tracer: &mut TraceCollector,
    ) -> Option<RegionTuple> {
        self.invocations += 1;
        // Candidate roots: the highest-scaled-weight nodes.
        let mut candidates: Vec<u32> = graph
            .node_indices()
            .filter(|&v| graph.scaled_weight(v) > 0)
            .collect();
        if candidates.is_empty() {
            return if quota == 0 {
                Some(RegionTuple::singleton(
                    arena,
                    0,
                    graph.weight(0),
                    graph.scaled_weight(0),
                ))
            } else {
                None
            };
        }
        candidates.sort_by_key(|&v| std::cmp::Reverse(graph.scaled_weight(v)));
        candidates.truncate(self.roots);
        if graph.total_scaled_weight() < quota {
            return None;
        }
        let mut best: Option<RegionTuple> = None;
        for &root in &candidates {
            // Every completed root already yields a quota-meeting tree, so on
            // cancellation skip the remaining roots and return the best so far.
            if ctl.is_cancelled() {
                break;
            }
            let span = tracer.start("density_root");
            let grown = Self::grow(graph, arena, root, quota, ctl);
            tracer.end_with(
                span,
                &[
                    ("root", u64::from(root)),
                    ("scaled", grown.map_or(0, |t| t.scaled)),
                ],
            );
            if let Some(tree) = grown {
                let better = best.as_ref().map_or(true, |b| tree.length < b.length);
                if better {
                    // The displaced tree has a single owner — recycle it.
                    if let Some(old) = best.replace(tree) {
                        old.free(arena);
                    }
                } else {
                    tree.free(arena);
                }
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "density"
    }

    fn invocations(&self) -> u64 {
        self.invocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmst::validate_tree;
    use crate::query_graph::test_support::figure2_query_graph;

    #[test]
    fn meets_quota_with_valid_trees() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        let mut solver = DensityKMst::new();
        for quota in [10u64, 40, 70, 110, 150, 170] {
            let t = solver
                .solve(
                    &qg,
                    &mut arena,
                    quota,
                    &CancelToken::none(),
                    &mut TraceCollector::disabled(),
                )
                .unwrap();
            assert!(t.scaled >= quota);
            validate_tree(&qg, &arena, &t);
        }
        assert_eq!(solver.invocations(), 6);
        assert_eq!(solver.name(), "density");
    }

    #[test]
    fn unreachable_quota_is_rejected() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut solver = DensityKMst::new();
        let mut arena = TupleArena::new();
        assert!(solver
            .solve(
                &qg,
                &mut arena,
                qg.total_scaled_weight() + 1,
                &CancelToken::none(),
                &mut TraceCollector::disabled()
            )
            .is_none());
    }

    #[test]
    fn quota_zero_on_weightless_graph() {
        use lcmsr_geotext::collection::NodeWeights;
        use lcmsr_roadnet::builder::GraphBuilder;
        use lcmsr_roadnet::geo::Point;
        use lcmsr_roadnet::subgraph::RegionView;

        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(1.0, 0.0));
        b.add_edge(a, c, 1.0).unwrap();
        let network = b.build().unwrap();
        let view = RegionView::whole(&network);
        let qg = QueryGraph::build(&view, &NodeWeights::default(), 10.0, 0.5).unwrap();
        let mut solver = DensityKMst::new();
        let mut arena = TupleArena::new();
        assert!(solver
            .solve(
                &qg,
                &mut arena,
                0,
                &CancelToken::none(),
                &mut TraceCollector::disabled()
            )
            .is_some());
        assert!(solver
            .solve(
                &qg,
                &mut arena,
                5,
                &CancelToken::none(),
                &mut TraceCollector::disabled()
            )
            .is_none());
    }

    #[test]
    fn finds_compact_tree_on_figure2() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut solver = DensityKMst::with_roots(6);
        let mut arena = TupleArena::new();
        // Quota 110 = the optimal example region {v2,v4,v5,v6} (length 5.9).
        let t = solver
            .solve(
                &qg,
                &mut arena,
                110,
                &CancelToken::none(),
                &mut TraceCollector::disabled(),
            )
            .unwrap();
        assert!(t.scaled >= 110);
        // The greedy tree should not be wildly longer than the optimum.
        assert!(t.length <= 3.0 * 5.9, "length {}", t.length);
    }

    #[test]
    fn more_roots_never_hurt() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut few = DensityKMst::with_roots(1);
        let mut many = DensityKMst::with_roots(6);
        let mut arena = TupleArena::new();
        let quota = 130;
        let t_few = few
            .solve(
                &qg,
                &mut arena,
                quota,
                &CancelToken::none(),
                &mut TraceCollector::disabled(),
            )
            .unwrap();
        let t_many = many
            .solve(
                &qg,
                &mut arena,
                quota,
                &CancelToken::none(),
                &mut TraceCollector::disabled(),
            )
            .unwrap();
        assert!(t_many.length <= t_few.length + 1e-9);
    }
}
