//! Run statistics and instrumentation for LCMSR query execution.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Why a run returned a partial (best-so-far) result instead of running to
/// completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartialCause {
    /// The query's deadline expired mid-solve; the solver stopped at the next
    /// poll point and returned its incumbent.
    DeadlineExceeded,
    /// The query's cancellation token was fired explicitly.
    Cancelled,
}

impl PartialCause {
    /// The stable wire/display spelling of the cause.
    pub fn as_str(&self) -> &'static str {
        match self {
            PartialCause::DeadlineExceeded => "deadline_exceeded",
            PartialCause::Cancelled => "cancelled",
        }
    }
}

impl std::fmt::Display for PartialCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Statistics collected while answering one query with one algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RunStats {
    /// Name of the algorithm ("APP", "TGEN", "Greedy", "Exact").
    pub algorithm: String,
    /// Wall-clock time spent answering the query.
    pub elapsed: Duration,
    /// Time spent preparing the query graph (keyword scoring, `Q.Λ`
    /// extraction, CSR construction, weight scaling).
    pub prepare_time: Duration,
    /// Component of `prepare_time`: keyword scoring against the grid index
    /// (Equation-2 accumulation over the cells intersecting `Q.Λ`).
    pub grid_score_time: Duration,
    /// Component of `prepare_time`: `Q.Λ` subgraph extraction plus scaled
    /// CSR query-graph construction.  `grid_score_time + graph_build_time`
    /// is ≤ `prepare_time` (the remainder is validation and bookkeeping).
    pub graph_build_time: Duration,
    /// Time spent inside the solver proper.  `prepare_time + solve_time` is
    /// always ≤ `elapsed` (the remainder is result translation).
    pub solve_time: Duration,
    /// Time the query spent parked in a serving front-end's queue before an
    /// engine worker picked it up.  Always zero on the direct engine paths
    /// (`run`, `run_topk`, `run_batch`); the `lcmsr_service` micro-batching
    /// scheduler measures and fills it in.  Not included in `elapsed`, which
    /// covers engine execution only.
    pub queue_time: Duration,
    /// Number of road-network nodes inside `Q.Λ` (`|V_Q|`).
    pub nodes_in_region: usize,
    /// Number of edges inside `Q.Λ` (`|E_Q|`).
    pub edges_in_region: usize,
    /// Number of nodes carrying a positive query weight.
    pub relevant_nodes: usize,
    /// Number of k-MST oracle invocations (APP only).
    pub kmst_calls: u64,
    /// Number of region tuples materialised (APP's DP and TGEN).
    pub tuples_generated: u64,
    /// Number of greedy expansion steps (Greedy only).
    pub greedy_steps: u64,
    /// Combine pairs skipped by the tuple-array frontier's length-budget
    /// `partition_point` without ever being materialised (APP's DP and TGEN;
    /// the pre-frontier combine loops allocated each of these and rolled it
    /// back).
    pub pruned_pairs: u64,
    /// Region tuples resident across all per-node frontier arrays when the
    /// solve phase finished (APP's DP and TGEN).
    pub frontier_tuples: u64,
    /// Largest single frontier array at the end of the solve phase.
    pub frontier_peak: u64,
    /// Frontier entries evicted by dominating inserts (Lemma 6 extended
    /// across scaled weights) during the solve phase.
    pub dominance_evictions: u64,
    /// Whether the solver stopped early (deadline or cancellation) and the
    /// result is its best-so-far incumbent rather than the full answer.
    pub partial: bool,
    /// Why the result is partial (`None` for complete runs).
    pub partial_cause: Option<PartialCause>,
    /// The deadline budget the query ran under (`None` when no deadline was
    /// set).  Reported on the wire as `deadline_ns`; the absolute expiry
    /// instant is process-local and deliberately not recorded here.
    pub deadline: Option<Duration>,
    /// Whether the request ran in cache mode (response cache consulted and,
    /// on a complete run, populated).  `false` on the classic paths, which
    /// stay bit-identical to a cacheless engine.
    pub cache: bool,
    /// Whether the response was replayed from the engine's response cache
    /// (the regions are clones of the original cold run's).
    pub cache_hit: bool,
    /// Whether the lookup found a fingerprint cached under an older dataset
    /// epoch (the stale entry was evicted and the query recomputed).
    pub cache_stale: bool,
    /// Whether the prepare phase was delta-built from the session's previous
    /// keyword scores instead of rescoring the whole region of interest.
    pub delta_prepare: bool,
}

impl RunStats {
    /// Creates empty statistics for the named algorithm.
    pub fn new(algorithm: impl Into<String>) -> Self {
        RunStats {
            algorithm: algorithm.into(),
            ..RunStats::default()
        }
    }

    /// Elapsed time in milliseconds (convenience for experiment output).
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed.as_secs_f64() * 1_000.0
    }

    /// Preparation time in milliseconds.
    pub fn prepare_ms(&self) -> f64 {
        self.prepare_time.as_secs_f64() * 1_000.0
    }

    /// Grid-scoring component of the preparation time, in milliseconds.
    pub fn grid_score_ms(&self) -> f64 {
        self.grid_score_time.as_secs_f64() * 1_000.0
    }

    /// Graph-build component of the preparation time, in milliseconds.
    pub fn graph_build_ms(&self) -> f64 {
        self.graph_build_time.as_secs_f64() * 1_000.0
    }

    /// Solver time in milliseconds.
    pub fn solve_ms(&self) -> f64 {
        self.solve_time.as_secs_f64() * 1_000.0
    }

    /// Queue wait in milliseconds (zero outside a serving front-end).
    pub fn queue_ms(&self) -> f64 {
        self.queue_time.as_secs_f64() * 1_000.0
    }

    /// Marks the run partial with the given cause (idempotent; the first
    /// cause wins so an outer layer never overwrites an inner one).
    pub fn mark_partial(&mut self, cause: PartialCause) {
        self.partial = true;
        self.partial_cause.get_or_insert(cause);
    }
}

impl std::fmt::Display for RunStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.2} ms (prepare {:.2} [score {:.2} + build {:.2}] + solve {:.2}; |V_Q|={}, |E_Q|={}, relevant={}, kmst={}, tuples={}, pruned={}, frontier={})",
            self.algorithm,
            self.elapsed_ms(),
            self.prepare_ms(),
            self.grid_score_ms(),
            self.graph_build_ms(),
            self.solve_ms(),
            self.nodes_in_region,
            self.edges_in_region,
            self.relevant_nodes,
            self.kmst_calls,
            self.tuples_generated,
            self.pruned_pairs,
            self.frontier_tuples
        )?;
        if !self.queue_time.is_zero() {
            write!(f, " + queue {:.2}", self.queue_ms())?;
        }
        if let Some(budget) = self.deadline {
            write!(f, " [deadline {:.2} ms]", budget.as_secs_f64() * 1_000.0)?;
        }
        if self.partial {
            match self.partial_cause {
                Some(cause) => write!(f, " [partial: {cause}]")?,
                None => write!(f, " [partial]")?,
            }
        }
        if self.cache_hit {
            write!(f, " [cache hit]")?;
        } else if self.cache_stale {
            write!(f, " [cache stale]")?;
        }
        if self.delta_prepare {
            write!(f, " [delta prepare]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        let mut s = RunStats::new("APP");
        s.elapsed = Duration::from_millis(12);
        s.nodes_in_region = 100;
        assert_eq!(s.algorithm, "APP");
        assert!((s.elapsed_ms() - 12.0).abs() < 1e-9);
        assert!(s.to_string().contains("APP"));
        assert!(s.to_string().contains("100"));
    }

    #[test]
    fn default_is_zeroed() {
        let s = RunStats::default();
        assert_eq!(s.elapsed, Duration::ZERO);
        assert_eq!(s.queue_time, Duration::ZERO);
        assert_eq!(s.grid_score_time, Duration::ZERO);
        assert_eq!(s.graph_build_time, Duration::ZERO);
        assert_eq!(s.grid_score_ms(), 0.0);
        assert_eq!(s.graph_build_ms(), 0.0);
        assert_eq!(s.kmst_calls, 0);
        assert_eq!(s.elapsed_ms(), 0.0);
        assert_eq!(s.queue_ms(), 0.0);
        assert!(!s.partial);
        assert_eq!(s.partial_cause, None);
        assert_eq!(s.deadline, None);
        assert!(!s.cache);
        assert!(!s.cache_hit);
        assert!(!s.cache_stale);
        assert!(!s.delta_prepare);
    }

    #[test]
    fn display_marks_cache_and_delta_paths() {
        let mut s = RunStats::new("TGEN");
        assert!(!s.to_string().contains("cache"));
        s.cache = true;
        s.cache_hit = true;
        assert!(s.to_string().contains("[cache hit]"));
        let mut d = RunStats::new("TGEN");
        d.cache_stale = true;
        d.delta_prepare = true;
        let shown = d.to_string();
        assert!(shown.contains("[cache stale]"), "{shown}");
        assert!(shown.contains("[delta prepare]"), "{shown}");
    }

    #[test]
    fn partial_marking_keeps_the_first_cause_and_shows_in_display() {
        let mut s = RunStats::new("Exact");
        s.mark_partial(PartialCause::DeadlineExceeded);
        s.mark_partial(PartialCause::Cancelled);
        assert!(s.partial);
        assert_eq!(s.partial_cause, Some(PartialCause::DeadlineExceeded));
        assert_eq!(PartialCause::DeadlineExceeded.as_str(), "deadline_exceeded");
        assert_eq!(PartialCause::Cancelled.to_string(), "cancelled");
        assert!(s.to_string().contains("[partial: deadline_exceeded]"));
        assert!(!RunStats::new("Exact").to_string().contains("partial"));
    }

    #[test]
    fn display_shows_queue_wait_only_when_nonzero() {
        let mut s = RunStats::new("TGEN");
        assert!(!s.to_string().contains("queue"));
        s.queue_time = Duration::from_millis(3);
        let shown = s.to_string();
        assert!(shown.contains("+ queue 3.00"), "{shown}");
    }

    #[test]
    fn display_shows_deadline_budget_when_set() {
        let mut s = RunStats::new("APP");
        assert!(!s.to_string().contains("deadline"));
        s.deadline = Some(Duration::from_millis(50));
        let shown = s.to_string();
        assert!(shown.contains("[deadline 50.00 ms]"), "{shown}");
    }
}
