//! The MaxRS (maximum range sum) baseline of Choi et al. / Tao et al.
//!
//! Section 7.5 of the paper compares LCMSR regions against regions produced by
//! the MaxRS query: place an axis-parallel rectangle of fixed width × height so
//! that the total weight of the covered points is maximised.  This module
//! implements the exact MaxRS algorithm via the classical sweep-line
//! transformation: each weighted point `p` is turned into a rectangle of the
//! query's dimensions centred at `p` (the set of rectangle *centres* covering
//! `p`), and the answer is the point of maximum total weight in the resulting
//! arrangement, found with a sweep over x and a segment tree over y.

use lcmsr_roadnet::geo::Point;

/// Result of a MaxRS computation.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxRsResult {
    /// A centre position achieving the maximum weight.
    pub center: Point,
    /// The maximum total covered weight.
    pub weight: f64,
    /// Indices (into the input slice) of the points covered by the optimal rectangle.
    pub covered: Vec<usize>,
}

/// Segment tree over elementary y-intervals supporting range add and global max.
struct SegTree {
    n: usize,
    max: Vec<f64>,
    lazy: Vec<f64>,
}

impl SegTree {
    fn new(n: usize) -> Self {
        let size = n.next_power_of_two().max(1);
        SegTree {
            n: size,
            max: vec![0.0; 2 * size],
            lazy: vec![0.0; 2 * size],
        }
    }

    fn add(&mut self, lo: usize, hi: usize, value: f64) {
        if lo >= hi {
            return;
        }
        self.add_rec(1, 0, self.n, lo, hi, value);
    }

    fn add_rec(&mut self, node: usize, nl: usize, nr: usize, lo: usize, hi: usize, value: f64) {
        if hi <= nl || nr <= lo {
            return;
        }
        if lo <= nl && nr <= hi {
            self.lazy[node] += value;
            self.max[node] += value;
            return;
        }
        let mid = (nl + nr) / 2;
        self.add_rec(node * 2, nl, mid, lo, hi, value);
        self.add_rec(node * 2 + 1, mid, nr, lo, hi, value);
        self.max[node] = self.lazy[node] + self.max[node * 2].max(self.max[node * 2 + 1]);
    }

    fn global_max(&self) -> f64 {
        self.max[1]
    }

    /// Finds the index of one elementary interval achieving the global maximum.
    fn argmax(&self) -> usize {
        let mut node = 1;
        let mut nl = 0;
        let mut nr = self.n;
        while nr - nl > 1 {
            let mid = (nl + nr) / 2;
            let left_total = self.lazy[node] + self.max[node * 2];
            let right_total = self.lazy[node] + self.max[node * 2 + 1];
            if left_total >= right_total {
                node *= 2;
                nr = mid;
            } else {
                node = node * 2 + 1;
                nl = mid;
            }
        }
        nl
    }
}

/// Solves MaxRS for the given weighted points and rectangle dimensions.
///
/// Returns `None` when the input is empty or no point has positive weight.
/// Ties are broken arbitrarily.  Points exactly on the rectangle boundary count
/// as covered.
pub fn max_range_sum(points: &[(Point, f64)], width: f64, height: f64) -> Option<MaxRsResult> {
    assert!(
        width > 0.0 && height > 0.0,
        "rectangle must have positive size"
    );
    let positive: Vec<(usize, Point, f64)> = points
        .iter()
        .enumerate()
        .filter(|(_, (_, w))| *w > 0.0)
        .map(|(i, (p, w))| (i, *p, *w))
        .collect();
    if positive.is_empty() {
        return None;
    }
    let half_w = width / 2.0;
    let half_h = height / 2.0;
    // Compress y coordinates of interval endpoints.
    let mut ys: Vec<f64> = Vec::with_capacity(positive.len() * 2);
    for &(_, p, _) in &positive {
        ys.push(p.y - half_h);
        ys.push(p.y + half_h);
    }
    ys.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    ys.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    let y_index = |y: f64| -> usize { ys.partition_point(|&v| v < y - 1e-12) };
    // Sweep events over x: at x = p.x − half_w the point's y-interval is added,
    // at x = p.x + half_w it is removed (inclusive boundary → remove strictly after).
    #[derive(Debug)]
    struct Event {
        x: f64,
        add: bool,
        y_lo: usize,
        y_hi: usize,
        weight: f64,
    }
    let mut events: Vec<Event> = Vec::with_capacity(positive.len() * 2);
    for &(_, p, w) in &positive {
        let y_lo = y_index(p.y - half_h);
        let y_hi = y_index(p.y + half_h) + 1; // elementary segments [y_lo, y_hi)
        events.push(Event {
            x: p.x - half_w,
            add: true,
            y_lo,
            y_hi,
            weight: w,
        });
        events.push(Event {
            x: p.x + half_w,
            add: false,
            y_lo,
            y_hi,
            weight: w,
        });
    }
    events.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .unwrap_or(std::cmp::Ordering::Equal)
            // Process additions before removals at the same x so that touching
            // boundaries count as covered.
            .then_with(|| b.add.cmp(&a.add))
    });
    let mut tree = SegTree::new(ys.len().max(1));
    let mut best_weight = f64::NEG_INFINITY;
    let mut best_x = positive[0].1.x;
    let mut best_y_segment = 0usize;
    for e in &events {
        if e.add {
            tree.add(e.y_lo, e.y_hi, e.weight);
        } else {
            tree.add(e.y_lo, e.y_hi, -e.weight);
        }
        let m = tree.global_max();
        if m > best_weight + 1e-12 {
            best_weight = m;
            best_x = e.x;
            best_y_segment = tree.argmax();
        }
    }
    // Turn the elementary segment index back into a y coordinate (its lower endpoint).
    let best_y = ys.get(best_y_segment).copied().unwrap_or(positive[0].1.y);
    let center = Point::new(best_x, best_y);
    // Collect the covered points at the reported centre.
    let covered: Vec<usize> = points
        .iter()
        .enumerate()
        .filter(|(_, (p, w))| {
            *w > 0.0
                && (p.x - center.x).abs() <= half_w + 1e-9
                && (p.y - center.y).abs() <= half_h + 1e-9
        })
        .map(|(i, _)| i)
        .collect();
    let covered_weight: f64 = covered.iter().map(|&i| points[i].1).sum();
    Some(MaxRsResult {
        center,
        // Report the verified covered weight (equals the sweep maximum up to
        // floating-point noise).
        weight: covered_weight.max(best_weight),
        covered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    /// Brute-force reference: the optimal rectangle can always be positioned so
    /// that its left edge passes through some point's left event and its bottom
    /// edge through some point's bottom event.
    fn brute_force(points: &[(Point, f64)], width: f64, height: f64) -> f64 {
        let mut best = 0.0f64;
        for &(a, _) in points {
            for &(b, _) in points {
                let cx = a.x + width / 2.0;
                let cy = b.y + height / 2.0;
                let total: f64 = points
                    .iter()
                    .filter(|(p, _)| {
                        (p.x - cx).abs() <= width / 2.0 + 1e-9
                            && (p.y - cy).abs() <= height / 2.0 + 1e-9
                    })
                    .map(|(_, w)| *w)
                    .sum();
                best = best.max(total);
            }
        }
        best
    }

    #[test]
    fn empty_or_zero_weight_input_returns_none() {
        assert!(max_range_sum(&[], 1.0, 1.0).is_none());
        assert!(max_range_sum(&[(pt(0.0, 0.0), 0.0)], 1.0, 1.0).is_none());
    }

    #[test]
    #[should_panic(expected = "positive size")]
    fn zero_sized_rectangle_panics() {
        let _ = max_range_sum(&[(pt(0.0, 0.0), 1.0)], 0.0, 1.0);
    }

    #[test]
    fn single_point_is_covered() {
        let r = max_range_sum(&[(pt(5.0, 5.0), 2.5)], 1.0, 1.0).unwrap();
        assert_eq!(r.weight, 2.5);
        assert_eq!(r.covered, vec![0]);
    }

    #[test]
    fn picks_the_denser_cluster() {
        let points = vec![
            // Cluster A: three points of weight 1 close together.
            (pt(0.0, 0.0), 1.0),
            (pt(10.0, 5.0), 1.0),
            (pt(5.0, 10.0), 1.0),
            // Cluster B: two points of weight 1 far away.
            (pt(500.0, 500.0), 1.0),
            (pt(505.0, 505.0), 1.0),
        ];
        let r = max_range_sum(&points, 50.0, 50.0).unwrap();
        assert_eq!(r.weight, 3.0);
        assert_eq!(r.covered, vec![0, 1, 2]);
    }

    #[test]
    fn weights_matter_more_than_counts() {
        let points = vec![
            (pt(0.0, 0.0), 1.0),
            (pt(1.0, 0.0), 1.0),
            (pt(100.0, 100.0), 5.0),
        ];
        let r = max_range_sum(&points, 10.0, 10.0).unwrap();
        assert_eq!(r.weight, 5.0);
        assert_eq!(r.covered, vec![2]);
    }

    #[test]
    fn matches_brute_force_on_pseudorandom_instances() {
        let mut state = 0xDEADBEEFu64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for case in 0..20 {
            let n = 5 + (case % 10);
            let points: Vec<(Point, f64)> = (0..n)
                .map(|_| {
                    (
                        pt(next() * 100.0, next() * 100.0),
                        (next() * 3.0 + 0.1).round() / 2.0,
                    )
                })
                .collect();
            let width = 10.0 + next() * 30.0;
            let height = 10.0 + next() * 30.0;
            let expected = brute_force(&points, width, height);
            let got = max_range_sum(&points, width, height).unwrap().weight;
            assert!(
                (got - expected).abs() < 1e-6,
                "case {case}: sweep {got} vs brute force {expected}"
            );
        }
    }

    #[test]
    fn boundary_points_count_as_covered() {
        // Two points exactly `width` apart can both be covered when each sits on
        // one edge of the rectangle.
        let points = vec![(pt(0.0, 0.0), 1.0), (pt(10.0, 0.0), 1.0)];
        let r = max_range_sum(&points, 10.0, 2.0).unwrap();
        assert_eq!(r.weight, 2.0);
    }
}
