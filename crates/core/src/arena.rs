//! [`TupleArena`]: slab storage for region-tuple node/edge id sets.
//!
//! The solve phase (TGEN's edge-combine loops, `findOptTree`, the k-MST
//! oracles) creates and discards large numbers of [`crate::region::RegionTuple`]s,
//! each carrying a sorted node set and a sorted edge set.  Storing those sets
//! as owned `Vec<u32>`s made every combine, clone and top-list offer a pair of
//! heap allocations; the arena replaces them with `(offset, len)` handles into
//! one contiguous `u32` slab:
//!
//! * **allocation** is a bump at the end of the slab, or the reuse of an
//!   exact-size block from a per-length free list,
//! * **cloning a tuple** is a `Copy` of its handles — no id data moves,
//! * **freeing** returns a block to the free list (or shrinks the slab when
//!   the block sits at the top, the common case for a candidate that is
//!   created and immediately discarded),
//! * **epoch clearing** ([`TupleArena::reset`]) invalidates everything in
//!   O(free-list buckets) between queries while keeping all capacity, so a
//!   steady stream of queries over one workspace allocates near-zero.
//!
//! # Safety contract (no `unsafe`, but a logical one)
//!
//! Handles are plain indices, so the arena cannot detect stale use on its
//! own.  Two rules keep them sound, and the solvers follow them:
//!
//! 1. [`TupleArena::free`] may only be called on a handle with a **single
//!    owner** — typically a tuple that was just created and rejected before
//!    anyone else saw it.  Tuples stored in shared structures (tuple arrays,
//!    best trackers, top lists) are never freed individually; they are
//!    reclaimed wholesale by `reset`.
//! 2. `reset` must only run between queries, when no handle from the previous
//!    query is live.
//!
//! The `tests/arena_pool.rs` proptests drive random interleavings of
//! alloc/merge/free/reset against a shadow model to check that live handles
//! never alias.

/// Handle to a sorted id set stored in a [`TupleArena`].
///
/// A handle is `Copy` and 8 bytes; the empty set is `{offset: 0, len: 0}` and
/// owns no storage.  Handle equality is *identity* (same storage), not set
/// equality — compare contents via [`TupleArena::get`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdSetHandle {
    offset: u32,
    len: u32,
}

impl IdSetHandle {
    /// The empty set (no backing storage).
    pub const EMPTY: IdSetHandle = IdSetHandle { offset: 0, len: 0 };

    /// Number of ids in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Start of the block in the arena's slab (for diagnostics/tests).
    #[inline]
    pub fn offset(&self) -> u32 {
        self.offset
    }
}

/// Counters describing an arena's activity.  Cumulative since construction —
/// [`TupleArena::reset`] does *not* clear them (it only counts as a reset) —
/// cheap to keep, and handy for benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Blocks handed out (bump or free-list).
    pub allocs: u64,
    /// Allocations served from a free list instead of growing the slab.
    pub free_list_hits: u64,
    /// Blocks returned by [`TupleArena::free`] that shrank the slab in place
    /// (the freed block sat at the top — pure stack discipline).
    pub top_rollbacks: u64,
    /// Epoch clears performed.
    pub resets: u64,
}

/// Slab allocator for the sorted `u32` id sets of region tuples.
///
/// See the module docs for the design and the (logical) safety contract.
#[derive(Debug)]
pub struct TupleArena {
    /// The slab.  Live blocks and free-listed blocks are disjoint.
    data: Vec<u32>,
    /// `free[len]` holds offsets of freed blocks of exactly `len` ids.
    free: Vec<Vec<u32>>,
    /// Process-unique arena identity (cloned arenas get a fresh one); paired
    /// with the reset count it forms [`TupleArena::generation`].
    id: u64,
    stats: ArenaStats,
}

impl Default for TupleArena {
    fn default() -> Self {
        Self::new()
    }
}

fn next_arena_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Clone for TupleArena {
    fn clone(&self) -> Self {
        TupleArena {
            data: self.data.clone(),
            free: self.free.clone(),
            id: next_arena_id(),
            stats: self.stats,
        }
    }
}

impl TupleArena {
    /// Creates an empty arena; the slab grows on first use.
    pub fn new() -> Self {
        TupleArena {
            data: Vec::new(),
            free: Vec::new(),
            id: next_arena_id(),
            stats: ArenaStats::default(),
        }
    }

    /// An identity that changes whenever handles become invalid: unique per
    /// arena instance and bumped by every [`TupleArena::reset`].  Caches that
    /// hold handles across calls (e.g. the Garg λ-cache) compare generations
    /// to drop entries that would otherwise dangle into a reset or different
    /// arena.
    pub fn generation(&self) -> (u64, u64) {
        (self.id, self.stats.resets)
    }

    /// Invalidates every handle and reclaims the whole slab in one step while
    /// keeping all capacity.  Call between queries, never while handles from
    /// the current query are live.
    pub fn reset(&mut self) {
        self.data.clear();
        for bucket in &mut self.free {
            bucket.clear();
        }
        self.stats.resets += 1;
    }

    /// The ids of a set, in ascending order.
    #[inline]
    pub fn get(&self, handle: IdSetHandle) -> &[u32] {
        &self.data[handle.offset as usize..(handle.offset + handle.len) as usize]
    }

    /// Copies `ids` (which must be sorted ascending) into the arena.
    pub fn alloc(&mut self, ids: &[u32]) -> IdSetHandle {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be sorted");
        let handle = self.alloc_block(ids.len());
        let start = handle.offset as usize;
        self.data[start..start + ids.len()].copy_from_slice(ids);
        handle
    }

    /// Returns a block to the free list.  The caller must be the handle's
    /// only owner (see the module docs); the empty set is a no-op.
    pub fn free(&mut self, handle: IdSetHandle) {
        if handle.len == 0 {
            return;
        }
        let end = (handle.offset + handle.len) as usize;
        if end == self.data.len() {
            // The block sits at the top of the slab: shrink instead of
            // free-listing, keeping the bump pointer tight for the common
            // create-then-discard pattern of the combine loops.
            self.data.truncate(handle.offset as usize);
            self.stats.top_rollbacks += 1;
            return;
        }
        let len = handle.len as usize;
        if self.free.len() <= len {
            self.free.resize_with(len + 1, Vec::new);
        }
        self.free[len].push(handle.offset);
    }

    /// Merges two sorted sets into a newly allocated sorted set.
    /// The sets must be disjoint (region tuples only merge disjoint sets).
    pub fn merge(&mut self, a: IdSetHandle, b: IdSetHandle) -> IdSetHandle {
        let dst = self.alloc_block(a.len() + b.len());
        let (mut i, mut j, mut o) = (a.offset as usize, b.offset as usize, dst.offset as usize);
        let (ae, be) = (i + a.len(), j + b.len());
        while i < ae && j < be {
            let (av, bv) = (self.data[i], self.data[j]);
            if av <= bv {
                self.data[o] = av;
                i += 1;
            } else {
                self.data[o] = bv;
                j += 1;
            }
            o += 1;
        }
        while i < ae {
            self.data[o] = self.data[i];
            i += 1;
            o += 1;
        }
        while j < be {
            self.data[o] = self.data[j];
            j += 1;
            o += 1;
        }
        dst
    }

    /// Merges two sorted sets plus one extra id (contained in neither) into a
    /// newly allocated sorted set — the shape of a region combine, which
    /// unions two edge sets with the connecting edge.
    pub fn merge_plus(&mut self, a: IdSetHandle, b: IdSetHandle, extra: u32) -> IdSetHandle {
        let dst = self.alloc_block(a.len() + b.len() + 1);
        let (mut i, mut j, mut o) = (a.offset as usize, b.offset as usize, dst.offset as usize);
        let (ae, be) = (i + a.len(), j + b.len());
        // Plain two-pointer merge of `a` and `b`, with `extra` spliced in the
        // moment the merge stream passes its sorted position.
        let mut pending = Some(extra);
        while i < ae || j < be {
            let next = if i < ae && (j >= be || self.data[i] <= self.data[j]) {
                let v = self.data[i];
                i += 1;
                v
            } else {
                let v = self.data[j];
                j += 1;
                v
            };
            if pending.is_some_and(|x| x < next) {
                self.data[o] = pending.take().expect("checked above");
                o += 1;
            }
            self.data[o] = next;
            o += 1;
        }
        if let Some(x) = pending {
            self.data[o] = x;
        }
        dst
    }

    /// Copies a sorted set with one extra id (not already contained) inserted
    /// at its sorted position — the shape of a single-node region extension.
    pub fn insert_one(&mut self, a: IdSetHandle, extra: u32) -> IdSetHandle {
        let dst = self.alloc_block(a.len() + 1);
        let (mut i, mut o) = (a.offset as usize, dst.offset as usize);
        let ae = i + a.len();
        while i < ae && self.data[i] < extra {
            self.data[o] = self.data[i];
            i += 1;
            o += 1;
        }
        self.data[o] = extra;
        o += 1;
        while i < ae {
            self.data[o] = self.data[i];
            i += 1;
            o += 1;
        }
        dst
    }

    /// Whether two sorted sets share at least one id (linear merge scan).
    pub fn intersects(&self, a: IdSetHandle, b: IdSetHandle) -> bool {
        let (mut i, mut j) = (a.offset as usize, b.offset as usize);
        let (ae, be) = (i + a.len(), j + b.len());
        while i < ae && j < be {
            match self.data[i].cmp(&self.data[j]) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
        false
    }

    /// Whether two sets hold the same ids (identity fast path, then contents).
    pub fn same_ids(&self, a: IdSetHandle, b: IdSetHandle) -> bool {
        if a.len != b.len {
            return false;
        }
        a.offset == b.offset || self.get(a) == self.get(b)
    }

    /// Number of `u32` slots currently in the slab (live + free-listed).
    pub fn storage_len(&self) -> usize {
        self.data.len()
    }

    /// Slab capacity in `u32` slots (the high-water mark survives resets).
    pub fn storage_capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Cumulative activity counters.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Hands out a block of `len` slots: exact-size free-list reuse first,
    /// bump growth otherwise.  Contents are unspecified until written.
    fn alloc_block(&mut self, len: usize) -> IdSetHandle {
        if len == 0 {
            return IdSetHandle::EMPTY;
        }
        self.stats.allocs += 1;
        if let Some(bucket) = self.free.get_mut(len) {
            if let Some(offset) = bucket.pop() {
                self.stats.free_list_hits += 1;
                return IdSetHandle {
                    offset,
                    len: len as u32,
                };
            }
        }
        let offset = self.data.len();
        // Handles address the slab with u32 offsets; past that the cast would
        // wrap and alias live blocks — fail loudly instead (a query would
        // need a ~16 GiB slab to get here).
        assert!(
            offset + len <= u32::MAX as usize,
            "TupleArena slab exceeded u32 addressing ({offset} + {len} slots)"
        );
        self.data.resize(offset + len, 0);
        IdSetHandle {
            offset: offset as u32,
            len: len as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_get_roundtrip() {
        let mut arena = TupleArena::new();
        let a = arena.alloc(&[1, 4, 9]);
        let b = arena.alloc(&[2, 3]);
        let e = arena.alloc(&[]);
        assert_eq!(arena.get(a), &[1, 4, 9]);
        assert_eq!(arena.get(b), &[2, 3]);
        assert_eq!(arena.get(e), &[] as &[u32]);
        assert_eq!(a.len(), 3);
        assert!(e.is_empty());
        assert_eq!(arena.storage_len(), 5);
    }

    #[test]
    fn merge_produces_sorted_union() {
        let mut arena = TupleArena::new();
        let a = arena.alloc(&[1, 5, 8]);
        let b = arena.alloc(&[2, 6, 9, 11]);
        let m = arena.merge(a, b);
        assert_eq!(arena.get(m), &[1, 2, 5, 6, 8, 9, 11]);
        // Sources are untouched.
        assert_eq!(arena.get(a), &[1, 5, 8]);
        assert_eq!(arena.get(b), &[2, 6, 9, 11]);
        let e = IdSetHandle::EMPTY;
        let m2 = arena.merge(m, e);
        assert_eq!(arena.get(m2), arena.get(m).to_vec().as_slice());
    }

    #[test]
    fn merge_plus_and_insert_one_place_the_extra_correctly() {
        let mut arena = TupleArena::new();
        let a = arena.alloc(&[1, 5]);
        let b = arena.alloc(&[3, 9]);
        for extra in [0, 2, 4, 7, 10] {
            let m = arena.merge_plus(a, b, extra);
            let mut expect = vec![1, 3, 5, 9, extra];
            expect.sort_unstable();
            assert_eq!(arena.get(m), expect.as_slice(), "extra {extra}");
        }
        for extra in [0, 3, 6] {
            let s = arena.insert_one(a, extra);
            let mut expect = vec![1, 5, extra];
            expect.sort_unstable();
            assert_eq!(arena.get(s), expect.as_slice(), "extra {extra}");
        }
        let e = arena.insert_one(IdSetHandle::EMPTY, 7);
        assert_eq!(arena.get(e), &[7]);
    }

    #[test]
    fn intersects_and_same_ids() {
        let mut arena = TupleArena::new();
        let a = arena.alloc(&[1, 3, 5]);
        let b = arena.alloc(&[2, 4, 6]);
        let c = arena.alloc(&[0, 5, 9]);
        let a2 = arena.alloc(&[1, 3, 5]);
        assert!(!arena.intersects(a, b));
        assert!(arena.intersects(a, c));
        assert!(arena.intersects(c, a));
        assert!(arena.same_ids(a, a));
        assert!(arena.same_ids(a, a2));
        assert!(!arena.same_ids(a, b));
        assert!(!arena.same_ids(a, IdSetHandle::EMPTY));
        assert!(arena.same_ids(IdSetHandle::EMPTY, IdSetHandle::EMPTY));
    }

    #[test]
    fn free_at_top_shrinks_the_slab() {
        let mut arena = TupleArena::new();
        let a = arena.alloc(&[1, 2]);
        let b = arena.alloc(&[3, 4, 5]);
        assert_eq!(arena.storage_len(), 5);
        arena.free(b);
        assert_eq!(arena.storage_len(), 2, "top block rolls the bump back");
        assert_eq!(arena.stats().top_rollbacks, 1);
        assert_eq!(arena.get(a), &[1, 2]);
    }

    #[test]
    fn free_list_recycles_exact_sizes() {
        let mut arena = TupleArena::new();
        let a = arena.alloc(&[1, 2, 3]);
        let _guard = arena.alloc(&[9]); // keeps `a` off the top
        arena.free(a);
        let before = arena.storage_len();
        let b = arena.alloc(&[7, 8, 9]);
        assert_eq!(arena.storage_len(), before, "same-size block reused");
        assert_eq!(b.offset(), a.offset());
        assert_eq!(arena.get(b), &[7, 8, 9]);
        assert_eq!(arena.stats().free_list_hits, 1);
        // A different size cannot reuse the (now re-live) block.
        let c = arena.alloc(&[1, 2]);
        assert_ne!(c.offset(), b.offset());
    }

    #[test]
    fn reset_reclaims_everything_but_keeps_capacity() {
        let mut arena = TupleArena::new();
        for i in 0..100u32 {
            arena.alloc(&[i, i + 1000]);
        }
        let cap = arena.storage_capacity();
        assert!(cap >= 200);
        arena.reset();
        assert_eq!(arena.storage_len(), 0);
        assert_eq!(arena.storage_capacity(), cap, "capacity survives reset");
        assert_eq!(arena.stats().resets, 1);
        let a = arena.alloc(&[5]);
        assert_eq!(arena.get(a), &[5]);
    }

    #[test]
    fn randomised_alloc_free_never_aliases_live_blocks() {
        // Deterministic xorshift so the test needs no external crate.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut arena = TupleArena::new();
        // Model: live handles with their expected contents.
        let mut live: Vec<(IdSetHandle, Vec<u32>)> = Vec::new();
        for step in 0..4000u32 {
            match rng() % 10 {
                0..=4 => {
                    // Alloc a fresh sorted set.
                    let len = (rng() % 6) as u32;
                    let base = rng() as u32 % 1000;
                    let ids: Vec<u32> = (0..len).map(|k| base + k * 3).collect();
                    let h = arena.alloc(&ids);
                    live.push((h, ids));
                }
                5..=6 if live.len() >= 2 => {
                    // Merge two disjoint live sets (skip when they collide).
                    let i = (rng() as usize) % live.len();
                    let j = (rng() as usize) % live.len();
                    if i != j && !arena.intersects(live[i].0, live[j].0) {
                        let h = arena.merge(live[i].0, live[j].0);
                        let mut ids = live[i].1.clone();
                        ids.extend_from_slice(&live[j].1);
                        ids.sort_unstable();
                        live.push((h, ids));
                    }
                }
                7..=8 if !live.is_empty() => {
                    // Free a random live handle (single-owner by construction:
                    // merges copy, they do not share storage).
                    let i = (rng() as usize) % live.len();
                    let (h, _) = live.swap_remove(i);
                    arena.free(h);
                }
                9 if step % 97 == 0 => {
                    arena.reset();
                    live.clear();
                }
                _ => {}
            }
            for (h, expect) in &live {
                assert_eq!(arena.get(*h), expect.as_slice(), "step {step}");
            }
        }
        assert!(arena.stats().allocs > 0);
    }
}
