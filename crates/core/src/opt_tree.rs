//! `findOptTree`: extracting the best feasible region from a candidate tree
//! (Section 4.2.3 of the paper).
//!
//! Finding the region with the largest scaled weight and length ≤ `Q.∆` inside
//! a tree is NP-hard (Theorem 3, knapsack reduction), but because node weights
//! are scaled integers a pseudo-polynomial dynamic program works: every node
//! keeps a *region tuple array* — a Pareto frontier holding, per scaled
//! weight, the shortest region rooted at that node (Definition 5, justified
//! by Lemma 6; cross-weight dominance per [`TupleArray`]) — and arrays are
//! combined bottom-up by peeling leaves (Lemma 7).  Frontier lengths are
//! monotone, so each leaf tuple confines its scan of the parent array to the
//! `partition_point` prefix that keeps the combination within `Q.∆`;
//! infeasible pairs are counted, never materialised.
//!
//! Tuples live in the caller's [`TupleArena`]; a combination that is neither
//! the new best nor enters the parent's array is rolled straight back.
//! Entries *evicted* from an array by a dominating insert are not freed —
//! they may be shared with the best tracker or other arrays; the per-query
//! arena reset reclaims them.

use crate::arena::TupleArena;
use crate::cancel::CancelToken;
use crate::query_graph::QueryGraph;
use crate::region::RegionTuple;
use crate::trace::TraceCollector;
use crate::tuple_array::{BestTracker, TupleArray};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Result of the tree DP: the best feasible region plus every node's final
/// tuple array (used by the top-k extension).
#[derive(Debug, Clone)]
pub struct OptTreeResult {
    /// The feasible region with the largest scaled weight, if any node of the
    /// tree lies within the length budget (single nodes always do).
    pub best: Option<RegionTuple>,
    /// Final tuple arrays, keyed by local node id (ordered for deterministic
    /// traversal in the top-k path).
    pub arrays: BTreeMap<u32, TupleArray>,
    /// Number of region tuples materialised (for statistics).
    pub tuples_generated: u64,
    /// Combine pairs skipped by the length-budget `partition_point` without
    /// being materialised.
    pub pruned_pairs: u64,
    /// Whether the DP stopped early at a cancellation poll point; `best` is
    /// then the best-so-far incumbent over the leaves peeled so far.
    pub interrupted: bool,
}

impl OptTreeResult {
    /// Aggregate frontier counters over the final arrays, in the shape
    /// [`crate::stats::RunStats`] reports: total resident tuples, the largest
    /// single array, and dominance evictions.
    pub fn frontier_stats(&self) -> (u64, u64, u64) {
        let total: u64 = self.arrays.values().map(|a| a.len() as u64).sum();
        let peak = self
            .arrays
            .values()
            .map(|a| a.len() as u64)
            .max()
            .unwrap_or(0);
        let evictions: u64 = self
            .arrays
            .values()
            .map(TupleArray::dominance_evictions)
            .sum();
        (total, peak, evictions)
    }
}

/// Runs the `findOptTree` dynamic program over the candidate tree `tree`
/// (a [`RegionTuple`] whose nodes/edges form a tree in `graph`), returning the
/// best feasible region under the graph's length constraint `Q.∆`.
///
/// `ctl` is polled once per peeled leaf; when it fires the DP stops and
/// returns its incumbent with `interrupted: true`.  Each peeled leaf records
/// a `peel_leaf` span into `tracer` (one predicted branch when disabled).
pub fn find_opt_tree(
    graph: &QueryGraph,
    arena: &mut TupleArena,
    tree: &RegionTuple,
    ctl: &CancelToken,
    tracer: &mut TraceCollector,
) -> OptTreeResult {
    let delta = graph.delta();
    // Materialise the tree's id sets so the arena stays free for tuple
    // allocation inside the loops (the candidate tree is small).
    let tree_nodes: Vec<u32> = tree.nodes(arena).to_vec();
    let tree_edges: Vec<u32> = tree.edges(arena).to_vec();
    let m = tree_nodes.len();
    let mut best = BestTracker::new();
    let mut tuples_generated = 0u64;
    let mut pruned_pairs = 0u64;
    let mut interrupted = false;

    // All per-node DP state lives in flat vectors indexed by the node's
    // position in the (sorted) tree node list; `tree_pos` translates a local
    // graph id into that dense index.
    let tree_pos = |v: u32| -> u32 {
        tree_nodes
            .binary_search(&v)
            .expect("tree edge endpoint must be a tree node") as u32
    };

    // Initialise every node's array with the single-node region (line 3–4).
    let mut arrays: Vec<TupleArray> = Vec::with_capacity(m);
    for &v in &tree_nodes {
        let singleton = RegionTuple::singleton(arena, v, graph.weight(v), graph.scaled_weight(v));
        best.update(&singleton);
        let mut arr = TupleArray::new();
        arr.insert_if_better(singleton);
        arrays.push(arr);
        tuples_generated += 1;
    }
    let into_result = |best: BestTracker,
                       arrays: Vec<TupleArray>,
                       tuples_generated: u64,
                       pruned_pairs: u64,
                       interrupted: bool| {
        let arrays: BTreeMap<u32, TupleArray> = tree_nodes.iter().copied().zip(arrays).collect();
        OptTreeResult {
            best: best.into_best(),
            arrays,
            tuples_generated,
            pruned_pairs,
            interrupted,
        }
    };
    if m <= 1 {
        return into_result(best, arrays, tuples_generated, pruned_pairs, interrupted);
    }

    // Tree adjacency restricted to the candidate tree's edges, in tree positions.
    let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); m];
    for &e in &tree_edges {
        let edge = graph.edge(e);
        let pa = tree_pos(edge.a);
        let pb = tree_pos(edge.b);
        adj[pa as usize].push((pb, e));
        adj[pb as usize].push((pa, e));
    }
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut removed = vec![false; m];

    // Leaf queue (nodes with exactly one remaining neighbour), lines 5–12.
    let mut queue: VecDeque<u32> = (0..m as u32).filter(|&p| degree[p as usize] == 1).collect();
    let mut remaining = m;
    // Per-step snapshots (handle copies), hoisted for reuse.
    let mut v_tuples: Vec<RegionTuple> = Vec::new();
    let mut parent_tuples: Vec<RegionTuple> = Vec::new();

    while remaining > 1 {
        // Deadline poll, once per peeled leaf: the incumbent in `best` is a
        // valid anytime answer between peels.
        if ctl.is_cancelled() {
            interrupted = true;
            break;
        }
        let Some(p) = queue.pop_front() else { break };
        if removed[p as usize] || degree[p as usize] != 1 {
            continue;
        }
        // The single remaining neighbour acts as p's parent.
        let Some(&(parent, edge)) = adj[p as usize].iter().find(|(n, _)| !removed[*n as usize])
        else {
            break;
        };
        let edge_length = graph.edge(edge).length;
        let span = tracer.start("peel_leaf");
        let tuples_before = tuples_generated;
        // Combine every region rooted at p with every feasible region rooted
        // at the parent.  Both snapshots keep the frontier order (length
        // ascending), so the feasible parent partners of each leaf tuple form
        // a prefix, and once a leaf tuple's prefix is empty every longer leaf
        // tuple's is too.
        v_tuples.clear();
        v_tuples.extend(arrays[p as usize].iter().copied());
        parent_tuples.clear();
        parent_tuples.extend(arrays[parent as usize].iter().copied());
        let parent_array = &mut arrays[parent as usize];
        for (vi, tv) in v_tuples.iter().enumerate() {
            let feasible = parent_tuples
                .partition_point(|tp| tp.length + tv.length + edge_length <= delta + 1e-9);
            pruned_pairs += (parent_tuples.len() - feasible) as u64;
            if feasible == 0 {
                pruned_pairs += ((v_tuples.len() - vi - 1) * parent_tuples.len()) as u64;
                break;
            }
            for tp in &parent_tuples[..feasible] {
                let combined = tp.combine(tv, edge, edge_length, arena);
                debug_assert!(combined.length <= delta + 1e-9);
                tuples_generated += 1;
                let became_best = best.update(&combined);
                let inserted = parent_array.insert_if_better(combined);
                if !became_best && !inserted {
                    // Rejected by every consumer — single owner, roll back.
                    combined.free(arena);
                }
            }
        }
        tracer.end_with(
            span,
            &[
                ("node", u64::from(tree_nodes[p as usize])),
                ("tuples", tuples_generated - tuples_before),
            ],
        );
        // Remove p from the tree.
        removed[p as usize] = true;
        remaining -= 1;
        degree[parent as usize] = degree[parent as usize].saturating_sub(1);
        if degree[parent as usize] == 1 {
            queue.push_back(parent);
        }
    }

    into_result(best, arrays, tuples_generated, pruned_pairs, interrupted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cancel::CancelToken;
    use crate::query_graph::test_support::figure2_query_graph;

    /// Builds a candidate tree covering the whole Figure-2 graph: a spanning
    /// tree chosen by hand — v1-v2 (1.0), v2-v6 (1.6), v6-v5 (1.5), v5-v4 (2.8),
    /// v2-v3 (3.1); total length 10.0.
    fn spanning_tree_of_figure2(qg: &QueryGraph, arena: &mut TupleArena) -> RegionTuple {
        let find_edge = |a: u32, b: u32| -> u32 {
            qg.neighbors(a)
                .iter()
                .copied()
                .find(|&(n, _)| n == b)
                .map(|(_, e)| e)
                .unwrap()
        };
        let mut edges = vec![
            find_edge(0, 1),
            find_edge(1, 5),
            find_edge(5, 4),
            find_edge(4, 3),
            find_edge(1, 2),
        ];
        let nodes = vec![0, 1, 2, 3, 4, 5];
        let length: f64 = edges.iter().map(|&e| qg.edge(e).length).sum();
        let weight: f64 = nodes.iter().map(|&v| qg.weight(v)).sum();
        let scaled: u64 = nodes.iter().map(|&v| qg.scaled_weight(v)).sum();
        edges.sort_unstable();
        RegionTuple::from_parts(arena, length, weight, scaled, &nodes, &edges)
    }

    #[test]
    fn finds_the_papers_optimal_region_for_delta_6() {
        // With Q.∆ = 6 the optimal region of the running example is
        // {v2, v4, v5, v6} with weight 1.1 and length 5.9 — and that region is
        // contained in our spanning tree, so the DP must find it.
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        let tree = spanning_tree_of_figure2(&qg, &mut arena);
        let result = find_opt_tree(
            &qg,
            &mut arena,
            &tree,
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        );
        let best = result.best.unwrap();
        assert_eq!(best.scaled, 110);
        assert!((best.weight - 1.1).abs() < 1e-9);
        assert!((best.length - 5.9).abs() < 1e-9);
        assert_eq!(best.nodes(&arena), &[1, 3, 4, 5]);
        assert!(result.tuples_generated > 6);
        assert_eq!(result.arrays.len(), 6);
    }

    #[test]
    fn small_delta_returns_best_single_node() {
        let (_n, qg) = figure2_query_graph(0.5, 0.15);
        let mut arena = TupleArena::new();
        let tree = spanning_tree_of_figure2(&qg, &mut arena);
        let result = find_opt_tree(
            &qg,
            &mut arena,
            &tree,
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        );
        let best = result.best.unwrap();
        assert_eq!(best.node_count(), 1);
        assert_eq!(best.scaled, 40);
    }

    #[test]
    fn large_delta_keeps_the_whole_tree() {
        let (_n, qg) = figure2_query_graph(100.0, 0.15);
        let mut arena = TupleArena::new();
        let tree = spanning_tree_of_figure2(&qg, &mut arena);
        let result = find_opt_tree(
            &qg,
            &mut arena,
            &tree,
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        );
        let best = result.best.unwrap();
        assert_eq!(best.node_count(), 6);
        assert_eq!(best.scaled, 170);
        assert!((best.length - 10.0).abs() < 1e-9);
    }

    #[test]
    fn every_stored_tuple_is_feasible_or_a_singleton() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        let tree = spanning_tree_of_figure2(&qg, &mut arena);
        let result = find_opt_tree(
            &qg,
            &mut arena,
            &tree,
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        );
        for arr in result.arrays.values() {
            for t in arr.iter() {
                assert!(
                    t.length <= qg.delta() + 1e-9 || t.node_count() == 1,
                    "infeasible multi-node tuple stored: {t:?}"
                );
                // Measures are internally consistent.
                let w: f64 = t.nodes(&arena).iter().map(|&v| qg.weight(v)).sum();
                assert!((w - t.weight).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn single_node_tree_is_handled() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        let tree = RegionTuple::singleton(&mut arena, 2, qg.weight(2), qg.scaled_weight(2));
        let result = find_opt_tree(
            &qg,
            &mut arena,
            &tree,
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        );
        assert_eq!(result.best.unwrap().nodes(&arena), &[2]);
    }

    #[test]
    fn path_tree_example_from_figure_6() {
        // Figure 6: a 3-node star/path with v1(20)-4-v2(20), v1(20)-5-v3(40).
        // Under ∆ = 10 all combinations are feasible and the best has scaled 80.
        use lcmsr_geotext::collection::NodeWeights;
        use lcmsr_roadnet::builder::GraphBuilder;
        use lcmsr_roadnet::geo::Point;
        use lcmsr_roadnet::node::NodeId;
        use lcmsr_roadnet::subgraph::RegionView;

        let mut b = GraphBuilder::new();
        let v1 = b.add_node(Point::new(0.0, 0.0));
        let v2 = b.add_node(Point::new(4.0, 0.0));
        let v3 = b.add_node(Point::new(0.0, 5.0));
        b.add_edge(v1, v2, 4.0).unwrap();
        b.add_edge(v1, v3, 5.0).unwrap();
        let network = b.build().unwrap();
        let mut weights = NodeWeights::default();
        weights.by_node.insert(NodeId(0), 0.2);
        weights.by_node.insert(NodeId(1), 0.2);
        weights.by_node.insert(NodeId(2), 0.4);
        let view = RegionView::whole(&network);
        // α chosen so weights scale 100× (θ = 0.004·... we pick α = 0.03:
        // θ = 0.03·0.4/3 = 0.004 → scaled weights 50/50/100).  To match the
        // figure's 20/20/40 use α = 0.075: θ = 0.01.
        let qg = QueryGraph::build(&view, &weights, 10.0, 0.075).unwrap();
        assert_eq!(qg.scaled_weight(0), 20);
        assert_eq!(qg.scaled_weight(2), 40);
        let mut arena = TupleArena::new();
        let tree = RegionTuple::from_parts(&mut arena, 9.0, 0.8, 80, &[0, 1, 2], &[0, 1]);
        let result = find_opt_tree(
            &qg,
            &mut arena,
            &tree,
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        );
        let best = result.best.unwrap();
        assert_eq!(best.scaled, 80);
        assert_eq!(best.node_count(), 3);
        // The v1 array should now contain entries for 20 (itself), 40 (v1+v2),
        // 60 (v1+v3) and 80 (all three) — as walked through in Example 5.
        let v1_array = &result.arrays[&0];
        assert!(v1_array.get(20).is_some());
        assert!(v1_array.get(40).is_some());
        assert!(v1_array.get(60).is_some());
        assert!(v1_array.get(80).is_some());
    }
}
