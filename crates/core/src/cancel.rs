//! Cooperative cancellation and deadlines for the solve phase.
//!
//! LCMSR retrieval is an *interactive* primitive: a user pans, refines and
//! moves on, so a solver must be able to abandon work the instant the answer
//! stops mattering.  This module provides the anytime-query plumbing the
//! engine threads through every solver layer:
//!
//! * [`CancelToken`] — a cheap, cloneable poll point.  Solvers call
//!   [`CancelToken::is_cancelled`] at combine-loop and enumeration boundaries
//!   and, on expiry, return the **best region found so far** instead of either
//!   running to completion or aborting with nothing.  The result is flagged
//!   `partial: true` with a `deadline_exceeded` cause in
//!   [`crate::stats::RunStats`].
//! * [`Deadline`] — an absolute expiry [`Instant`] paired with the relative
//!   budget it was derived from.  The instant drives the token (so time spent
//!   queued in a serving front-end counts against the budget); the budget is
//!   what gets reported back on the wire, because an `Instant` is neither
//!   serializable nor meaningful across processes.
//!
//! A default-constructed token ([`CancelToken::none`]) carries no shared
//! state at all: polling it is a branch on a `None`, it can never fire, and
//! the solve path is bit-for-bit identical to one with no cancellation
//! support compiled in.  This is what keeps the golden-region suite byte
//! exact when no deadline is set.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reads the monotonic clock.
///
/// This module is the audited clock source for solver-side code: everything
/// under `crates/core` that needs a timestamp (deadline stamping, phase
/// timing in [`crate::stats::RunStats`]) goes through here, so a reviewer —
/// or `lcmsr-lint`'s `clock` rule — can find every time dependency of the
/// solve path in one place.
#[must_use]
pub fn now() -> Instant {
    Instant::now()
}

/// A deadline: the absolute instant work stops mattering, plus the relative
/// budget that instant was derived from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
    budget: Duration,
}

impl Deadline {
    /// A deadline `budget` from now.  Stamp it where the request *enters the
    /// system* (e.g. at HTTP decode time), not where the solver starts, so
    /// queue wait counts against the budget.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            at: Instant::now() + budget,
            budget,
        }
    }

    /// The absolute expiry instant.
    pub fn at(&self) -> Instant {
        self.at
    }

    /// The relative budget this deadline was created with (reported on the
    /// wire as `deadline_ns`).
    pub fn budget(&self) -> Duration {
        self.budget
    }

    /// Whether the deadline has already passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// A token that fires at this deadline.
    pub fn token(&self) -> CancelToken {
        CancelToken::with_deadline(self.at)
    }
}

/// Shared state behind an armed token.
#[derive(Debug)]
struct TokenInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cooperative cancellation token polled by the solvers.
///
/// Cloning is cheap (an `Arc` bump, or nothing for an inert token); clones
/// observe the same cancellation state.  The inert token returned by
/// [`CancelToken::none`] (and `Default`) holds no allocation and can never
/// fire — the hot loops pay one easily-predicted branch for it.
///
/// Once a token reports cancelled it stays cancelled: after the deadline
/// check first trips, the flag is latched so subsequent polls are a plain
/// atomic load with no clock read.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<TokenInner>>,
}

impl CancelToken {
    /// The inert token: never fires, costs nothing to poll.
    pub const fn none() -> Self {
        CancelToken { inner: None }
    }

    /// An armed token with no deadline; fires only via [`CancelToken::cancel`].
    pub fn manual() -> Self {
        CancelToken {
            inner: Some(Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A token that fires once `Instant::now()` reaches `at` (or earlier via
    /// [`CancelToken::cancel`]).
    pub fn with_deadline(at: Instant) -> Self {
        CancelToken {
            inner: Some(Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(at),
            })),
        }
    }

    /// A token that fires `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Self::with_deadline(Instant::now() + budget)
    }

    /// Fires the token (a no-op on the inert token).
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Whether this token can ever fire (false for the inert token).
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// The deadline instant, when this token has one.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|inner| inner.deadline)
    }

    /// Polls the token.  The poll points are coarse (once per enumerated
    /// edge, subset stride, binary-search probe, …), so the occasional clock
    /// read here is noise next to the work between polls.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        if inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match inner.deadline {
            Some(at) if Instant::now() >= at => {
                // Latch, so later polls skip the clock read.
                inner.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_token_never_fires() {
        let t = CancelToken::none();
        assert!(!t.is_armed());
        assert!(!t.is_cancelled());
        t.cancel(); // no-op
        assert!(!t.is_cancelled());
        assert_eq!(t.deadline(), None);
        assert!(!CancelToken::default().is_armed());
    }

    #[test]
    fn manual_token_fires_and_latches_across_clones() {
        let t = CancelToken::manual();
        assert!(t.is_armed());
        assert!(!t.is_cancelled());
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        assert!(clone.is_cancelled());
    }

    #[test]
    fn deadline_token_fires_after_expiry() {
        let t = CancelToken::after(Duration::from_secs(3600));
        assert!(!t.is_cancelled(), "one hour out must not fire");
        assert!(t.deadline().is_some());

        let expired = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(expired.is_cancelled());
        // Latched: still cancelled on re-poll.
        assert!(expired.is_cancelled());
    }

    #[test]
    fn deadline_carries_budget_and_instant() {
        let budget = Duration::from_millis(250);
        let d = Deadline::after(budget);
        assert_eq!(d.budget(), budget);
        assert!(!d.expired());
        assert!(d.remaining() <= budget);
        assert!(d.at() > Instant::now());
        let token = d.token();
        assert!(token.is_armed());
        assert_eq!(token.deadline(), Some(d.at()));

        let tight = Deadline::after(Duration::ZERO);
        assert!(tight.expired());
        assert_eq!(tight.remaining(), Duration::ZERO);
        assert!(tight.token().is_cancelled());
    }
}
