//! Regions and region tuples (Definitions 2 and 4 of the paper).
//!
//! Algorithms work with [`RegionTuple`]s in the query graph's *local* node and
//! edge ids; the final answer is translated into a [`Region`] carrying global
//! [`NodeId`]/[`EdgeId`]s plus the region's length, weight and scaled weight.
//!
//! Since PR 3 a tuple's node/edge sets live in a [`TupleArena`] — the tuple
//! itself is a 32-byte `Copy` struct of measures plus two `(offset, len)`
//! handles, so the combine loops of TGEN and `findOptTree` move no id data
//! when they enumerate, clone or rank tuples.  Only [`Region`], the public
//! result type, still owns its id vectors.

use crate::arena::{IdSetHandle, TupleArena};
use crate::query_graph::QueryGraph;
use lcmsr_roadnet::edge::EdgeId;
use lcmsr_roadnet::node::NodeId;
use serde::{Deserialize, Serialize};

/// A region tuple `T = (l, s, ŝ, V, E)` (Definition 4): total length, original
/// weight, scaled weight, node set and edge set — in local query-graph ids,
/// with the sets stored in a [`TupleArena`].
///
/// Copying a tuple copies the handles, not the sets; all set-touching
/// operations take the arena that owns the tuple's storage.  There is no
/// `PartialEq`: compare measures directly and node sets via
/// [`RegionTuple::same_nodes`].
#[derive(Debug, Clone, Copy)]
pub struct RegionTuple {
    /// Total length of all road segments in the region, metres.
    pub length: f64,
    /// Original (unscaled) total weight.
    pub weight: f64,
    /// Scaled total weight.
    pub scaled: u64,
    /// Local node ids, kept sorted (arena handle).
    node_set: IdSetHandle,
    /// Local edge ids, kept sorted (arena handle).
    edge_set: IdSetHandle,
}

impl RegionTuple {
    /// The single-node region `({v}, ∅)`.
    pub fn singleton(arena: &mut TupleArena, node: u32, weight: f64, scaled: u64) -> Self {
        RegionTuple {
            length: 0.0,
            weight,
            scaled,
            node_set: arena.alloc(&[node]),
            edge_set: IdSetHandle::EMPTY,
        }
    }

    /// Builds a tuple from explicit measures and sorted id slices (used by the
    /// exact solver, the k-MST oracles and tests).
    pub fn from_parts(
        arena: &mut TupleArena,
        length: f64,
        weight: f64,
        scaled: u64,
        nodes: &[u32],
        edges: &[u32],
    ) -> Self {
        RegionTuple {
            length,
            weight,
            scaled,
            node_set: arena.alloc(nodes),
            edge_set: arena.alloc(edges),
        }
    }

    /// The sorted local node ids.
    #[inline]
    pub fn nodes<'a>(&self, arena: &'a TupleArena) -> &'a [u32] {
        arena.get(self.node_set)
    }

    /// The sorted local edge ids.
    #[inline]
    pub fn edges<'a>(&self, arena: &'a TupleArena) -> &'a [u32] {
        arena.get(self.edge_set)
    }

    /// Number of nodes in the region (no arena needed — it is the handle's length).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_set.len()
    }

    /// Number of edges in the region.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_set.len()
    }

    /// The node-set handle (diagnostics/aliasing tests).
    pub fn node_handle(&self) -> IdSetHandle {
        self.node_set
    }

    /// The edge-set handle (diagnostics/aliasing tests).
    pub fn edge_handle(&self) -> IdSetHandle {
        self.edge_set
    }

    /// Whether this tuple and `other` describe the same node set.
    pub fn same_nodes(&self, other: &RegionTuple, arena: &TupleArena) -> bool {
        arena.same_ids(self.node_set, other.node_set)
    }

    /// Returns the tuple's two set blocks to the arena.  The caller must be
    /// the sole owner of this tuple's storage (see the [`crate::arena`] module
    /// docs) — solvers only free candidates that were never shared.
    pub fn free(self, arena: &mut TupleArena) {
        // Edges were allocated after nodes by every constructor, so freeing
        // them first lets both blocks roll the bump pointer back when the
        // tuple sits at the top of the slab.
        arena.free(self.edge_set);
        arena.free(self.node_set);
    }

    /// The total quality order shared by every ranking consumer
    /// (`BestTracker::update`, TGEN's top list, the top-k ranking):
    /// larger scaled weight first, then larger *original* weight (equal
    /// scaled weights only differ through the scaling's floor), then shorter
    /// length.  `Ordering::Less` means `self` ranks before (is better than)
    /// `other`, so sorting with this comparator lists the best tuple first.
    /// Keeping a single comparator is what guarantees `run_topk(…, 1)` agrees
    /// with the single-region `run`.
    pub fn cmp_quality(&self, other: &Self) -> std::cmp::Ordering {
        other
            .scaled
            .cmp(&self.scaled)
            .then_with(|| {
                other
                    .weight
                    .partial_cmp(&self.weight)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .then_with(|| {
                self.length
                    .partial_cmp(&other.length)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// Whether the region contains the local node `v`.
    pub fn contains_node(&self, v: u32, arena: &TupleArena) -> bool {
        self.nodes(arena).binary_search(&v).is_ok()
    }

    /// Whether this region and `other` share at least one node (Lemma 9 check).
    /// Both node lists are sorted, so this is a linear merge.
    pub fn shares_nodes(&self, other: &RegionTuple, arena: &TupleArena) -> bool {
        arena.intersects(self.node_set, other.node_set)
    }

    /// Combines this region with a node-disjoint region `other` via the edge
    /// `edge` of length `edge_length` (the edge's endpoints must lie one in each
    /// region, which the caller guarantees).
    pub fn combine(
        &self,
        other: &RegionTuple,
        edge: u32,
        edge_length: f64,
        arena: &mut TupleArena,
    ) -> RegionTuple {
        debug_assert!(
            !self.shares_nodes(other, arena),
            "combine requires disjoint regions"
        );
        let node_set = arena.merge(self.node_set, other.node_set);
        let edge_set = arena.merge_plus(self.edge_set, other.edge_set, edge);
        RegionTuple {
            length: self.length + other.length + edge_length,
            weight: self.weight + other.weight,
            scaled: self.scaled + other.scaled,
            node_set,
            edge_set,
        }
    }

    /// Extends the region by a single new node `node` (weights given) through
    /// `edge` of length `edge_length`.
    pub fn extend(
        &self,
        node: u32,
        node_weight: f64,
        node_scaled: u64,
        edge: u32,
        edge_length: f64,
        arena: &mut TupleArena,
    ) -> RegionTuple {
        debug_assert!(!self.contains_node(node, arena));
        let node_set = arena.insert_one(self.node_set, node);
        let edge_set = arena.insert_one(self.edge_set, edge);
        RegionTuple {
            length: self.length + edge_length,
            weight: self.weight + node_weight,
            scaled: self.scaled + node_scaled,
            node_set,
            edge_set,
        }
    }
}

/// A result region in global ids, with its aggregate measures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Global node ids of the region, sorted.
    pub nodes: Vec<NodeId>,
    /// Global edge ids of the region, sorted.
    pub edges: Vec<EdgeId>,
    /// Total length of the region's road segments, metres.
    pub length: f64,
    /// Total weight (query relevance) of the region.
    pub weight: f64,
    /// Total scaled weight of the region under the scaling used by the algorithm.
    pub scaled_weight: u64,
}

impl Region {
    /// Builds the global region corresponding to a local tuple.
    pub fn from_tuple(graph: &QueryGraph, arena: &TupleArena, tuple: &RegionTuple) -> Self {
        let mut nodes: Vec<NodeId> = tuple
            .nodes(arena)
            .iter()
            .map(|&v| graph.global_node(v))
            .collect();
        nodes.sort_unstable();
        let mut edges: Vec<EdgeId> = tuple
            .edges(arena)
            .iter()
            .map(|&e| graph.edge(e).global)
            .collect();
        edges.sort_unstable();
        Region {
            nodes,
            edges,
            length: tuple.length,
            weight: tuple.weight,
            scaled_weight: tuple.scaled,
        }
    }

    /// Number of nodes in the region.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the region is empty (no nodes).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether the region satisfies the length constraint `delta`.
    pub fn is_feasible(&self, delta: f64) -> bool {
        self.length <= delta + 1e-9
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "region[{} nodes, {} edges, length {:.1} m, weight {:.4}]",
            self.nodes.len(),
            self.edges.len(),
            self.length,
            self.weight
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_graph::test_support::figure2_query_graph;

    #[test]
    fn singleton_tuple() {
        let mut arena = TupleArena::new();
        let t = RegionTuple::singleton(&mut arena, 3, 0.4, 40);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.length, 0.0);
        assert!(t.contains_node(3, &arena));
        assert!(!t.contains_node(2, &arena));
        assert!(t.edges(&arena).is_empty());
        assert_eq!(t.edge_count(), 0);
    }

    #[test]
    fn shares_nodes_detects_overlap() {
        let mut arena = TupleArena::new();
        let a = RegionTuple::from_parts(&mut arena, 0.0, 0.0, 0, &[1, 3, 5], &[]);
        let b = RegionTuple::from_parts(&mut arena, 0.0, 0.0, 0, &[2, 4, 6], &[]);
        let c = RegionTuple::from_parts(&mut arena, 0.0, 0.0, 0, &[0, 5, 9], &[]);
        assert!(!a.shares_nodes(&b, &arena));
        assert!(a.shares_nodes(&c, &arena));
        assert!(c.shares_nodes(&a, &arena));
        assert!(!b.shares_nodes(&c, &arena));
        assert!(a.same_nodes(&a, &arena));
        assert!(!a.same_nodes(&b, &arena));
    }

    #[test]
    fn combine_merges_measures_and_sets() {
        let mut arena = TupleArena::new();
        let a = RegionTuple::singleton(&mut arena, 1, 0.3, 30);
        let b = RegionTuple::singleton(&mut arena, 5, 0.4, 40);
        let c = a.combine(&b, 6, 1.6, &mut arena);
        assert_eq!(c.nodes(&arena), &[1, 5]);
        assert_eq!(c.edges(&arena), &[6]);
        assert!((c.length - 1.6).abs() < 1e-12);
        assert!((c.weight - 0.7).abs() < 1e-12);
        assert_eq!(c.scaled, 70);
        // Combining larger disjoint regions keeps sets sorted.
        let d = RegionTuple::singleton(&mut arena, 0, 0.2, 20);
        let e = c.combine(&d, 0, 1.0, &mut arena);
        assert_eq!(e.nodes(&arena), &[0, 1, 5]);
        assert_eq!(e.edges(&arena), &[0, 6]);
    }

    #[test]
    fn extend_adds_one_node() {
        let mut arena = TupleArena::new();
        let a = RegionTuple::singleton(&mut arena, 2, 0.4, 40);
        let b = a.extend(3, 0.2, 20, 2, 5.0, &mut arena);
        assert_eq!(b.nodes(&arena), &[2, 3]);
        assert_eq!(b.edges(&arena), &[2]);
        assert!((b.length - 5.0).abs() < 1e-12);
        assert!((b.weight - 0.6).abs() < 1e-12);
        assert_eq!(b.scaled, 60);
    }

    #[test]
    fn free_returns_an_unshared_tuple_to_the_arena() {
        let mut arena = TupleArena::new();
        let a = RegionTuple::singleton(&mut arena, 1, 0.3, 30);
        let b = RegionTuple::singleton(&mut arena, 5, 0.4, 40);
        let before = arena.storage_len();
        let c = a.combine(&b, 6, 1.6, &mut arena);
        assert!(arena.storage_len() > before);
        c.free(&mut arena);
        assert_eq!(
            arena.storage_len(),
            before,
            "a discarded top-of-slab combine rolls fully back"
        );
        // Sources are untouched.
        assert_eq!(a.nodes(&arena), &[1]);
        assert_eq!(b.nodes(&arena), &[5]);
    }

    #[test]
    fn region_example_of_definition_4() {
        // Example 3: R.V = {v2, v4, v5, v6}, R.E = {(v2,v6),(v6,v5),(v5,v4)} at
        // 100× scaling gives T = (5.9, 1.1, 110, …).
        let (_network, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        // Build the tuple by combining singletons along the edges.
        let v2 = RegionTuple::singleton(&mut arena, 1, qg.weight(1), qg.scaled_weight(1));
        let v6 = RegionTuple::singleton(&mut arena, 5, qg.weight(5), qg.scaled_weight(5));
        let v5 = RegionTuple::singleton(&mut arena, 4, qg.weight(4), qg.scaled_weight(4));
        let v4 = RegionTuple::singleton(&mut arena, 3, qg.weight(3), qg.scaled_weight(3));
        // Find local edge ids for (v2,v6), (v6,v5), (v5,v4).
        let find_edge = |a: u32, b: u32| -> (u32, f64) {
            let (_, e) = qg
                .neighbors(a)
                .iter()
                .copied()
                .find(|&(n, _)| n == b)
                .unwrap();
            (e, qg.edge(e).length)
        };
        let (e26, l26) = find_edge(1, 5);
        let (e65, l65) = find_edge(5, 4);
        let (e54, l54) = find_edge(4, 3);
        let t26 = v2.combine(&v6, e26, l26, &mut arena);
        let t265 = t26.combine(&v5, e65, l65, &mut arena);
        let t = t265.combine(&v4, e54, l54, &mut arena);
        assert!((t.length - 5.9).abs() < 1e-9);
        assert!((t.weight - 1.1).abs() < 1e-9);
        assert_eq!(t.scaled, 110);
        let region = Region::from_tuple(&qg, &arena, &t);
        assert_eq!(region.node_count(), 4);
        assert_eq!(region.edges.len(), 3);
        assert!(region.is_feasible(6.0));
        assert!(!region.is_feasible(5.0));
        assert!(!region.is_empty());
        assert!(region.to_string().contains("4 nodes"));
    }
}
