//! Regions and region tuples (Definitions 2 and 4 of the paper).
//!
//! Algorithms work with [`RegionTuple`]s in the query graph's *local* node and
//! edge ids; the final answer is translated into a [`Region`] carrying global
//! [`NodeId`]/[`EdgeId`]s plus the region's length, weight and scaled weight.

use crate::query_graph::QueryGraph;
use lcmsr_roadnet::edge::EdgeId;
use lcmsr_roadnet::node::NodeId;
use serde::{Deserialize, Serialize};

/// A region tuple `T = (l, s, ŝ, V, E)` (Definition 4): total length, original
/// weight, scaled weight, node set and edge set — in local query-graph ids.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionTuple {
    /// Total length of all road segments in the region, metres.
    pub length: f64,
    /// Original (unscaled) total weight.
    pub weight: f64,
    /// Scaled total weight.
    pub scaled: u64,
    /// Local node ids, kept sorted.
    pub nodes: Vec<u32>,
    /// Local edge ids, kept sorted.
    pub edges: Vec<u32>,
}

impl RegionTuple {
    /// The single-node region `({v}, ∅)`.
    pub fn singleton(node: u32, weight: f64, scaled: u64) -> Self {
        RegionTuple {
            length: 0.0,
            weight,
            scaled,
            nodes: vec![node],
            edges: Vec::new(),
        }
    }

    /// Number of nodes in the region.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The total quality order shared by every ranking consumer
    /// (`BestTracker::update`, TGEN's top list, the top-k ranking):
    /// larger scaled weight first, then larger *original* weight (equal
    /// scaled weights only differ through the scaling's floor), then shorter
    /// length.  `Ordering::Less` means `self` ranks before (is better than)
    /// `other`, so sorting with this comparator lists the best tuple first.
    /// Keeping a single comparator is what guarantees `run_topk(…, 1)` agrees
    /// with the single-region `run`.
    pub fn cmp_quality(&self, other: &Self) -> std::cmp::Ordering {
        other
            .scaled
            .cmp(&self.scaled)
            .then_with(|| {
                other
                    .weight
                    .partial_cmp(&self.weight)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .then_with(|| {
                self.length
                    .partial_cmp(&other.length)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// Whether the region contains the local node `v`.
    pub fn contains_node(&self, v: u32) -> bool {
        self.nodes.binary_search(&v).is_ok()
    }

    /// Whether this region and `other` share at least one node (Lemma 9 check).
    /// Both node lists are sorted, so this is a linear merge.
    pub fn shares_nodes(&self, other: &RegionTuple) -> bool {
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.nodes.len() && j < other.nodes.len() {
            match self.nodes[i].cmp(&other.nodes[j]) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
        false
    }

    /// Combines this region with a node-disjoint region `other` via the edge
    /// `edge` of length `edge_length` (the edge's endpoints must lie one in each
    /// region, which the caller guarantees).
    pub fn combine(&self, other: &RegionTuple, edge: u32, edge_length: f64) -> RegionTuple {
        debug_assert!(
            !self.shares_nodes(other),
            "combine requires disjoint regions"
        );
        let mut nodes = Vec::with_capacity(self.nodes.len() + other.nodes.len());
        merge_sorted(&self.nodes, &other.nodes, &mut nodes);
        let mut edges = Vec::with_capacity(self.edges.len() + other.edges.len() + 1);
        merge_sorted(&self.edges, &other.edges, &mut edges);
        let pos = edges.partition_point(|&e| e < edge);
        edges.insert(pos, edge);
        RegionTuple {
            length: self.length + other.length + edge_length,
            weight: self.weight + other.weight,
            scaled: self.scaled + other.scaled,
            nodes,
            edges,
        }
    }

    /// Extends the region by a single new node `node` (weights given) through
    /// `edge` of length `edge_length`.
    pub fn extend(
        &self,
        node: u32,
        node_weight: f64,
        node_scaled: u64,
        edge: u32,
        edge_length: f64,
    ) -> RegionTuple {
        debug_assert!(!self.contains_node(node));
        let mut nodes = self.nodes.clone();
        let pos = nodes.partition_point(|&n| n < node);
        nodes.insert(pos, node);
        let mut edges = self.edges.clone();
        let epos = edges.partition_point(|&e| e < edge);
        edges.insert(epos, edge);
        RegionTuple {
            length: self.length + edge_length,
            weight: self.weight + node_weight,
            scaled: self.scaled + node_scaled,
            nodes,
            edges,
        }
    }
}

fn merge_sorted(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// A result region in global ids, with its aggregate measures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Global node ids of the region, sorted.
    pub nodes: Vec<NodeId>,
    /// Global edge ids of the region, sorted.
    pub edges: Vec<EdgeId>,
    /// Total length of the region's road segments, metres.
    pub length: f64,
    /// Total weight (query relevance) of the region.
    pub weight: f64,
    /// Total scaled weight of the region under the scaling used by the algorithm.
    pub scaled_weight: u64,
}

impl Region {
    /// Builds the global region corresponding to a local tuple.
    pub fn from_tuple(graph: &QueryGraph, tuple: &RegionTuple) -> Self {
        let mut nodes: Vec<NodeId> = tuple.nodes.iter().map(|&v| graph.global_node(v)).collect();
        nodes.sort_unstable();
        let mut edges: Vec<EdgeId> = tuple.edges.iter().map(|&e| graph.edge(e).global).collect();
        edges.sort_unstable();
        Region {
            nodes,
            edges,
            length: tuple.length,
            weight: tuple.weight,
            scaled_weight: tuple.scaled,
        }
    }

    /// Number of nodes in the region.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the region is empty (no nodes).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether the region satisfies the length constraint `delta`.
    pub fn is_feasible(&self, delta: f64) -> bool {
        self.length <= delta + 1e-9
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "region[{} nodes, {} edges, length {:.1} m, weight {:.4}]",
            self.nodes.len(),
            self.edges.len(),
            self.length,
            self.weight
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_graph::test_support::figure2_query_graph;

    #[test]
    fn singleton_tuple() {
        let t = RegionTuple::singleton(3, 0.4, 40);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.length, 0.0);
        assert!(t.contains_node(3));
        assert!(!t.contains_node(2));
        assert!(t.edges.is_empty());
    }

    #[test]
    fn shares_nodes_detects_overlap() {
        let a = RegionTuple {
            length: 0.0,
            weight: 0.0,
            scaled: 0,
            nodes: vec![1, 3, 5],
            edges: vec![],
        };
        let b = RegionTuple {
            length: 0.0,
            weight: 0.0,
            scaled: 0,
            nodes: vec![2, 4, 6],
            edges: vec![],
        };
        let c = RegionTuple {
            length: 0.0,
            weight: 0.0,
            scaled: 0,
            nodes: vec![0, 5, 9],
            edges: vec![],
        };
        assert!(!a.shares_nodes(&b));
        assert!(a.shares_nodes(&c));
        assert!(c.shares_nodes(&a));
        assert!(!b.shares_nodes(&c));
    }

    #[test]
    fn combine_merges_measures_and_sets() {
        let a = RegionTuple::singleton(1, 0.3, 30);
        let b = RegionTuple::singleton(5, 0.4, 40);
        let c = a.combine(&b, 6, 1.6);
        assert_eq!(c.nodes, vec![1, 5]);
        assert_eq!(c.edges, vec![6]);
        assert!((c.length - 1.6).abs() < 1e-12);
        assert!((c.weight - 0.7).abs() < 1e-12);
        assert_eq!(c.scaled, 70);
        // Combining larger disjoint regions keeps sets sorted.
        let d = RegionTuple::singleton(0, 0.2, 20);
        let e = c.combine(&d, 0, 1.0);
        assert_eq!(e.nodes, vec![0, 1, 5]);
        assert_eq!(e.edges, vec![0, 6]);
    }

    #[test]
    fn extend_adds_one_node() {
        let a = RegionTuple::singleton(2, 0.4, 40);
        let b = a.extend(3, 0.2, 20, 2, 5.0);
        assert_eq!(b.nodes, vec![2, 3]);
        assert_eq!(b.edges, vec![2]);
        assert!((b.length - 5.0).abs() < 1e-12);
        assert!((b.weight - 0.6).abs() < 1e-12);
        assert_eq!(b.scaled, 60);
    }

    #[test]
    fn region_example_of_definition_4() {
        // Example 3: R.V = {v2, v4, v5, v6}, R.E = {(v2,v6),(v6,v5),(v5,v4)} at
        // 100× scaling gives T = (5.9, 1.1, 110, …).
        let (_network, qg) = figure2_query_graph(6.0, 0.15);
        // Build the tuple by combining singletons along the edges.
        let v2 = RegionTuple::singleton(1, qg.weight(1), qg.scaled_weight(1));
        let v6 = RegionTuple::singleton(5, qg.weight(5), qg.scaled_weight(5));
        let v5 = RegionTuple::singleton(4, qg.weight(4), qg.scaled_weight(4));
        let v4 = RegionTuple::singleton(3, qg.weight(3), qg.scaled_weight(3));
        // Find local edge ids for (v2,v6), (v6,v5), (v5,v4).
        let find_edge = |a: u32, b: u32| -> (u32, f64) {
            let (_, e) = qg
                .neighbors(a)
                .iter()
                .copied()
                .find(|&(n, _)| n == b)
                .unwrap();
            (e, qg.edge(e).length)
        };
        let (e26, l26) = find_edge(1, 5);
        let (e65, l65) = find_edge(5, 4);
        let (e54, l54) = find_edge(4, 3);
        let t = v2
            .combine(&v6, e26, l26)
            .combine(&v5, e65, l65)
            .combine(&v4, e54, l54);
        assert!((t.length - 5.9).abs() < 1e-9);
        assert!((t.weight - 1.1).abs() < 1e-9);
        assert_eq!(t.scaled, 110);
        let region = Region::from_tuple(&qg, &t);
        assert_eq!(region.node_count(), 4);
        assert_eq!(region.edges.len(), 3);
        assert!(region.is_feasible(6.0));
        assert!(!region.is_feasible(5.0));
        assert!(!region.is_empty());
        assert!(region.to_string().contains("4 nodes"));
    }
}
