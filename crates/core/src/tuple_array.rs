//! Region tuple arrays (Definitions 5 and 6 of the paper).
//!
//! A tuple array keeps, for each scaled weight value `S`, the region tuple with
//! the smallest length among all enumerated regions having scaled weight `S`
//! (Lemma 6 justifies this dominance pruning inside `findOptTree`; TGEN reuses
//! the same structure over the whole graph).
//!
//! Tuples are arena-backed handle structs (`Copy`), so storing, replacing and
//! iterating entries moves no id data.  Replaced entries are *not* returned to
//! the arena — the same tuple is routinely stored in several node arrays at
//! once, so individual entries have no single owner; the workspace arena
//! reclaims everything between queries.

use crate::region::RegionTuple;
use std::collections::BTreeMap;

/// A map from scaled weight to the minimum-length region tuple seen with that
/// weight.  Backed by an ordered map so that iteration — and therefore every
/// tie-break that depends on tuple enumeration order downstream — is
/// deterministic run-to-run; batched execution relies on this to return
/// byte-identical results to sequential execution.
#[derive(Debug, Clone, Default)]
pub struct TupleArray {
    by_scaled: BTreeMap<u64, RegionTuple>,
}

impl TupleArray {
    /// Creates an empty array.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct scaled-weight entries.
    pub fn len(&self) -> usize {
        self.by_scaled.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.by_scaled.is_empty()
    }

    /// The stored tuple for scaled weight `s`, if any.
    pub fn get(&self, s: u64) -> Option<&RegionTuple> {
        self.by_scaled.get(&s)
    }

    /// Inserts `tuple` if no tuple with the same scaled weight exists or the
    /// existing one is longer.  Returns true when the array changed.
    pub fn insert_if_better(&mut self, tuple: RegionTuple) -> bool {
        match self.by_scaled.get(&tuple.scaled) {
            Some(existing) if existing.length <= tuple.length => false,
            _ => {
                self.by_scaled.insert(tuple.scaled, tuple);
                true
            }
        }
    }

    /// Iterates over the stored tuples in ascending scaled-weight order.
    pub fn iter(&self) -> impl Iterator<Item = &RegionTuple> {
        self.by_scaled.values()
    }

    /// The stored tuple with the largest scaled weight, ties broken by the
    /// smaller length (matching the paper's tie-breaking rule).
    pub fn best(&self) -> Option<&RegionTuple> {
        self.by_scaled.values().max_by(|a, b| {
            a.scaled.cmp(&b.scaled).then_with(|| {
                b.length
                    .partial_cmp(&a.length)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
        })
    }

    /// Drains the array, returning all tuples.
    pub fn into_tuples(self) -> Vec<RegionTuple> {
        self.by_scaled.into_values().collect()
    }
}

/// Keeps the overall best tuple(s) seen so far across the whole run.
///
/// `update` applies the shared quality order ([`RegionTuple::cmp_quality`]):
/// larger scaled weight wins; among equal scaled weights the larger original
/// weight wins, then the shorter region.
///
/// The tracker holds a handle copy of the winning tuple, so callers must not
/// free a tuple after offering it (solvers only free candidates that were
/// rejected by *every* consumer).
#[derive(Debug, Clone, Default)]
pub struct BestTracker {
    best: Option<RegionTuple>,
}

impl BestTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// The best tuple so far, if any.
    pub fn best(&self) -> Option<&RegionTuple> {
        self.best.as_ref()
    }

    /// Takes ownership of the best tuple.
    pub fn into_best(self) -> Option<RegionTuple> {
        self.best
    }

    /// Offers a candidate; keeps it when it beats the current best under the
    /// shared quality order ([`RegionTuple::cmp_quality`]: larger scaled
    /// weight, then larger original weight, then shorter length — refining the
    /// paper's tie-breaking without changing the scaled-weight objective).
    /// Returns true when the candidate became the new best.
    pub fn update(&mut self, candidate: &RegionTuple) -> bool {
        let better = match &self.best {
            None => true,
            Some(current) => candidate.cmp_quality(current) == std::cmp::Ordering::Less,
        };
        if better {
            self.best = Some(*candidate);
        }
        better
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::TupleArena;

    fn tuple(arena: &mut TupleArena, scaled: u64, length: f64, node: u32) -> RegionTuple {
        RegionTuple::from_parts(arena, length, scaled as f64 / 100.0, scaled, &[node], &[])
    }

    #[test]
    fn insert_keeps_min_length_per_scaled_weight() {
        let mut arena = TupleArena::new();
        let mut arr = TupleArray::new();
        assert!(arr.is_empty());
        let t = tuple(&mut arena, 10, 5.0, 1);
        assert!(arr.insert_if_better(t));
        let t = tuple(&mut arena, 10, 6.0, 2);
        assert!(!arr.insert_if_better(t), "longer tuple rejected");
        let t = tuple(&mut arena, 10, 4.0, 3);
        assert!(arr.insert_if_better(t), "shorter tuple accepted");
        let t = tuple(&mut arena, 20, 9.0, 4);
        assert!(arr.insert_if_better(t));
        assert_eq!(arr.len(), 2);
        assert_eq!(arr.get(10).unwrap().length, 4.0);
        assert!(arr.get(15).is_none());
        assert_eq!(arr.iter().count(), 2);
        assert_eq!(arr.into_tuples().len(), 2);
    }

    #[test]
    fn equal_length_does_not_replace() {
        let mut arena = TupleArena::new();
        let mut arr = TupleArray::new();
        let t = tuple(&mut arena, 5, 2.0, 1);
        assert!(arr.insert_if_better(t));
        let t = tuple(&mut arena, 5, 2.0, 9);
        assert!(!arr.insert_if_better(t));
        assert_eq!(arr.get(5).unwrap().nodes(&arena), &[1]);
    }

    #[test]
    fn best_prefers_scaled_weight_then_length() {
        let mut arena = TupleArena::new();
        let mut arr = TupleArray::new();
        let t = tuple(&mut arena, 10, 1.0, 1);
        arr.insert_if_better(t);
        let t = tuple(&mut arena, 30, 9.0, 2);
        arr.insert_if_better(t);
        let t = tuple(&mut arena, 20, 0.5, 3);
        arr.insert_if_better(t);
        assert_eq!(arr.best().unwrap().scaled, 30);
        assert!(TupleArray::new().best().is_none());
    }

    #[test]
    fn best_tracker_orders_candidates() {
        let mut arena = TupleArena::new();
        let mut tracker = BestTracker::new();
        assert!(tracker.best().is_none());
        let t = tuple(&mut arena, 10, 5.0, 1);
        assert!(tracker.update(&t));
        let t = tuple(&mut arena, 9, 1.0, 2);
        assert!(!tracker.update(&t), "lower weight never wins");
        let t = tuple(&mut arena, 10, 6.0, 3);
        assert!(!tracker.update(&t), "same weights, longer loses");
        let t = tuple(&mut arena, 10, 4.0, 4);
        assert!(tracker.update(&t), "same weights, shorter wins");
        // Equal scaled weight but larger original weight wins regardless of length.
        let heavier = RegionTuple::from_parts(&mut arena, 9.0, 0.2, 10, &[8], &[]);
        assert!(tracker.update(&heavier));
        let t = tuple(&mut arena, 11, 9.0, 5);
        assert!(tracker.update(&t));
        assert_eq!(tracker.best().unwrap().scaled, 11);
        assert_eq!(tracker.into_best().unwrap().nodes(&arena), &[5]);
    }
}
