//! Region tuple arrays (Definitions 5 and 6 of the paper), stored as strict
//! Pareto frontiers.
//!
//! A tuple array keeps, for each scaled weight value `S`, the region tuple
//! with the smallest length among all enumerated regions having scaled weight
//! `S` (Lemma 6 justifies this dominance pruning inside `findOptTree`).
//! Since PR 5 `findOptTree`'s arrays extend the pruning *across* scaled
//! weights: the two sides of a tree-DP combine are node-disjoint by
//! construction (a peeled subtree vs the rest of the tree), so a tuple with
//! scaled weight `S1 ≥ S2` and length `L1 ≤ L2` can stand in for `(S2, L2)`
//! in every combination — any feasible combination the dominated tuple would
//! have joined has a counterpart through the dominator with at least the same
//! scaled weight and at most the same length.  [`TupleArray`] therefore
//! stores only the strict frontier: **scaled weight strictly increasing,
//! length strictly increasing**.  TGEN's whole-graph arrays must *not* apply
//! cross-weight dominance (Lemma 9's disjointness check breaks the
//! substitution argument — see [`ExploredArray`]); they share the flat
//! sorted-`Vec` layout but prune per scaled weight only.
//!
//! The frontier is a flat sorted `Vec`.  Insertion binary-searches the scaled
//! weight; a dominated candidate is rejected by a single comparison against
//! its successor, and an accepted candidate evicts the (contiguous, possibly
//! empty) run of predecessors it newly dominates.  Because lengths increase
//! along the frontier, a consumer with a residual length budget `B` can
//! confine its scan to the prefix `length ≤ B` via `partition_point` — TGEN's
//! combine loop uses exactly this to skip infeasible pairs without
//! materialising them.
//!
//! **Interaction with ranking (`cmp_quality`).**  Dominance only ever
//! discards a tuple whose scaled weight is *strictly lower* than its
//! dominator's, or one with the same scaled weight but a longer-or-equal
//! region — the same per-scaled-weight rule the pre-frontier array already
//! applied.  In the strictly-lower case the discarded tuple ranks strictly
//! worse under the shared quality order (scaled weight is its primary key),
//! so the single best region read off an array is unchanged.  Top-k
//! consumers, which enumerate arrays for *runners-up*, no longer see
//! dominated-but-distinct node sets at all — the chosen behaviour, pinned by
//! the committed golden-region suite (`tests/golden_regions.rs`): a
//! dominated region is never reported because a no-worse region over the
//! same budget always is.
//!
//! Tuples are arena-backed handle structs (`Copy`), so storing, replacing and
//! iterating entries moves no id data.  Evicted and replaced entries are
//! *not* returned to the arena — the same tuple is routinely stored in
//! several node arrays at once, so individual entries have no single owner;
//! the workspace arena reclaims everything between queries.

use crate::region::RegionTuple;

/// A strict Pareto frontier of region tuples: scaled weight strictly
/// increasing, length strictly increasing.  Iteration — and therefore every
/// tie-break that depends on tuple enumeration order downstream — is
/// deterministic run-to-run; batched execution relies on this to return
/// byte-identical results to sequential execution.
#[derive(Debug, Clone, Default)]
pub struct TupleArray {
    frontier: Vec<RegionTuple>,
    /// Entries removed by a dominating insert (cumulative; diagnostics).
    evictions: u64,
    /// Candidates rejected because an entry already dominated them
    /// (cumulative; diagnostics).
    rejects: u64,
}

impl TupleArray {
    /// Creates an empty array.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tuples on the frontier.
    pub fn len(&self) -> usize {
        self.frontier.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.frontier.is_empty()
    }

    /// The stored tuple with scaled weight exactly `s`, if one survives on
    /// the frontier.
    pub fn get(&self, s: u64) -> Option<&RegionTuple> {
        self.frontier
            .binary_search_by(|t| t.scaled.cmp(&s))
            .ok()
            .map(|i| &self.frontier[i])
    }

    /// Inserts `tuple` unless an entry already dominates it (scaled weight ≥
    /// and length ≤), evicting every entry the candidate newly dominates.
    /// Returns true when the array changed.  Ties keep the incumbent: a
    /// candidate with the same scaled weight and the same length as a stored
    /// entry is rejected, matching the pre-frontier first-wins rule.
    pub fn insert_if_better(&mut self, tuple: RegionTuple) -> bool {
        // First entry with scaled weight ≥ the candidate's.  Lengths increase
        // along the frontier, so this entry carries the minimum length among
        // all entries that could dominate the candidate — one comparison
        // decides rejection.
        let idx = self.frontier.partition_point(|t| t.scaled < tuple.scaled);
        if let Some(t) = self.frontier.get(idx) {
            if t.length <= tuple.length {
                self.rejects += 1;
                return false;
            }
        }
        // The candidate survives.  Predecessors with length ≥ the candidate's
        // have strictly smaller scaled weight and are now dominated; they form
        // a contiguous run ending at `idx` (lengths increase), possibly
        // extended by an equal-scaled (longer) incumbent at `idx` itself.
        let mut start = idx;
        while start > 0 && self.frontier[start - 1].length >= tuple.length {
            start -= 1;
        }
        let end = if self
            .frontier
            .get(idx)
            .is_some_and(|t| t.scaled == tuple.scaled)
        {
            idx + 1
        } else {
            idx
        };
        self.evictions += (end - start) as u64;
        if start < end {
            self.frontier[start] = tuple;
            self.frontier.drain(start + 1..end);
        } else {
            self.frontier.insert(start, tuple);
        }
        debug_assert!(self
            .frontier
            .windows(2)
            .all(|w| w[0].scaled < w[1].scaled && w[0].length < w[1].length));
        true
    }

    /// Iterates over the frontier in ascending scaled-weight (and therefore
    /// ascending length) order.
    pub fn iter(&self) -> impl Iterator<Item = &RegionTuple> {
        self.frontier.iter()
    }

    /// The frontier as a slice (ascending scaled weight and length) — the
    /// shape budget-pruned consumers `partition_point` over.
    pub fn as_slice(&self) -> &[RegionTuple] {
        &self.frontier
    }

    /// The stored tuple with the largest scaled weight.  The frontier keeps
    /// exactly one (minimum-length) tuple per scaled weight, so this is the
    /// paper's best-of-array with its tie-breaking rule built in.
    pub fn best(&self) -> Option<&RegionTuple> {
        self.frontier.last()
    }

    /// Drains the array, returning the frontier tuples in ascending
    /// scaled-weight order.
    pub fn into_tuples(self) -> Vec<RegionTuple> {
        self.frontier
    }

    /// Entries evicted by dominating inserts since construction.
    pub fn dominance_evictions(&self) -> u64 {
        self.evictions
    }

    /// Candidates rejected as dominated since construction.
    pub fn dominated_rejects(&self) -> u64 {
        self.rejects
    }
}

/// TGEN's *explored region tuple array* (Definition 6): one minimum-length
/// tuple per distinct scaled weight on a flat sorted `Vec`, binary-search
/// insert, **no cross-weight dominance**.
///
/// TGEN cannot use the Pareto-frontier [`TupleArray`]: its combine loop runs
/// over the whole query graph, where Lemma 9 skips partners that share nodes.
/// A dominating tuple may share nodes with a partner its dominated victim is
/// disjoint from, so evicting the victim loses combinations the dominator
/// cannot stand in for — on the golden tiny-NY workload, applying cross-weight
/// dominance to TGEN's arrays regressed 2 of 32 single-query answers (e.g.
/// q08: scaled weight 484 → 466).  Inside `findOptTree` the two sides of a
/// combine are node-disjoint *by construction* (peeled subtree vs rest of the
/// tree — there is no shares-nodes check to interfere), which is why the
/// frontier is sound there and only there.  This analysis is pinned by
/// `tests/golden_regions.rs`.
///
/// Iteration is ascending scaled weight, bit-compatible with the `BTreeMap`
/// array PRs 2–4 used; the flat layout is what the combine loop's snapshots
/// and the per-edge length-sorted permutation for budget pruning index into.
#[derive(Debug, Clone, Default)]
pub struct ExploredArray {
    by_scaled: Vec<RegionTuple>,
    /// Entries replaced by a same-scaled shorter tuple (Lemma 6 pruning;
    /// cumulative, diagnostics).
    replacements: u64,
    /// Bumped on every content change; snapshot caches (TGEN's per-edge
    /// length-sorted right snapshot) compare it to skip rebuild+re-sort when
    /// the array is unchanged since the last snapshot.
    version: u64,
}

impl ExploredArray {
    /// Creates an empty array.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct scaled-weight entries.
    pub fn len(&self) -> usize {
        self.by_scaled.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.by_scaled.is_empty()
    }

    /// The stored tuple for scaled weight `s`, if any.
    pub fn get(&self, s: u64) -> Option<&RegionTuple> {
        self.by_scaled
            .binary_search_by(|t| t.scaled.cmp(&s))
            .ok()
            .map(|i| &self.by_scaled[i])
    }

    /// Inserts `tuple` if no tuple with the same scaled weight exists or the
    /// existing one is longer.  Returns true when the array changed.
    pub fn insert_if_better(&mut self, tuple: RegionTuple) -> bool {
        match self
            .by_scaled
            .binary_search_by(|t| t.scaled.cmp(&tuple.scaled))
        {
            Ok(i) => {
                if self.by_scaled[i].length <= tuple.length {
                    return false;
                }
                self.by_scaled[i] = tuple;
                self.replacements += 1;
                self.version += 1;
                true
            }
            Err(i) => {
                self.by_scaled.insert(i, tuple);
                self.version += 1;
                true
            }
        }
    }

    /// Iterates over the stored tuples in ascending scaled-weight order.
    pub fn iter(&self) -> impl Iterator<Item = &RegionTuple> {
        self.by_scaled.iter()
    }

    /// The array as a slice in ascending scaled-weight order.
    pub fn as_slice(&self) -> &[RegionTuple] {
        &self.by_scaled
    }

    /// The stored tuple with the largest scaled weight (one tuple per scaled
    /// weight, so the paper's tie-break is built in).
    pub fn best(&self) -> Option<&RegionTuple> {
        self.by_scaled.last()
    }

    /// Drains the array, returning all tuples in ascending scaled-weight order.
    pub fn into_tuples(self) -> Vec<RegionTuple> {
        self.by_scaled
    }

    /// Entries replaced by same-scaled shorter tuples since construction.
    pub fn replacements(&self) -> u64 {
        self.replacements
    }

    /// Content version: changes exactly when the array's contents change.
    /// Starts at 0 for an empty array.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// The pre-frontier tuple array (PRs 2–4): one minimum-length tuple per
/// distinct scaled weight, no cross-weight dominance, kept in a `BTreeMap`.
///
/// Retained as the **reference model**: `run_tgen_baseline` drives the PR 3/4
/// combine loop with it so `bench/benches/solve_phase.rs` can measure the
/// frontier's combine-loop speedup against the real predecessor on the same
/// workload (and assert the frontier never holds more tuples), and the
/// shadow-model proptests in `tests/tuple_frontier.rs` check the frontier
/// against this model plus a post-hoc dominance filter.
#[derive(Debug, Clone, Default)]
pub struct NaiveTupleArray {
    by_scaled: std::collections::BTreeMap<u64, RegionTuple>,
}

impl NaiveTupleArray {
    /// Creates an empty array.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct scaled-weight entries.
    pub fn len(&self) -> usize {
        self.by_scaled.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.by_scaled.is_empty()
    }

    /// The stored tuple for scaled weight `s`, if any.
    pub fn get(&self, s: u64) -> Option<&RegionTuple> {
        self.by_scaled.get(&s)
    }

    /// Inserts `tuple` if no tuple with the same scaled weight exists or the
    /// existing one is longer.  Returns true when the array changed.
    pub fn insert_if_better(&mut self, tuple: RegionTuple) -> bool {
        match self.by_scaled.get(&tuple.scaled) {
            Some(existing) if existing.length <= tuple.length => false,
            _ => {
                self.by_scaled.insert(tuple.scaled, tuple);
                true
            }
        }
    }

    /// Iterates over the stored tuples in ascending scaled-weight order.
    pub fn iter(&self) -> impl Iterator<Item = &RegionTuple> {
        self.by_scaled.values()
    }

    /// The stored tuples that survive the cross-weight dominance filter, in
    /// ascending scaled-weight order — what a [`TupleArray`] fed the same
    /// inserts must hold (up to tie-breaks on *which* equal-measure tuple
    /// survives, which insertion order decides in both structures).
    pub fn pareto_filtered(&self) -> Vec<RegionTuple> {
        let mut kept: Vec<RegionTuple> = Vec::new();
        let mut best_len = f64::INFINITY;
        for t in self.by_scaled.values().rev() {
            if t.length < best_len {
                kept.push(*t);
                best_len = t.length;
            }
        }
        kept.reverse();
        kept
    }
}

/// Keeps the overall best tuple(s) seen so far across the whole run.
///
/// `update` applies the shared quality order ([`RegionTuple::cmp_quality`]):
/// larger scaled weight wins; among equal scaled weights the larger original
/// weight wins, then the shorter region.
///
/// The tracker holds a handle copy of the winning tuple, so callers must not
/// free a tuple after offering it (solvers only free candidates that were
/// rejected by *every* consumer).
#[derive(Debug, Clone, Default)]
pub struct BestTracker {
    best: Option<RegionTuple>,
}

impl BestTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// The best tuple so far, if any.
    pub fn best(&self) -> Option<&RegionTuple> {
        self.best.as_ref()
    }

    /// Takes ownership of the best tuple.
    pub fn into_best(self) -> Option<RegionTuple> {
        self.best
    }

    /// Offers a candidate; keeps it when it beats the current best under the
    /// shared quality order ([`RegionTuple::cmp_quality`]: larger scaled
    /// weight, then larger original weight, then shorter length — refining the
    /// paper's tie-breaking without changing the scaled-weight objective).
    /// Returns true when the candidate became the new best.
    pub fn update(&mut self, candidate: &RegionTuple) -> bool {
        let better = match &self.best {
            None => true,
            Some(current) => candidate.cmp_quality(current) == std::cmp::Ordering::Less,
        };
        if better {
            self.best = Some(*candidate);
        }
        better
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::TupleArena;

    fn tuple(arena: &mut TupleArena, scaled: u64, length: f64, node: u32) -> RegionTuple {
        RegionTuple::from_parts(arena, length, scaled as f64 / 100.0, scaled, &[node], &[])
    }

    #[test]
    fn insert_keeps_min_length_per_scaled_weight() {
        let mut arena = TupleArena::new();
        let mut arr = TupleArray::new();
        assert!(arr.is_empty());
        let t = tuple(&mut arena, 10, 5.0, 1);
        assert!(arr.insert_if_better(t));
        let t = tuple(&mut arena, 10, 6.0, 2);
        assert!(!arr.insert_if_better(t), "longer tuple rejected");
        let t = tuple(&mut arena, 10, 4.0, 3);
        assert!(arr.insert_if_better(t), "shorter tuple accepted");
        let t = tuple(&mut arena, 20, 9.0, 4);
        assert!(arr.insert_if_better(t));
        assert_eq!(arr.len(), 2);
        assert_eq!(arr.get(10).unwrap().length, 4.0);
        assert!(arr.get(15).is_none());
        assert_eq!(arr.iter().count(), 2);
        assert_eq!(arr.into_tuples().len(), 2);
    }

    #[test]
    fn equal_length_does_not_replace() {
        let mut arena = TupleArena::new();
        let mut arr = TupleArray::new();
        let t = tuple(&mut arena, 5, 2.0, 1);
        assert!(arr.insert_if_better(t));
        let t = tuple(&mut arena, 5, 2.0, 9);
        assert!(!arr.insert_if_better(t));
        assert_eq!(arr.get(5).unwrap().nodes(&arena), &[1]);
        assert_eq!(arr.dominated_rejects(), 1);
    }

    #[test]
    fn dominated_candidates_are_rejected_across_weights() {
        let mut arena = TupleArena::new();
        let mut arr = TupleArray::new();
        let t = tuple(&mut arena, 20, 3.0, 1);
        assert!(arr.insert_if_better(t));
        // Lower scaled weight, longer: dominated.
        let t = tuple(&mut arena, 10, 4.0, 2);
        assert!(!arr.insert_if_better(t));
        // Lower scaled weight, equal length: dominated.
        let t = tuple(&mut arena, 10, 3.0, 3);
        assert!(!arr.insert_if_better(t));
        // Lower scaled weight, strictly shorter: survives below the dominator.
        let t = tuple(&mut arena, 10, 1.0, 4);
        assert!(arr.insert_if_better(t));
        assert_eq!(arr.len(), 2);
        assert_eq!(arr.dominated_rejects(), 2);
        let scaled: Vec<u64> = arr.iter().map(|t| t.scaled).collect();
        assert_eq!(scaled, vec![10, 20]);
    }

    #[test]
    fn dominating_insert_evicts_the_whole_run() {
        let mut arena = TupleArena::new();
        let mut arr = TupleArray::new();
        for (s, l, n) in [(5, 1.0, 1), (10, 2.0, 2), (15, 3.0, 3), (20, 9.0, 4)] {
            let t = tuple(&mut arena, s, l, n);
            assert!(arr.insert_if_better(t));
        }
        assert_eq!(arr.len(), 4);
        // (18, 1.5) dominates (10, 2.0) and (15, 3.0) but not (5, 1.0) or
        // the heavier (20, 9.0).
        let t = tuple(&mut arena, 18, 1.5, 5);
        assert!(arr.insert_if_better(t));
        let scaled: Vec<u64> = arr.iter().map(|t| t.scaled).collect();
        assert_eq!(scaled, vec![5, 18, 20]);
        assert_eq!(arr.dominance_evictions(), 2);
        // Equal-scaled replacement also counts as an eviction and keeps the
        // frontier strict.
        let t = tuple(&mut arena, 18, 1.2, 6);
        assert!(arr.insert_if_better(t));
        assert_eq!(arr.get(18).unwrap().nodes(&arena), &[6]);
        assert_eq!(arr.dominance_evictions(), 3);
        let lengths: Vec<f64> = arr.iter().map(|t| t.length).collect();
        assert_eq!(lengths, vec![1.0, 1.2, 9.0]);
    }

    #[test]
    fn eviction_run_can_cover_the_whole_array() {
        let mut arena = TupleArena::new();
        let mut arr = TupleArray::new();
        for (s, l, n) in [(5, 2.0, 1), (10, 3.0, 2), (15, 4.0, 3)] {
            let t = tuple(&mut arena, s, l, n);
            arr.insert_if_better(t);
        }
        let t = tuple(&mut arena, 40, 1.0, 9);
        assert!(arr.insert_if_better(t));
        assert_eq!(arr.len(), 1);
        assert_eq!(arr.best().unwrap().nodes(&arena), &[9]);
        assert_eq!(arr.dominance_evictions(), 3);
    }

    #[test]
    fn best_prefers_scaled_weight_then_length() {
        let mut arena = TupleArena::new();
        let mut arr = TupleArray::new();
        let t = tuple(&mut arena, 10, 1.0, 1);
        arr.insert_if_better(t);
        let t = tuple(&mut arena, 30, 9.0, 2);
        arr.insert_if_better(t);
        let t = tuple(&mut arena, 20, 0.5, 3);
        arr.insert_if_better(t);
        assert_eq!(arr.best().unwrap().scaled, 30);
        assert!(TupleArray::new().best().is_none());
    }

    #[test]
    fn as_slice_exposes_the_budget_pruning_shape() {
        let mut arena = TupleArena::new();
        let mut arr = TupleArray::new();
        for (s, l, n) in [(5, 1.0, 1), (10, 2.0, 2), (15, 5.0, 3), (20, 9.0, 4)] {
            let t = tuple(&mut arena, s, l, n);
            arr.insert_if_better(t);
        }
        let slice = arr.as_slice();
        // Lengths ascend, so a residual budget carves a prefix.
        let within = slice.partition_point(|t| t.length <= 4.0);
        assert_eq!(within, 2);
        assert!(slice[..within].iter().all(|t| t.length <= 4.0));
        assert!(slice[within..].iter().all(|t| t.length > 4.0));
    }

    #[test]
    fn naive_model_matches_frontier_on_a_handwritten_sequence() {
        let mut arena = TupleArena::new();
        let mut frontier = TupleArray::new();
        let mut naive = NaiveTupleArray::new();
        let inserts = [
            (10, 5.0, 1),
            (10, 4.0, 2),
            (20, 9.0, 3),
            (15, 2.0, 4),
            (15, 2.0, 5),
            (5, 2.5, 6),
            (30, 1.0, 7),
        ];
        for (s, l, n) in inserts {
            let t = tuple(&mut arena, s, l, n);
            frontier.insert_if_better(t);
            naive.insert_if_better(t);
        }
        let filtered = naive.pareto_filtered();
        assert_eq!(frontier.len(), filtered.len());
        for (a, b) in frontier.iter().zip(&filtered) {
            assert_eq!(a.scaled, b.scaled);
            assert_eq!(a.length.to_bits(), b.length.to_bits());
            assert!(a.same_nodes(b, &arena));
        }
        assert_eq!(frontier.best().unwrap().scaled, 30);
        assert_eq!(naive.len(), 5, "naive keeps one entry per scaled weight");
        assert!(naive.get(20).is_some());
        assert!(!naive.is_empty());
        assert_eq!(naive.iter().count(), 5);
    }

    #[test]
    fn explored_version_changes_exactly_with_the_contents() {
        let mut arena = TupleArena::new();
        let mut arr = ExploredArray::new();
        assert_eq!(arr.version(), 0);
        let t = tuple(&mut arena, 10, 5.0, 1);
        assert!(arr.insert_if_better(t));
        assert_eq!(arr.version(), 1, "insert bumps the version");
        let t = tuple(&mut arena, 10, 6.0, 2);
        assert!(!arr.insert_if_better(t));
        assert_eq!(arr.version(), 1, "rejected insert leaves the version alone");
        let t = tuple(&mut arena, 10, 4.0, 3);
        assert!(arr.insert_if_better(t));
        assert_eq!(
            arr.version(),
            2,
            "same-scaled replacement bumps the version"
        );
        let t = tuple(&mut arena, 20, 9.0, 4);
        assert!(arr.insert_if_better(t));
        assert_eq!(arr.version(), 3);
    }

    #[test]
    fn best_tracker_orders_candidates() {
        let mut arena = TupleArena::new();
        let mut tracker = BestTracker::new();
        assert!(tracker.best().is_none());
        let t = tuple(&mut arena, 10, 5.0, 1);
        assert!(tracker.update(&t));
        let t = tuple(&mut arena, 9, 1.0, 2);
        assert!(!tracker.update(&t), "lower weight never wins");
        let t = tuple(&mut arena, 10, 6.0, 3);
        assert!(!tracker.update(&t), "same weights, longer loses");
        let t = tuple(&mut arena, 10, 4.0, 4);
        assert!(tracker.update(&t), "same weights, shorter wins");
        // Equal scaled weight but larger original weight wins regardless of length.
        let heavier = RegionTuple::from_parts(&mut arena, 9.0, 0.2, 10, &[8], &[]);
        assert!(tracker.update(&heavier));
        let t = tuple(&mut arena, 11, 9.0, 5);
        assert!(tracker.update(&t));
        assert_eq!(tracker.best().unwrap().scaled, 11);
        assert_eq!(tracker.into_best().unwrap().nodes(&arena), &[5]);
    }
}
