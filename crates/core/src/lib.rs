//! # lcmsr-core
//!
//! Length-Constrained Maximum-Sum Region (LCMSR) query processing — the core
//! contribution of "Retrieving Regions of Interest for User Exploration"
//! (Cao, Cong, Jensen, Yiu; PVLDB 7(9), 2014), reimplemented in Rust.
//!
//! Given a road network with geo-textual objects, an LCMSR query
//! `Q = ⟨ψ, ∆, Λ⟩` asks for the connected subgraph ("region") inside the
//! rectangle `Λ` whose total road length is at most `∆` and whose objects are
//! most relevant to the keywords `ψ`.  Answering the query exactly is NP-hard;
//! the crate provides the paper's three algorithms plus supporting machinery:
//!
//! * [`app`] — the (5+ε)-approximation APP (weight scaling + k-MST binary
//!   search + tree dynamic program),
//! * [`tgen`] — the TGEN heuristic (graph-wide region-tuple generation),
//! * [`greedy`] — the fast Greedy expansion,
//! * [`topk`] — top-k variants of all three,
//! * [`kmst`] — node-weighted k-MST oracles (GW primal–dual and a density greedy),
//! * [`exact`] — an exhaustive solver used to validate accuracy on small inputs,
//! * [`maxrs`] — the MaxRS fixed-rectangle baseline used in the paper's
//!   comparison study,
//! * [`engine`] — the end-to-end [`engine::LcmsrEngine`] tying indexes and
//!   algorithms together.
//!
//! # Example
//!
//! ```
//! use lcmsr_core::prelude::*;
//! use lcmsr_geotext::prelude::*;
//! use lcmsr_roadnet::prelude::*;
//!
//! // A tiny road network: four nodes along a street.
//! let mut b = GraphBuilder::new();
//! let n: Vec<_> = (0..4).map(|i| b.add_node(Point::new(i as f64 * 100.0, 0.0))).collect();
//! for w in n.windows(2) { b.add_edge(w[0], w[1], 100.0).unwrap(); }
//! let network = b.build().unwrap();
//!
//! // Three restaurants and one museum.
//! let objects = vec![
//!     GeoTextObject::from_keywords(0u64, Point::new(5.0, 5.0), ["restaurant"]),
//!     GeoTextObject::from_keywords(1u64, Point::new(105.0, 5.0), ["restaurant"]),
//!     GeoTextObject::from_keywords(2u64, Point::new(205.0, 5.0), ["restaurant"]),
//!     GeoTextObject::from_keywords(3u64, Point::new(305.0, 5.0), ["museum"]),
//! ];
//! let collection = ObjectCollection::build(&network, objects, 100.0).unwrap();
//!
//! // Find the best region of restaurants reachable within 150 m of walking.
//! let engine = LcmsrEngine::new(&network, &collection);
//! let query = LcmsrQuery::new(["restaurant"], 150.0,
//!                             network.bounding_rect().unwrap().expanded(10.0)).unwrap();
//! let request = QueryRequest::new(&query, Algorithm::Tgen(TgenParams { alpha: 1.0 }));
//! let outcome = engine.execute(&request).unwrap();
//! let region = outcome.best().unwrap();
//! assert_eq!(region.node_count(), 2);          // two adjacent restaurant nodes
//! assert!(region.length <= 150.0);
//! ```

#![warn(missing_docs)]

pub mod app;
pub mod arena;
pub mod cache;
pub mod cancel;
pub mod engine;
pub mod error;
pub mod exact;
pub mod greedy;
pub mod kmst;
pub mod maxrs;
pub mod opt_tree;
pub mod query;
pub mod query_graph;
pub mod region;
pub mod stats;
pub mod tgen;
pub mod topk;
pub mod trace;
pub mod tuple_array;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::app::{AppParams, BinarySearchStep};
    pub use crate::arena::{IdSetHandle, TupleArena};
    pub use crate::cache::{CacheLookup, ResponseCache};
    pub use crate::cancel::{CancelToken, Deadline};
    pub use crate::engine::{
        Algorithm, LcmsrEngine, MaxRsRegion, Priority, QueryOptions, QueryOutcome, QueryRequest,
        QueryResult, QueryWorkspace, TopKResult, WorkspacePool,
    };
    pub use crate::error::{LcmsrError, Result as LcmsrResult};
    pub use crate::exact::{ExactSolver, ExactTopK};
    pub use crate::greedy::GreedyParams;
    pub use crate::kmst::KMstSolverKind;
    pub use crate::query::LcmsrQuery;
    pub use crate::query_graph::{QueryGraph, QueryGraphBuilder};
    pub use crate::region::Region;
    pub use crate::stats::{PartialCause, RunStats};
    pub use crate::tgen::TgenParams;
    pub use crate::topk::TopKOutcome;
    pub use crate::trace::{QueryTrace, SpanId, SpanRecord, TraceCollector};
}

pub use app::AppParams;
pub use arena::TupleArena;
pub use cache::{CacheLookup, ResponseCache};
pub use cancel::{CancelToken, Deadline};
pub use engine::{
    Algorithm, LcmsrEngine, Priority, QueryOptions, QueryOutcome, QueryRequest, QueryResult,
    QueryWorkspace, TopKResult, WorkspacePool,
};
pub use error::{LcmsrError, Result};
pub use greedy::GreedyParams;
pub use query::LcmsrQuery;
pub use query_graph::{QueryGraph, QueryGraphBuilder};
pub use region::Region;
pub use tgen::TgenParams;
pub use trace::{QueryTrace, TraceCollector};
