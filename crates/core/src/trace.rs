//! Per-query structured tracing.
//!
//! A [`TraceCollector`] records a span tree — `(label, start_ns, end_ns,
//! parent)` entries plus `u64` attributes — into flat preallocated vectors
//! while a query executes, threaded through the engine and every solver
//! alongside the [`crate::cancel::CancelToken`].  It follows the same
//! inert-costs-nothing discipline as the token: a disabled collector's
//! [`TraceCollector::start`] is a single predicted branch returning
//! [`SpanId::NONE`], no clock is read, nothing allocates, and the solve path
//! stays bit-identical to an untraced run (the golden-region suite pins this
//! byte-for-byte, a bench gates the overhead ratio in CI).
//!
//! Spans are identified by their index into the flat vector; parent links are
//! indices too ([`SpanRecord::ROOT`] marks a root), so a whole query's trace
//! is two `Vec`s with no per-span allocation once the buffers have grown.
//! A cap ([`TraceCollector::DEFAULT_SPAN_CAP`]) bounds memory on huge query
//! graphs: spans beyond it are counted in `dropped`, not stored.
//!
//! At query end the engine snapshots the collector into an owned
//! [`QueryTrace`] (labels are `&'static str`, so snapshots are `'static` and
//! can sit in a serving-side ring buffer).

use std::time::Instant;

/// Reads the monotonic clock.
///
/// The audited clock source for the tracing layer: span timestamps are taken
/// here and nowhere else, so every time dependency of a trace is findable in
/// one place (`lcmsr-lint`'s `clock` rule enforces this).
#[must_use]
pub fn now() -> Instant {
    Instant::now()
}

/// Handle to an open span; [`SpanId::NONE`] is returned by a disabled (or
/// span-capped) collector and makes every later operation on it a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u32);

impl SpanId {
    /// The inert span handle: ending it or attaching attributes does nothing.
    pub const NONE: SpanId = SpanId(u32::MAX);

    /// Whether this is the inert handle.
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == u32::MAX
    }

    /// The span's index into [`QueryTrace::spans`] (`None` for the inert
    /// handle).
    pub fn index(self) -> Option<u32> {
        if self.is_none() {
            None
        } else {
            Some(self.0)
        }
    }
}

/// One recorded span: a labelled interval relative to the trace origin, with
/// a parent index forming the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static label (phase or loop-iteration name, e.g. `"grid_score"`).
    pub label: &'static str,
    /// Start offset from the trace origin, nanoseconds.
    pub start_ns: u64,
    /// End offset from the trace origin, nanoseconds (`== start_ns` while the
    /// span is still open).
    pub end_ns: u64,
    /// Index of the parent span in the flat vector; [`SpanRecord::ROOT`] for
    /// roots.
    pub parent: u32,
}

impl SpanRecord {
    /// Parent value marking a root span.
    pub const ROOT: u32 = u32::MAX;

    /// The span's duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// The per-query span collector.
///
/// One collector lives in each [`crate::engine::QueryWorkspace`] and is
/// re-armed per query by [`TraceCollector::begin`]; its buffers persist
/// across queries, so steady-state tracing allocates nothing per span.
#[derive(Debug, Clone, Default)]
pub struct TraceCollector {
    enabled: bool,
    origin: Option<Instant>,
    spans: Vec<SpanRecord>,
    attrs: Vec<(u32, &'static str, u64)>,
    open: Vec<u32>,
    dropped: u64,
    cap: usize,
}

impl TraceCollector {
    /// Spans stored per query before further spans are dropped (counted, not
    /// recorded) — bounds trace memory on huge query graphs.
    pub const DEFAULT_SPAN_CAP: usize = 4096;

    /// An inert collector: every operation is a no-op behind one predicted
    /// branch.  Construction does not allocate.
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An armed collector ready to record (used directly in tests; the engine
    /// arms its workspace collector through [`TraceCollector::begin`]).
    #[must_use]
    pub fn enabled() -> Self {
        let mut t = Self::default();
        t.begin(true);
        t
    }

    /// Whether spans are currently being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Re-arms the collector for a new query: clears prior spans, sets the
    /// enabled flag, and (only when enabling) stamps the trace origin with one
    /// audited clock read.
    pub fn begin(&mut self, enabled: bool) {
        self.spans.clear();
        self.attrs.clear();
        self.open.clear();
        self.dropped = 0;
        self.enabled = enabled;
        if self.cap == 0 {
            self.cap = Self::DEFAULT_SPAN_CAP;
        }
        self.origin = if enabled { Some(now()) } else { None };
    }

    /// Nanoseconds since the trace origin (enabled collectors only).
    fn elapsed_ns(&self) -> u64 {
        let origin = self.origin.expect("enabled collector must have an origin");
        u64::try_from(now().saturating_duration_since(origin).as_nanos()).unwrap_or(u64::MAX)
    }

    /// Opens a span as a child of the innermost open span.  Disabled: one
    /// predicted branch, returns [`SpanId::NONE`], reads no clock.
    #[inline]
    pub fn start(&mut self, label: &'static str) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        self.start_recording(label)
    }

    #[cold]
    fn start_recording(&mut self, label: &'static str) -> SpanId {
        if self.spans.len() >= self.cap {
            self.dropped += 1;
            return SpanId::NONE;
        }
        let start_ns = self.elapsed_ns();
        let parent = self.open.last().copied().unwrap_or(SpanRecord::ROOT);
        let index = self.spans.len() as u32;
        self.spans.push(SpanRecord {
            label,
            start_ns,
            end_ns: start_ns,
            parent,
        });
        self.open.push(index);
        SpanId(index)
    }

    /// Closes a span (and, defensively, any still-open descendants).  A
    /// [`SpanId::NONE`] handle is ignored behind one predicted branch.
    #[inline]
    pub fn end(&mut self, id: SpanId) {
        if id.is_none() {
            return;
        }
        self.end_recording(id);
    }

    #[cold]
    fn end_recording(&mut self, id: SpanId) {
        let end_ns = self.elapsed_ns();
        while let Some(top) = self.open.pop() {
            self.spans[top as usize].end_ns = end_ns;
            if top == id.0 {
                return;
            }
        }
    }

    /// Attaches a `u64` attribute to an open or closed span.
    #[inline]
    pub fn attr(&mut self, id: SpanId, key: &'static str, value: u64) {
        if id.is_none() {
            return;
        }
        self.attrs.push((id.0, key, value));
    }

    /// Closes a span and attaches attributes in one call.
    #[inline]
    pub fn end_with(&mut self, id: SpanId, attrs: &[(&'static str, u64)]) {
        if id.is_none() {
            return;
        }
        for &(key, value) in attrs {
            self.attrs.push((id.0, key, value));
        }
        self.end_recording(id);
    }

    /// Number of spans dropped at the cap so far this query.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Closes any spans left open and snapshots the query's trace; `None`
    /// when the collector was disabled.  The collector's own buffers are kept
    /// (capacity and all) for the next [`TraceCollector::begin`].
    pub fn finish(&mut self) -> Option<QueryTrace> {
        if !self.enabled {
            return None;
        }
        if let Some(&top) = self.open.last() {
            self.end_recording(SpanId(top));
            // end_recording pops everything above `top` too, but `top` itself
            // may have had siblings below it on the stack — drain them all.
            while let Some(&next) = self.open.last() {
                self.end_recording(SpanId(next));
            }
        }
        self.enabled = false;
        Some(QueryTrace {
            spans: self.spans.clone(),
            attrs: self.attrs.clone(),
            dropped: self.dropped,
        })
    }
}

/// An owned snapshot of one query's span tree, detached from the workspace
/// (labels are `&'static str`, so the snapshot is `'static` and can outlive
/// the query in a diagnostics ring).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryTrace {
    /// The spans, in start order; parents always precede children.
    pub spans: Vec<SpanRecord>,
    /// `(span_index, key, value)` attributes, in recording order.
    pub attrs: Vec<(u32, &'static str, u64)>,
    /// Spans dropped at the collector's cap (0 = the tree is complete).
    pub dropped: u64,
}

impl QueryTrace {
    /// The attributes attached to span `index`.
    pub fn attrs_of(&self, index: u32) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.attrs
            .iter()
            .filter(move |(i, _, _)| *i == index)
            .map(|&(_, k, v)| (k, v))
    }

    /// Indices of span `parent`'s direct children.
    pub fn children_of(&self, parent: u32) -> impl Iterator<Item = u32> + '_ {
        self.spans
            .iter()
            .enumerate()
            .filter(move |(_, s)| s.parent == parent)
            .map(|(i, _)| i as u32)
    }

    /// The first span with `label`, as `(index, record)`.
    pub fn find(&self, label: &str) -> Option<(u32, &SpanRecord)> {
        self.spans
            .iter()
            .enumerate()
            .find(|(_, s)| s.label == label)
            .map(|(i, s)| (i as u32, s))
    }

    /// Every span with `label`.
    pub fn count(&self, label: &str) -> usize {
        self.spans.iter().filter(|s| s.label == label).count()
    }

    /// Checks structural well-formedness: parents precede their children,
    /// every interval is ordered, children nest within their parent's
    /// interval, and the direct children of any span (which execute
    /// sequentially) sum to at most the parent's duration.
    ///
    /// Returns the first violation as a message, or `Ok(())`.
    pub fn validate(&self) -> Result<(), String> {
        let mut child_sum = vec![0u64; self.spans.len()];
        for (i, s) in self.spans.iter().enumerate() {
            if s.end_ns < s.start_ns {
                return Err(format!("span {i} ({}) ends before it starts", s.label));
            }
            if s.parent != SpanRecord::ROOT {
                let p = s.parent as usize;
                if p >= i {
                    return Err(format!("span {i} ({}) has parent {p} >= itself", s.label));
                }
                let parent = &self.spans[p];
                if s.start_ns < parent.start_ns || s.end_ns > parent.end_ns {
                    return Err(format!(
                        "span {i} ({}) [{}, {}] escapes parent {} ({}) [{}, {}]",
                        s.label,
                        s.start_ns,
                        s.end_ns,
                        p,
                        parent.label,
                        parent.start_ns,
                        parent.end_ns
                    ));
                }
                child_sum[p] += s.duration_ns();
            }
        }
        for (i, s) in self.spans.iter().enumerate() {
            if child_sum[i] > s.duration_ns() {
                return Err(format!(
                    "span {i} ({}) children sum {} ns > own duration {} ns",
                    s.label,
                    child_sum[i],
                    s.duration_ns()
                ));
            }
        }
        for &(i, key, _) in &self.attrs {
            if i as usize >= self.spans.len() {
                return Err(format!("attr {key} references missing span {i}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_is_inert() {
        let mut t = TraceCollector::disabled();
        let id = t.start("solve");
        assert!(id.is_none());
        t.attr(id, "tuples", 7);
        t.end(id);
        t.end_with(id, &[("x", 1)]);
        assert!(t.finish().is_none());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn records_a_nested_tree_with_attrs() {
        let mut t = TraceCollector::enabled();
        let root = t.start("query");
        let prepare = t.start("prepare");
        let score = t.start("grid_score");
        t.end(score);
        let build = t.start("graph_build");
        t.end(build);
        t.end(prepare);
        let solve = t.start("solve");
        t.attr(solve, "tuples", 42);
        t.end_with(solve, &[("pruned", 3)]);
        t.end(root);
        let trace = t.finish().expect("enabled collector yields a trace");
        trace.validate().expect("well-formed");
        assert_eq!(trace.spans.len(), 5);
        assert_eq!(trace.spans[0].parent, SpanRecord::ROOT);
        let (prepare_idx, _) = trace.find("prepare").unwrap();
        assert_eq!(
            trace.children_of(prepare_idx).count(),
            2,
            "grid_score + graph_build"
        );
        let (solve_idx, _) = trace.find("solve").unwrap();
        let attrs: Vec<_> = trace.attrs_of(solve_idx).collect();
        assert_eq!(attrs, vec![("tuples", 42), ("pruned", 3)]);
        // Parents always precede children, so a depth-first renderer needs no sort.
        for (i, s) in trace.spans.iter().enumerate() {
            assert!(s.parent == SpanRecord::ROOT || (s.parent as usize) < i);
        }
    }

    #[test]
    fn finish_closes_open_spans() {
        let mut t = TraceCollector::enabled();
        let root = t.start("query");
        let _leaked = t.start("solve");
        let trace = t.finish().unwrap();
        trace.validate().unwrap();
        assert_eq!(trace.spans.len(), 2);
        assert!(trace.spans[1].end_ns <= trace.spans[0].end_ns);
        // The collector is disarmed after finish and inert again.
        assert!(!t.is_enabled());
        assert!(t.start("again").is_none());
        let _ = root;
    }

    #[test]
    fn span_cap_drops_and_counts() {
        let mut t = TraceCollector::enabled();
        t.cap = 2;
        let a = t.start("a");
        let b = t.start("b");
        let c = t.start("c");
        assert!(!a.is_none() && !b.is_none());
        assert!(c.is_none(), "beyond the cap the inert handle comes back");
        t.end(c);
        t.end(b);
        t.end(a);
        assert_eq!(t.dropped(), 1);
        let trace = t.finish().unwrap();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.dropped, 1);
        trace.validate().unwrap();
    }

    #[test]
    fn begin_reuses_buffers_across_queries() {
        let mut t = TraceCollector::enabled();
        for _ in 0..3 {
            let s = t.start("solve");
            t.end(s);
        }
        let first = t.finish().unwrap();
        assert_eq!(first.spans.len(), 3);
        t.begin(true);
        let s = t.start("solve");
        t.end(s);
        let second = t.finish().unwrap();
        assert_eq!(second.spans.len(), 1, "begin clears prior spans");
        // Disabled re-arm: inert again.
        t.begin(false);
        assert!(t.start("x").is_none());
        assert!(t.finish().is_none());
    }

    #[test]
    fn validate_catches_malformed_trees() {
        let bad_parent = QueryTrace {
            spans: vec![SpanRecord {
                label: "a",
                start_ns: 0,
                end_ns: 1,
                parent: 0,
            }],
            attrs: Vec::new(),
            dropped: 0,
        };
        assert!(bad_parent.validate().is_err());
        let escaping_child = QueryTrace {
            spans: vec![
                SpanRecord {
                    label: "p",
                    start_ns: 10,
                    end_ns: 20,
                    parent: SpanRecord::ROOT,
                },
                SpanRecord {
                    label: "c",
                    start_ns: 5,
                    end_ns: 15,
                    parent: 0,
                },
            ],
            attrs: Vec::new(),
            dropped: 0,
        };
        assert!(escaping_child.validate().is_err());
        let dangling_attr = QueryTrace {
            spans: Vec::new(),
            attrs: vec![(3, "k", 1)],
            dropped: 0,
        };
        assert!(dangling_attr.validate().is_err());
    }
}
