//! The TGEN (tuple generation) heuristic (Section 5, Algorithm 2).
//!
//! TGEN generalises the `findOptTree` dynamic program from a tree to the whole
//! scaled query graph: nodes are visited in breadth-first order, every edge is
//! processed exactly once, and each node keeps an *explored region tuple array*
//! (Definition 6) holding, per scaled weight, the shortest feasible region
//! seen that contains the node.  Combining regions across an edge skips pairs
//! that share nodes (Lemma 9 — such a combination would contain a cycle and
//! can never be optimal).  Because only one tuple per (node, scaled weight)
//! pair is kept, enumeration is polynomial but the optimum may be missed —
//! TGEN is a heuristic, empirically the most accurate of the three
//! algorithms.
//!
//! The edge-combine loop is the hottest code in the whole system.  Each
//! node's array is an [`ExploredArray`] — flat sorted `Vec`, per-scaled
//! pruning only; cross-weight Pareto dominance is *unsound* here because
//! Lemma 9's disjointness check breaks the dominator-substitution argument
//! (see the [`crate::tuple_array`] docs for the measured counterexample).
//! Budget pruning still never materialises an infeasible pair: the right
//! snapshot is additionally sorted by length, so for each left-hand tuple
//! the feasible partners (`l_i + l_j + edge ≤ Q.∆`) form a `partition_point`
//! prefix of that permutation.  The sorted snapshot is cached per node and
//! stamped with the [`ExploredArray`] content version, so a node whose array
//! did not change between two of its edges reuses the permutation instead of
//! re-sorting — and the cached copy is bit-identical to a fresh sort because
//! scaled weights are distinct within an array, making `(length, scaled)` a
//! total order with a unique sorted permutation.  Scanning partners in
//! length order instead of scaled order is output-neutral: combinations of
//! one left tuple have pairwise-distinct scaled weights (the right array
//! holds one tuple per scaled weight), so no quality tie — and therefore no
//! tie-break — exists inside a reordered group, while groups themselves stay
//! in scaled order.  The PR ≤ 4 loop instead allocated every combination and
//! rolled the infeasible ~80 % straight back.  All tuples live in a
//! [`TupleArena`], so enumerating and snapshotting arrays copies handles
//! only.
//!
//! [`run_tgen_baseline`] preserves the PR 3/4 combine loop over the
//! pre-frontier [`NaiveTupleArray`]; `bench/benches/solve_phase.rs` runs both
//! on the same workload to gate the frontier's speedup and result identity.

use crate::arena::TupleArena;
use crate::cancel::CancelToken;
use crate::error::{LcmsrError, Result};
use crate::query_graph::QueryGraph;
use crate::region::RegionTuple;
use crate::trace::TraceCollector;
use crate::tuple_array::{BestTracker, ExploredArray, NaiveTupleArray};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Tuning parameters of TGEN.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TgenParams {
    /// Scaling parameter α.  TGEN needs a much coarser scaling than APP
    /// (paper default 400 on NY, 300 on USANW) to keep tuple arrays small.
    pub alpha: f64,
}

impl Default for TgenParams {
    fn default() -> Self {
        TgenParams { alpha: 400.0 }
    }
}

impl TgenParams {
    /// Validates the parameters.
    pub fn validate(&self) -> Result<()> {
        if !(self.alpha.is_finite() && self.alpha > 0.0) {
            return Err(LcmsrError::InvalidParameter {
                name: "alpha",
                value: self.alpha,
                expected: "a positive finite number",
            });
        }
        Ok(())
    }
}

/// Outcome of one TGEN run.
#[derive(Debug, Clone)]
pub struct TgenOutcome {
    /// The best feasible region found, if any node is relevant.
    pub best: Option<RegionTuple>,
    /// All feasible tuples generated, ordered by the shared quality order
    /// ([`RegionTuple::cmp_quality`]: decreasing scaled weight, then
    /// decreasing original weight, then increasing length; used by the top-k
    /// extension); capped to `TOP_LIMIT` distinct node sets.
    pub top_tuples: Vec<RegionTuple>,
    /// Number of edges processed.
    pub edges_processed: u64,
    /// Number of region tuples materialised (feasible combinations plus the
    /// per-node singletons).
    pub tuples_generated: u64,
    /// Combine pairs skipped by the frontier's length-budget `partition_point`
    /// without being materialised (the PR ≤ 4 loop allocated each of these
    /// and rolled it back).
    pub pruned_pairs: u64,
    /// Tuples resident across all per-node arrays when the run finished.
    pub frontier_tuples: u64,
    /// Largest single per-node array observed at the end of the run.
    pub frontier_peak: u64,
    /// Array entries evicted by dominating inserts across the run (for TGEN:
    /// same-scaled Lemma 6 replacements; `findOptTree` additionally evicts
    /// across scaled weights).
    pub dominance_evictions: u64,
    /// Whether the run stopped early at a cancellation poll point; `best` and
    /// `top_tuples` then hold the best-so-far incumbents, every one of them
    /// still feasible (budget pruning never admits an infeasible tuple).
    pub interrupted: bool,
}

/// Maximum number of distinct top tuples retained for top-k extraction.
const TOP_LIMIT: usize = 64;

/// Runs TGEN on a prepared query graph (which must already be scaled with the
/// TGEN α; [`crate::engine::LcmsrEngine`] takes care of this).  All tuples —
/// including those in the returned outcome — live in `arena`.
///
/// `ctl` is polled once per enumerated edge; when it fires the run stops and
/// returns its incumbents with `interrupted: true`.  The inert token costs a
/// predicted branch per edge and perturbs nothing.  Each combine round (one
/// enumerated edge) records a `combine_edge` span with `tuples`/`pruned`
/// attrs into `tracer` — same inert discipline as the token.
pub fn run_tgen(
    graph: &QueryGraph,
    arena: &mut TupleArena,
    params: &TgenParams,
    ctl: &CancelToken,
    tracer: &mut TraceCollector,
) -> Result<TgenOutcome> {
    params.validate()?;
    let delta = graph.delta();
    let n = graph.node_count();
    let mut best = BestTracker::new();
    let mut top: Vec<RegionTuple> = Vec::new();
    let mut edges_processed = 0u64;
    let mut tuples_generated = 0u64;
    let mut pruned_pairs = 0u64;
    let mut interrupted = false;

    if graph.sigma_max() <= 0.0 {
        return Ok(TgenOutcome {
            best: None,
            top_tuples: Vec::new(),
            edges_processed: 0,
            tuples_generated: 0,
            pruned_pairs: 0,
            frontier_tuples: 0,
            frontier_peak: 0,
            dominance_evictions: 0,
            interrupted: false,
        });
    }

    // Explored tuple arrays, one per node, initialised with the node itself.
    let mut arrays: Vec<ExploredArray> = Vec::with_capacity(n);
    for v in 0..n as u32 {
        let mut arr = ExploredArray::new();
        let singleton = RegionTuple::singleton(arena, v, graph.weight(v), graph.scaled_weight(v));
        best.update(&singleton);
        offer_top(&mut top, &singleton, arena);
        arr.insert_if_better(singleton);
        arrays.push(arr);
    }
    tuples_generated += n as u64;

    let mut node_processed = vec![false; n];
    let mut edge_visited = vec![false; graph.edge_count()];
    let mut enqueued = vec![false; n];
    // Per-edge snapshot of the left endpoint array (handle copies), hoisted
    // out of the loops so the steady state allocates nothing.
    let mut left: Vec<RegionTuple> = Vec::new();
    let mut new_tuples: Vec<RegionTuple> = Vec::new();
    // Per-node right snapshots re-sorted by (length, scaled): the shape the
    // budget `partition_point` needs; the scaled tie-break keeps equal-length
    // runs in canonical array order so the scan stays deterministic.  Each
    // snapshot is stamped with the array's content version and rebuilt only
    // when the array changed since it was last sorted — a node of degree d
    // whose array stays quiet pays one sort instead of d.  `u64::MAX` marks
    // "never built" (a live version starts at 0 and only increments).
    let mut right_by_len: Vec<Vec<RegionTuple>> = vec![Vec::new(); n];
    let mut right_version: Vec<u64> = vec![u64::MAX; n];

    // Outer loop: cover every connected component of Q.Λ (lines 2–4).
    'components: for start in 0..n as u32 {
        if node_processed[start as usize] || enqueued[start as usize] {
            continue;
        }
        let mut queue = VecDeque::new();
        queue.push_back(start);
        enqueued[start as usize] = true;
        // Breadth-first edge enumeration (lines 5–14).
        while let Some(vi) = queue.pop_front() {
            for &(vj, e) in graph.neighbors(vi) {
                if edge_visited[e as usize] {
                    continue;
                }
                // Deadline poll, once per edge: the incumbent in `best` (and
                // the top list) is a valid anytime answer at every boundary.
                if ctl.is_cancelled() {
                    interrupted = true;
                    break 'components;
                }
                edge_visited[e as usize] = true;
                edges_processed += 1;
                let edge_length = graph.edge(e).length;
                if edge_length > delta {
                    continue; // line 8: the edge alone already violates Q.∆
                }
                if !enqueued[vj as usize] {
                    enqueued[vj as usize] = true;
                    queue.push_back(vj);
                }
                let span = tracer.start("combine_edge");
                let tuples_before = tuples_generated;
                let pruned_before = pruned_pairs;
                // Combine every region containing vi with every feasible
                // region containing vj.
                left.clear();
                left.extend(arrays[vi as usize].iter().copied());
                if right_version[vj as usize] != arrays[vj as usize].version() {
                    let snapshot = &mut right_by_len[vj as usize];
                    snapshot.clear();
                    snapshot.extend(arrays[vj as usize].iter().copied());
                    snapshot.sort_unstable_by(|a, b| {
                        a.length
                            .partial_cmp(&b.length)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then_with(|| a.scaled.cmp(&b.scaled))
                    });
                    right_version[vj as usize] = arrays[vj as usize].version();
                }
                let right_by_len = &right_by_len[vj as usize];
                new_tuples.clear();
                for ti in &left {
                    // Lengths ascend along the permutation, so the partners
                    // that keep `l_i + l_j + edge ≤ ∆` form a prefix — the
                    // same comparison the materialise-then-check loop used,
                    // hoisted into a binary search.  Pairs beyond the prefix
                    // are pruned without touching the arena.
                    let feasible = right_by_len
                        .partition_point(|tj| ti.length + tj.length + edge_length <= delta + 1e-9);
                    pruned_pairs += (right_by_len.len() - feasible) as u64;
                    for tj in &right_by_len[..feasible] {
                        if ti.shares_nodes(tj, arena) {
                            continue; // Lemma 9: would close a cycle
                        }
                        let combined = ti.combine(tj, e, edge_length, arena);
                        debug_assert!(combined.length <= delta + 1e-9);
                        tuples_generated += 1;
                        best.update(&combined);
                        offer_top(&mut top, &combined, arena);
                        new_tuples.push(combined);
                    }
                }
                // Update the arrays of the unprocessed nodes contained in each
                // new tuple (lines 12–14).
                for t in &new_tuples {
                    for &v in t.nodes(arena) {
                        if node_processed[v as usize] {
                            continue;
                        }
                        arrays[v as usize].insert_if_better(*t);
                    }
                }
                tracer.end_with(
                    span,
                    &[
                        ("edge", u64::from(e)),
                        ("tuples", tuples_generated - tuples_before),
                        ("pruned", pruned_pairs - pruned_before),
                    ],
                );
            }
            // All incident edges of vi have been processed; its array is no
            // longer needed (later tuples containing vi skip it).
            node_processed[vi as usize] = true;
        }
    }

    let frontier_tuples: u64 = arrays.iter().map(|a| a.len() as u64).sum();
    let frontier_peak = arrays.iter().map(|a| a.len() as u64).max().unwrap_or(0);
    let dominance_evictions: u64 = arrays.iter().map(ExploredArray::replacements).sum();
    Ok(TgenOutcome {
        best: best.into_best(),
        top_tuples: top,
        edges_processed,
        tuples_generated,
        pruned_pairs,
        frontier_tuples,
        frontier_peak,
        dominance_evictions,
        interrupted,
    })
}

/// The PR 3/4 TGEN combine loop over [`NaiveTupleArray`]s: per-scaled-weight
/// pruning only, every combination materialised first and rolled back when
/// infeasible.  Kept as the measured baseline for the frontier rewrite — the
/// `solve_phase` bench gates `run_tgen`'s combine-loop speedup and result
/// identity against this function, and tests compare the two directly.  Not
/// wired to any engine path.
#[doc(hidden)]
pub fn run_tgen_baseline(
    graph: &QueryGraph,
    arena: &mut TupleArena,
    params: &TgenParams,
) -> Result<TgenOutcome> {
    params.validate()?;
    let delta = graph.delta();
    let n = graph.node_count();
    let mut best = BestTracker::new();
    let mut top: Vec<RegionTuple> = Vec::new();
    let mut edges_processed = 0u64;
    let mut tuples_generated = 0u64;

    if graph.sigma_max() <= 0.0 {
        return Ok(TgenOutcome {
            best: None,
            top_tuples: Vec::new(),
            edges_processed: 0,
            tuples_generated: 0,
            pruned_pairs: 0,
            frontier_tuples: 0,
            frontier_peak: 0,
            dominance_evictions: 0,
            interrupted: false,
        });
    }

    let mut arrays: Vec<NaiveTupleArray> = Vec::with_capacity(n);
    for v in 0..n as u32 {
        let mut arr = NaiveTupleArray::new();
        let singleton = RegionTuple::singleton(arena, v, graph.weight(v), graph.scaled_weight(v));
        best.update(&singleton);
        offer_top(&mut top, &singleton, arena);
        arr.insert_if_better(singleton);
        arrays.push(arr);
    }
    tuples_generated += n as u64;

    let mut node_processed = vec![false; n];
    let mut edge_visited = vec![false; graph.edge_count()];
    let mut enqueued = vec![false; n];
    let mut left: Vec<RegionTuple> = Vec::new();
    let mut right: Vec<RegionTuple> = Vec::new();
    let mut new_tuples: Vec<RegionTuple> = Vec::new();

    for start in 0..n as u32 {
        if node_processed[start as usize] || enqueued[start as usize] {
            continue;
        }
        let mut queue = VecDeque::new();
        queue.push_back(start);
        enqueued[start as usize] = true;
        while let Some(vi) = queue.pop_front() {
            for &(vj, e) in graph.neighbors(vi) {
                if edge_visited[e as usize] {
                    continue;
                }
                edge_visited[e as usize] = true;
                edges_processed += 1;
                let edge_length = graph.edge(e).length;
                if edge_length > delta {
                    continue;
                }
                if !enqueued[vj as usize] {
                    enqueued[vj as usize] = true;
                    queue.push_back(vj);
                }
                left.clear();
                left.extend(arrays[vi as usize].iter().copied());
                right.clear();
                right.extend(arrays[vj as usize].iter().copied());
                new_tuples.clear();
                for ti in &left {
                    for tj in &right {
                        if ti.shares_nodes(tj, arena) {
                            continue;
                        }
                        let combined = ti.combine(tj, e, edge_length, arena);
                        tuples_generated += 1;
                        if combined.length <= delta + 1e-9 {
                            best.update(&combined);
                            offer_top(&mut top, &combined, arena);
                            new_tuples.push(combined);
                        } else {
                            combined.free(arena);
                        }
                    }
                }
                for t in &new_tuples {
                    for &v in t.nodes(arena) {
                        if node_processed[v as usize] {
                            continue;
                        }
                        arrays[v as usize].insert_if_better(*t);
                    }
                }
            }
            node_processed[vi as usize] = true;
        }
    }

    let frontier_tuples: u64 = arrays.iter().map(|a| a.len() as u64).sum();
    let frontier_peak = arrays.iter().map(|a| a.len() as u64).max().unwrap_or(0);
    Ok(TgenOutcome {
        best: best.into_best(),
        top_tuples: top,
        edges_processed,
        tuples_generated,
        pruned_pairs: 0,
        frontier_tuples,
        frontier_peak,
        dominance_evictions: 0,
        interrupted: false,
    })
}

/// Maintains the bounded list of best tuples (distinct node sets), ordered by
/// the shared quality order ([`RegionTuple::cmp_quality`], the same total
/// order as `BestTracker::update`), so the head of the list is always the
/// single-query best.
///
/// The list is kept sorted at all times, so a candidate is placed by binary
/// search instead of the former push-then-sort, and a candidate that would
/// fall off the end is rejected before any duplicate scan.  A duplicate node
/// set always has the *same* scaled weight (an exact integer sum over the
/// node set), so the duplicate scan is confined to the equal-scaled run
/// around the insertion point rather than the whole list.
fn offer_top(top: &mut Vec<RegionTuple>, candidate: &RegionTuple, arena: &TupleArena) {
    // Filter on the original weight, not the scaled one: under a coarse
    // scaling (α > |V_Q|) every scaled weight floors to 0 even though relevant
    // regions exist, and rejecting scaled == 0 would leave the top list empty
    // while `BestTracker` still reports a single-query best.
    if candidate.weight <= 0.0 {
        return;
    }
    // First index whose tuple ranks strictly after the candidate; entries
    // before it rank better-or-equal (matching the stable push-then-sort
    // order the previous implementation produced).
    let pos = top.partition_point(|t| t.cmp_quality(candidate) != std::cmp::Ordering::Greater);
    if pos == TOP_LIMIT {
        return; // full list, candidate ranks last: it cannot enter
    }
    // Duplicate scan over the equal-scaled run.  Backward: a duplicate there
    // ranks better-or-equal, so the candidate is dropped.  Forward: a
    // duplicate there ranks strictly worse, so it is replaced.
    let mut i = pos;
    while i > 0 && top[i - 1].scaled == candidate.scaled {
        i -= 1;
        if top[i].same_nodes(candidate, arena) {
            return;
        }
    }
    let mut j = pos;
    while j < top.len() && top[j].scaled == candidate.scaled {
        if top[j].same_nodes(candidate, arena) {
            top.remove(j);
            top.insert(pos, *candidate);
            return;
        }
        j += 1;
    }
    top.insert(pos, *candidate);
    if top.len() > TOP_LIMIT {
        top.truncate(TOP_LIMIT);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cancel::CancelToken;
    use crate::query_graph::test_support::figure2_query_graph;

    #[test]
    fn params_validation() {
        assert!(TgenParams::default().validate().is_ok());
        assert!(TgenParams { alpha: 0.0 }.validate().is_err());
        assert!(TgenParams { alpha: f64::NAN }.validate().is_err());
    }

    #[test]
    fn finds_the_optimal_region_of_the_running_example() {
        // With a fine scaling TGEN finds the exact optimum of Figure 2 (∆ = 6):
        // {v2, v4, v5, v6}, weight 1.1, length 5.9.
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        let outcome = run_tgen(
            &qg,
            &mut arena,
            &TgenParams { alpha: 0.15 },
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap();
        let best = outcome.best.unwrap();
        assert!((best.weight - 1.1).abs() < 1e-9, "weight {}", best.weight);
        assert!((best.length - 5.9).abs() < 1e-9);
        assert_eq!(best.nodes(&arena), &[1, 3, 4, 5]);
        assert_eq!(outcome.edges_processed, 8);
        assert!(outcome.tuples_generated > 8);
        assert!(outcome.frontier_tuples > 0);
        assert!(outcome.frontier_peak > 0);
    }

    #[test]
    fn respects_the_length_constraint() {
        for delta in [0.5, 1.0, 2.5, 4.0, 6.0, 9.0, 15.0] {
            let (_n, qg) = figure2_query_graph(delta, 0.15);
            let mut arena = TupleArena::new();
            let outcome = run_tgen(
                &qg,
                &mut arena,
                &TgenParams { alpha: 0.15 },
                &CancelToken::none(),
                &mut TraceCollector::disabled(),
            )
            .unwrap();
            let best = outcome.best.unwrap();
            assert!(
                best.length <= delta + 1e-9,
                "∆={delta}: length {}",
                best.length
            );
            for t in &outcome.top_tuples {
                assert!(t.length <= delta + 1e-9);
            }
        }
    }

    #[test]
    fn matches_the_baseline_loop_across_deltas_and_scalings() {
        // The frontier rewrite must leave the single best bit-identical to
        // the PR 3/4 loop, and never hold more array tuples.
        for delta in [0.5, 1.0, 2.5, 4.0, 6.0, 9.0, 15.0, 1000.0] {
            for alpha in [0.15, 0.5, 3.0, 100.0] {
                let (_n, qg) = figure2_query_graph(delta, alpha);
                let params = TgenParams { alpha };
                let mut arena = TupleArena::new();
                let frontier = run_tgen(
                    &qg,
                    &mut arena,
                    &params,
                    &CancelToken::none(),
                    &mut TraceCollector::disabled(),
                )
                .unwrap();
                let mut baseline_arena = TupleArena::new();
                let baseline = run_tgen_baseline(&qg, &mut baseline_arena, &params).unwrap();
                match (&frontier.best, &baseline.best) {
                    (None, None) => {}
                    (Some(f), Some(b)) => {
                        assert_eq!(f.scaled, b.scaled, "∆={delta} α={alpha}");
                        assert_eq!(f.weight.to_bits(), b.weight.to_bits());
                        assert_eq!(f.length.to_bits(), b.length.to_bits());
                        assert_eq!(f.nodes(&arena), b.nodes(&baseline_arena));
                        assert_eq!(f.edges(&arena), b.edges(&baseline_arena));
                    }
                    (f, b) => panic!("∆={delta} α={alpha}: frontier {f:?} vs baseline {b:?}"),
                }
                assert!(
                    frontier.frontier_tuples <= baseline.frontier_tuples,
                    "∆={delta} α={alpha}: frontier {} > naive {}",
                    frontier.frontier_tuples,
                    baseline.frontier_tuples
                );
                assert_eq!(frontier.edges_processed, baseline.edges_processed);
                // Dominance can only shrink the combine work: the frontier
                // loop never materialises more tuples than the baseline.
                assert!(frontier.tuples_generated <= baseline.tuples_generated);
            }
        }
    }

    #[test]
    fn budget_pruning_skips_infeasible_pairs_without_materialising() {
        // A tight ∆ makes many combinations infeasible; the frontier loop
        // must count them as pruned pairs instead of allocating and rolling
        // back (the arena sees only feasible products).
        let (_n, qg) = figure2_query_graph(3.0, 0.15);
        let mut arena = TupleArena::new();
        let outcome = run_tgen(
            &qg,
            &mut arena,
            &TgenParams { alpha: 0.15 },
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap();
        assert!(outcome.pruned_pairs > 0, "tight ∆ must prune pairs");
        // Compare against the baseline: it materialises what we prune.
        let mut baseline_arena = TupleArena::new();
        let baseline =
            run_tgen_baseline(&qg, &mut baseline_arena, &TgenParams { alpha: 0.15 }).unwrap();
        assert!(baseline.tuples_generated > outcome.tuples_generated);
        let rollbacks =
            baseline_arena.stats().top_rollbacks + baseline_arena.stats().free_list_hits;
        assert!(
            rollbacks > 0,
            "the baseline pays for infeasible combinations with rollbacks"
        );
    }

    #[test]
    fn coarser_scaling_cannot_increase_accuracy() {
        let (_n, qg_fine) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        let fine = run_tgen(
            &qg_fine,
            &mut arena,
            &TgenParams { alpha: 0.15 },
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap()
        .best
        .unwrap();
        let (_n, qg_coarse) = figure2_query_graph(6.0, 3.0);
        arena.reset();
        let coarse = run_tgen(
            &qg_coarse,
            &mut arena,
            &TgenParams { alpha: 3.0 },
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap()
        .best
        .unwrap();
        assert!(coarse.weight <= fine.weight + 1e-9);
    }

    #[test]
    fn irrelevant_query_returns_none() {
        use lcmsr_geotext::collection::NodeWeights;
        use lcmsr_roadnet::subgraph::RegionView;
        let (network, _) = crate::query_graph::test_support::figure2();
        let view = RegionView::whole(&network);
        let qg = QueryGraph::build(&view, &NodeWeights::default(), 5.0, 400.0).unwrap();
        let mut arena = TupleArena::new();
        let outcome = run_tgen(
            &qg,
            &mut arena,
            &TgenParams::default(),
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap();
        assert!(outcome.best.is_none());
        assert!(outcome.top_tuples.is_empty());
        assert_eq!(outcome.frontier_tuples, 0);
    }

    #[test]
    fn huge_delta_collects_all_relevant_weight() {
        let (_n, qg) = figure2_query_graph(1000.0, 0.15);
        let mut arena = TupleArena::new();
        let outcome = run_tgen(
            &qg,
            &mut arena,
            &TgenParams { alpha: 0.15 },
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap();
        let best = outcome.best.unwrap();
        assert_eq!(best.node_count(), 6);
        assert!((best.weight - 1.7).abs() < 1e-9);
    }

    #[test]
    fn top_tuples_are_sorted_and_distinct() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        let outcome = run_tgen(
            &qg,
            &mut arena,
            &TgenParams { alpha: 0.15 },
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap();
        let top = &outcome.top_tuples;
        assert!(!top.is_empty());
        for w in top.windows(2) {
            assert!(
                w[0].scaled > w[1].scaled
                    || (w[0].scaled == w[1].scaled && w[0].length <= w[1].length + 1e-9)
            );
            assert!(!w[0].same_nodes(&w[1], &arena));
        }
        // The first entry is the overall best.
        assert_eq!(top[0].scaled, outcome.best.unwrap().scaled);
    }

    #[test]
    fn top_tuples_survive_a_scaling_that_floors_to_zero() {
        // With α far above |V_Q| every scaled weight is ⌊|V_Q|/α⌋ = 0 (Lemma 5);
        // the top list must still carry the relevant regions BestTracker sees,
        // so run_topk(…, 1) keeps agreeing with the single-query best.
        let (_n, qg) = figure2_query_graph(6.0, 100.0);
        assert_eq!(qg.scaled_weight_lower_bound(), 0);
        let mut arena = TupleArena::new();
        let outcome = run_tgen(
            &qg,
            &mut arena,
            &TgenParams { alpha: 100.0 },
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap();
        let best = outcome.best.expect("relevant nodes exist");
        assert!(best.weight > 0.0);
        let top = &outcome.top_tuples;
        assert!(!top.is_empty(), "scaled-0 tuples must not be discarded");
        assert!(top[0].same_nodes(&best, &arena));
        assert!((top[0].weight - best.weight).abs() < 1e-12);
    }

    #[test]
    fn disconnected_query_regions_are_fully_explored() {
        use lcmsr_geotext::collection::NodeWeights;
        use lcmsr_roadnet::builder::GraphBuilder;
        use lcmsr_roadnet::geo::Point;
        use lcmsr_roadnet::node::NodeId;
        use lcmsr_roadnet::subgraph::RegionView;

        // Two disjoint 2-node components; the right one is heavier.
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(1.0, 0.0));
        let d = b.add_node(Point::new(100.0, 0.0));
        let e = b.add_node(Point::new(101.0, 0.0));
        b.add_edge(a, c, 1.0).unwrap();
        b.add_edge(d, e, 1.0).unwrap();
        let network = b.build().unwrap();
        let mut weights = NodeWeights::default();
        weights.by_node.insert(NodeId(0), 0.1);
        weights.by_node.insert(NodeId(1), 0.1);
        weights.by_node.insert(NodeId(2), 0.5);
        weights.by_node.insert(NodeId(3), 0.5);
        let view = RegionView::whole(&network);
        let qg = QueryGraph::build(&view, &weights, 5.0, 0.1).unwrap();
        let mut arena = TupleArena::new();
        let outcome = run_tgen(
            &qg,
            &mut arena,
            &TgenParams { alpha: 0.1 },
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap();
        let best = outcome.best.unwrap();
        assert_eq!(
            best.nodes(&arena),
            &[2, 3],
            "the heavier component must win"
        );
        assert!((best.weight - 1.0).abs() < 1e-9);
        assert_eq!(outcome.edges_processed, 2);
    }
}
