//! Engine-owned response cache for interactive exploration sessions.
//!
//! A user panning and zooming a map re-issues near-identical queries in a
//! tight loop.  The [`ResponseCache`] short-circuits exact repeats: a
//! completed, non-partial [`crate::engine::QueryOutcome`] is stored under a
//! canonicalized request fingerprint and replayed bit-identically (the cached
//! [`Region`]s are clones of the cold run's) when the same request arrives
//! again while the dataset epoch is unchanged.
//!
//! # Canonical fingerprints
//!
//! The key covers everything that can change the answer under one dataset
//! epoch — the *effective* algorithm (option overrides folded in), the
//! keywords in their original order, the length budget `Q.∆`, the region of
//! interest `Q.Λ`, and the top-k setting — and nothing that cannot
//! (deadline, priority, tracing, cancellation).  The epoch rides on the
//! stored entry instead, so epoch bumps surface as stale lookups.  Floats are canonicalized through [`canon_f64`] before
//! their bit patterns enter the key, so `-0.0` and `0.0` fingerprints agree;
//! rectangle corner order is already normalised by
//! [`lcmsr_roadnet::geo::Rect::new`] at construction.  All raw
//! `f64::to_bits` keying in the engine and service crates is confined to this
//! module (enforced by the `cache_key` lint rule in `lcmsr-analysis`).
//!
//! # Bounds and invalidation
//!
//! The store is LRU-bounded by entry count and approximate byte footprint.
//! Entries carry the dataset epoch they were computed under; a lookup whose
//! entry predates the current epoch evicts it and reports
//! [`CacheLookup::Stale`], so bumping the epoch
//! ([`crate::engine::LcmsrEngine::bump_dataset_epoch`]) invalidates every
//! cached response without touching the store eagerly.

use crate::engine::QueryRequest;
use crate::region::Region;
use crate::stats::RunStats;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Canonicalizes a float for fingerprinting: `-0.0` maps to `0.0` so the two
/// (numerically equal) spellings share a cache key.  Every other value —
/// including NaN, which request admission rejects before keys are built — is
/// returned unchanged.
pub fn canon_f64(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else {
        x
    }
}

/// Appends the canonical bit pattern of `x` to a key buffer.
fn push_f64(key: &mut Vec<u8>, x: f64) {
    key.extend_from_slice(&canon_f64(x).to_bits().to_le_bytes());
}

/// Appends a length-prefixed byte string to a key buffer.
fn push_bytes(key: &mut Vec<u8>, bytes: &[u8]) {
    key.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    key.extend_from_slice(bytes);
}

/// Builds the canonical cache fingerprint of a request.
///
/// Two requests map to the same key exactly when — under one dataset epoch —
/// they are guaranteed to produce the same regions: same effective algorithm
/// and parameters, same keywords in the same order, same `∆`, same
/// (canonical) `Λ`, and the same top-k setting.  The epoch itself is carried
/// by the stored entry, not the key, so a lookup after an epoch bump finds
/// the outdated entry and reports it [`CacheLookup::Stale`] instead of
/// silently keying past it.
pub fn request_key(request: &QueryRequest<'_>) -> Vec<u8> {
    let mut key = Vec::with_capacity(96);
    match request.effective_algorithm() {
        crate::engine::Algorithm::App(p) => {
            key.push(0);
            push_f64(&mut key, p.alpha);
            push_f64(&mut key, p.beta);
            key.extend_from_slice(&(p.max_iterations as u64).to_le_bytes());
            key.push(match p.solver {
                crate::kmst::KMstSolverKind::Garg => 0,
                crate::kmst::KMstSolverKind::Density => 1,
            });
        }
        crate::engine::Algorithm::Tgen(p) => {
            key.push(1);
            push_f64(&mut key, p.alpha);
        }
        crate::engine::Algorithm::Greedy(p) => {
            key.push(2);
            push_f64(&mut key, p.mu);
        }
        crate::engine::Algorithm::Exact => key.push(3),
    }
    let query = request.query;
    key.extend_from_slice(&(query.keywords.len() as u64).to_le_bytes());
    for keyword in &query.keywords {
        push_bytes(&mut key, keyword.as_bytes());
    }
    push_f64(&mut key, query.delta);
    let rect = &query.region_of_interest;
    push_f64(&mut key, rect.min_x);
    push_f64(&mut key, rect.min_y);
    push_f64(&mut key, rect.max_x);
    push_f64(&mut key, rect.max_y);
    match request.options.k {
        Some(k) => {
            key.push(1);
            key.extend_from_slice(&(k as u64).to_le_bytes());
        }
        None => key.push(0),
    }
    key
}

/// Outcome of a cache probe.
#[derive(Debug)]
pub enum CacheLookup {
    /// The fingerprint is cached under the current epoch; the stored regions
    /// and (structural) stats are returned as clones of the cold run's
    /// (boxed: `RunStats` dwarfs the other variants).
    Hit(Vec<Region>, Box<RunStats>),
    /// The fingerprint was cached, but under an older dataset epoch; the
    /// entry has been evicted and the caller must recompute.
    Stale,
    /// The fingerprint is not cached.
    Miss,
}

/// One stored response.
#[derive(Debug)]
struct CacheEntry {
    epoch: u64,
    regions: Vec<Region>,
    stats: RunStats,
    cost: usize,
    last_used: u64,
}

/// Approximate heap footprint of a stored response, in bytes.
fn response_cost(key_len: usize, regions: &[Region]) -> usize {
    let region_bytes: usize = regions
        .iter()
        .map(|r| 64 + 8 * (r.nodes.len() + r.edges.len()))
        .sum();
    key_len + 160 + region_bytes
}

#[derive(Debug, Default)]
struct CacheStore {
    entries: BTreeMap<Vec<u8>, CacheEntry>,
    bytes: usize,
    tick: u64,
}

impl CacheStore {
    /// Evicts least-recently-used entries until both bounds hold.
    fn evict_to(&mut self, max_entries: usize, max_bytes: usize) {
        while self.entries.len() > max_entries || self.bytes > max_bytes {
            let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                return;
            };
            if let Some(evicted) = self.entries.remove(&victim) {
                self.bytes -= evicted.cost;
            }
        }
    }
}

/// A bounded LRU cache of completed query responses, keyed by canonical
/// request fingerprints (see [`request_key`]) and invalidated wholesale by
/// dataset-epoch bumps.
///
/// Only complete (non-partial) successful outcomes are stored, so a replay is
/// always bit-identical to the cold run it clones.  Hit/miss/stale counters
/// are monotonic over the cache's lifetime.
#[derive(Debug)]
pub struct ResponseCache {
    store: Mutex<CacheStore>,
    max_entries: usize,
    max_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    stale: AtomicU64,
}

impl Default for ResponseCache {
    fn default() -> Self {
        ResponseCache::with_limits(
            ResponseCache::DEFAULT_MAX_ENTRIES,
            ResponseCache::DEFAULT_MAX_BYTES,
        )
    }
}

impl ResponseCache {
    /// Default entry bound: plenty for one user's pan/zoom session while
    /// keeping the LRU scan trivially cheap.
    pub const DEFAULT_MAX_ENTRIES: usize = 256;
    /// Default approximate byte bound (64 MiB).
    pub const DEFAULT_MAX_BYTES: usize = 64 << 20;

    /// Creates a cache with the default bounds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a cache bounded to `max_entries` entries and roughly
    /// `max_bytes` bytes of stored responses.
    pub fn with_limits(max_entries: usize, max_bytes: usize) -> Self {
        ResponseCache {
            store: Mutex::new(CacheStore::default()),
            max_entries: max_entries.max(1),
            max_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale: AtomicU64::new(0),
        }
    }

    /// Probes the cache for `key` under the current `epoch`.
    pub fn lookup(&self, key: &[u8], epoch: u64) -> CacheLookup {
        let mut guard = self.store.lock().expect("response cache poisoned");
        let store = &mut *guard;
        store.tick += 1;
        let tick = store.tick;
        match store.entries.get_mut(key) {
            Some(entry) if entry.epoch == epoch => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                CacheLookup::Hit(entry.regions.clone(), Box::new(entry.stats.clone()))
            }
            Some(_) => {
                if let Some(evicted) = store.entries.remove(key) {
                    store.bytes -= evicted.cost;
                }
                self.stale.fetch_add(1, Ordering::Relaxed);
                CacheLookup::Stale
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                CacheLookup::Miss
            }
        }
    }

    /// Stores a completed response under `key`, evicting LRU entries to stay
    /// within bounds.  Callers must only pass complete, non-partial outcomes.
    pub fn insert(&self, key: Vec<u8>, epoch: u64, regions: &[Region], stats: &RunStats) {
        let cost = response_cost(key.len(), regions);
        let mut store = self.store.lock().expect("response cache poisoned");
        store.tick += 1;
        let tick = store.tick;
        if let Some(prev) = store.entries.insert(
            key,
            CacheEntry {
                epoch,
                regions: regions.to_vec(),
                stats: stats.clone(),
                cost,
                last_used: tick,
            },
        ) {
            store.bytes -= prev.cost;
        }
        store.bytes += cost;
        store.evict_to(self.max_entries, self.max_bytes);
    }

    /// Number of cached responses.
    pub fn len(&self) -> usize {
        self.store
            .lock()
            .expect("response cache poisoned")
            .entries
            .len()
    }

    /// Whether the cache holds no responses.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes held by cached responses.
    pub fn bytes(&self) -> usize {
        self.store.lock().expect("response cache poisoned").bytes
    }

    /// Drops every cached response (counters are preserved).
    pub fn clear(&self) {
        let mut store = self.store.lock().expect("response cache poisoned");
        store.entries.clear();
        store.bytes = 0;
    }

    /// Lifetime count of cache hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime count of cache misses (fingerprint absent).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lifetime count of stale lookups (fingerprint present under an older
    /// dataset epoch; the entry was evicted).
    pub fn stale(&self) -> u64 {
        self.stale.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Algorithm, QueryRequest};
    use crate::greedy::GreedyParams;
    use crate::query::LcmsrQuery;
    use crate::tgen::TgenParams;
    use lcmsr_roadnet::geo::Rect;
    use lcmsr_roadnet::node::NodeId;

    fn region(weight: f64, nodes: usize) -> Region {
        Region {
            nodes: (0..nodes).map(|i| NodeId(i as u32)).collect(),
            edges: Vec::new(),
            length: 100.0,
            weight,
            scaled_weight: 1,
        }
    }

    #[test]
    fn canon_f64_folds_negative_zero_only() {
        assert_eq!(canon_f64(-0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(canon_f64(0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(canon_f64(-1.5).to_bits(), (-1.5f64).to_bits());
        assert_eq!(canon_f64(3.25).to_bits(), 3.25f64.to_bits());
        assert!(canon_f64(f64::NAN).is_nan());
    }

    #[test]
    fn keys_canonicalize_signed_zero_and_swapped_corners() {
        let plus = LcmsrQuery::new(["cafe"], 100.0, Rect::new(0.0, 0.0, 10.0, 10.0)).unwrap();
        let minus = LcmsrQuery::new(["cafe"], 100.0, Rect::new(-0.0, -0.0, 10.0, 10.0)).unwrap();
        // Rect::new normalises corner order at construction; a swapped-corner
        // rect built there lands on the same canonical key.
        let swapped = LcmsrQuery::new(["cafe"], 100.0, Rect::new(10.0, 10.0, -0.0, 0.0)).unwrap();
        let alg = Algorithm::Tgen(TgenParams { alpha: 1.0 });
        let base = request_key(&QueryRequest::new(&plus, alg.clone()));
        assert_eq!(base, request_key(&QueryRequest::new(&minus, alg.clone())));
        assert_eq!(base, request_key(&QueryRequest::new(&swapped, alg.clone())));
        // …while a genuinely different rect does not.
        let other = LcmsrQuery::new(["cafe"], 100.0, Rect::new(0.0, 0.0, 11.0, 10.0)).unwrap();
        assert_ne!(base, request_key(&QueryRequest::new(&other, alg)));
    }

    #[test]
    fn keys_separate_everything_that_changes_the_answer() {
        let rect = Rect::new(0.0, 0.0, 10.0, 10.0);
        let q = LcmsrQuery::new(["cafe", "bar"], 100.0, rect).unwrap();
        let alg = Algorithm::Tgen(TgenParams { alpha: 1.0 });
        let base = request_key(&QueryRequest::new(&q, alg.clone()));
        // Keyword order is semantic for scoring input canonicalization — the
        // key preserves it verbatim.
        let reordered = LcmsrQuery::new(["bar", "cafe"], 100.0, rect).unwrap();
        assert_ne!(
            base,
            request_key(&QueryRequest::new(&reordered, alg.clone()))
        );
        // Keyword boundaries must not alias ("ca"+"febar" vs "cafe"+"bar").
        let shifted = LcmsrQuery::new(["ca", "febar"], 100.0, rect).unwrap();
        assert_ne!(base, request_key(&QueryRequest::new(&shifted, alg.clone())));
        // Budget ∆.
        let tighter = LcmsrQuery::new(["cafe", "bar"], 90.0, rect).unwrap();
        assert_ne!(base, request_key(&QueryRequest::new(&tighter, alg.clone())));
        // Algorithm and parameters (including option overrides).
        assert_ne!(
            base,
            request_key(&QueryRequest::new(
                &q,
                Algorithm::Greedy(GreedyParams::default())
            ))
        );
        assert_ne!(
            base,
            request_key(&QueryRequest::new(&q, alg.clone()).alpha(0.5))
        );
        // Top-k setting.
        assert_ne!(
            base,
            request_key(&QueryRequest::new(&q, alg.clone()).top_k(3))
        );
        // Deadline, priority, and tracing are execution detail, not identity.
        assert_eq!(
            base,
            request_key(
                &QueryRequest::new(&q, alg)
                    .deadline_in(std::time::Duration::from_secs(1))
                    .priority(crate::engine::Priority::Batch)
                    .trace(true)
            )
        );
    }

    #[test]
    fn lookup_hits_misses_and_goes_stale_across_epochs() {
        let cache = ResponseCache::new();
        let key = vec![1u8, 2, 3];
        assert!(matches!(cache.lookup(&key, 1), CacheLookup::Miss));
        cache.insert(key.clone(), 1, &[region(1.0, 3)], &RunStats::new("TGEN"));
        let CacheLookup::Hit(regions, stats) = cache.lookup(&key, 1) else {
            panic!("expected a hit");
        };
        assert_eq!(regions.len(), 1);
        assert_eq!(stats.algorithm, "TGEN");
        // Same key under a newer epoch: the entry is stale and evicted.
        assert!(matches!(cache.lookup(&key, 2), CacheLookup::Stale));
        assert!(matches!(cache.lookup(&key, 2), CacheLookup::Miss));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.stale(), 1);
    }

    #[test]
    fn lru_eviction_respects_entry_and_byte_bounds() {
        let cache = ResponseCache::with_limits(2, usize::MAX);
        let stats = RunStats::new("TGEN");
        cache.insert(vec![1], 1, &[region(1.0, 1)], &stats);
        cache.insert(vec![2], 1, &[region(2.0, 1)], &stats);
        // Touch key 1 so key 2 becomes the LRU victim.
        assert!(matches!(cache.lookup(&[1], 1), CacheLookup::Hit(..)));
        cache.insert(vec![3], 1, &[region(3.0, 1)], &stats);
        assert_eq!(cache.len(), 2);
        assert!(matches!(cache.lookup(&[1], 1), CacheLookup::Hit(..)));
        assert!(matches!(cache.lookup(&[2], 1), CacheLookup::Miss));
        assert!(matches!(cache.lookup(&[3], 1), CacheLookup::Hit(..)));

        // The byte bound evicts too: each stored region costs well over 64
        // bytes, so a tiny budget keeps at most one resident.
        let tiny = ResponseCache::with_limits(usize::MAX, 300);
        tiny.insert(vec![1], 1, &[region(1.0, 4)], &stats);
        assert_eq!(tiny.len(), 1);
        tiny.insert(vec![2], 1, &[region(2.0, 4)], &stats);
        assert!(tiny.len() <= 1, "byte bound must evict");
        assert!(tiny.bytes() <= 300);
        // Re-inserting an existing key replaces, never double-counts.
        tiny.insert(vec![2], 1, &[region(2.5, 4)], &stats);
        let bytes = tiny.bytes();
        tiny.insert(vec![2], 1, &[region(2.5, 4)], &stats);
        assert_eq!(tiny.bytes(), bytes);
        tiny.clear();
        assert!(tiny.is_empty());
        assert_eq!(tiny.bytes(), 0);
    }
}
