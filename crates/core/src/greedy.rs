//! The Greedy algorithm (Section 6.1).
//!
//! Greedy seeds the explored region `R_C` with the node of largest weight in
//! `Q.Λ` and repeatedly adds the frontier node with the best ranking score
//!
//! ```text
//! ρ(v_i) = µ · (1 − τ(v_i, v_j)/τ_max) + (1 − µ) · σ_{v_i}/σ_max
//! ```
//!
//! where `v_j ∈ R_C` is the node `v_i` connects to, `τ_max` is the maximum
//! road-segment length in `Q.Λ` and `σ_max` the maximum node weight.  The
//! expansion stops when no remaining candidate fits within `Q.∆`.
//!
//! Note on the formula: the paper's text prints `σ_{v_j}` (the already-included
//! endpoint) in the second term; since that value is identical for every
//! candidate reached through the same tree node it cannot rank candidates, so —
//! consistent with the prose ("taking into account both the node weight and the
//! road segment length" of the *candidate*) — we use the candidate's weight
//! `σ_{v_i}`.  DESIGN.md records this reading.

use crate::arena::TupleArena;
use crate::cancel::CancelToken;
use crate::error::{LcmsrError, Result};
use crate::query_graph::QueryGraph;
use crate::region::RegionTuple;
use crate::trace::TraceCollector;
use serde::{Deserialize, Serialize};

/// Tuning parameters of Greedy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GreedyParams {
    /// Trade-off µ between road-segment length (µ) and node weight (1 − µ).
    /// The paper tunes µ = 0.2 on NY and µ = 0.4 on USANW.
    pub mu: f64,
}

impl Default for GreedyParams {
    fn default() -> Self {
        GreedyParams { mu: 0.2 }
    }
}

impl GreedyParams {
    /// Validates the parameters.
    pub fn validate(&self) -> Result<()> {
        if !(self.mu.is_finite() && (0.0..=1.0).contains(&self.mu)) {
            return Err(LcmsrError::InvalidParameter {
                name: "mu",
                value: self.mu,
                expected: "a value in [0, 1]",
            });
        }
        Ok(())
    }
}

/// Outcome of one Greedy run.
#[derive(Debug, Clone)]
pub struct GreedyOutcome {
    /// The region grown greedily, if any node is relevant.
    pub best: Option<RegionTuple>,
    /// Number of expansion steps performed.
    pub steps: u64,
    /// Whether the expansion stopped early at a cancellation poll point;
    /// `best` is then the (always feasible) region grown so far.
    pub interrupted: bool,
}

/// Runs Greedy on a prepared query graph, seeding at the maximum-weight node.
///
/// `ctl` is polled once per expansion step; when it fires the expansion stops
/// and the region grown so far (always feasible) is returned with
/// `interrupted: true`.  Each expansion round records a `greedy_round` span
/// into `tracer` (one predicted branch when disabled).
pub fn run_greedy(
    graph: &QueryGraph,
    arena: &mut TupleArena,
    params: &GreedyParams,
    ctl: &CancelToken,
    tracer: &mut TraceCollector,
) -> Result<GreedyOutcome> {
    run_greedy_excluding(graph, arena, params, &[], ctl, tracer)
}

/// Runs Greedy but seeds at the maximum-weight node *not* contained in
/// `excluded` (used by the top-k extension, Section 6.2).  Nodes in `excluded`
/// may still be absorbed during expansion; only the seed choice is restricted.
pub fn run_greedy_excluding(
    graph: &QueryGraph,
    arena: &mut TupleArena,
    params: &GreedyParams,
    excluded: &[u32],
    ctl: &CancelToken,
    tracer: &mut TraceCollector,
) -> Result<GreedyOutcome> {
    params.validate()?;
    let delta = graph.delta();
    let sigma_max = graph.sigma_max();
    if sigma_max <= 0.0 {
        return Ok(GreedyOutcome {
            best: None,
            steps: 0,
            interrupted: false,
        });
    }
    let excluded_set: std::collections::BTreeSet<u32> = excluded.iter().copied().collect();
    // Seed: the largest-weight node outside the excluded set.
    let seed = graph
        .node_indices()
        .filter(|v| !excluded_set.contains(v))
        .filter(|&v| graph.weight(v) > 0.0)
        .max_by(|&a, &b| {
            graph
                .weight(a)
                .partial_cmp(&graph.weight(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    let Some(seed) = seed else {
        return Ok(GreedyOutcome {
            best: None,
            steps: 0,
            interrupted: false,
        });
    };
    let tau_max = graph.max_edge_length().max(f64::MIN_POSITIVE);
    let n = graph.node_count();
    let mut in_region = vec![false; n];
    in_region[seed as usize] = true;
    let mut region =
        RegionTuple::singleton(arena, seed, graph.weight(seed), graph.scaled_weight(seed));
    let mut steps = 0u64;
    let mut interrupted = false;

    loop {
        // Deadline poll, once per expansion step: the region grown so far is
        // always feasible, so it is a valid anytime answer.
        if ctl.is_cancelled() {
            interrupted = true;
            break;
        }
        let span = tracer.start("greedy_round");
        // Gather frontier candidates: nodes adjacent to the region, with the
        // shortest connecting edge for each.
        let mut best_candidate: Option<(u32, u32, f64, f64)> = None; // (node, edge, edge_len, score)
        for &v in region.nodes(arena) {
            for &(u, e) in graph.neighbors(v) {
                if in_region[u as usize] {
                    continue;
                }
                let edge_len = graph.edge(e).length;
                if region.length + edge_len > delta + 1e-9 {
                    continue; // adding this node would violate Q.∆
                }
                let score = params.mu * (1.0 - edge_len / tau_max)
                    + (1.0 - params.mu) * graph.weight(u) / sigma_max;
                let better = match &best_candidate {
                    None => true,
                    Some((_, _, best_len, best_score)) => {
                        score > *best_score + 1e-12
                            || ((score - best_score).abs() <= 1e-12 && edge_len < *best_len)
                    }
                };
                if better {
                    best_candidate = Some((u, e, edge_len, score));
                }
            }
        }
        let Some((u, e, edge_len, _)) = best_candidate else {
            tracer.end(span);
            break; // no candidate fits within Q.∆
        };
        let grown = region.extend(
            u,
            graph.weight(u),
            graph.scaled_weight(u),
            e,
            edge_len,
            arena,
        );
        // The superseded region is purely local to this loop — recycle it.
        region.free(arena);
        region = grown;
        in_region[u as usize] = true;
        steps += 1;
        tracer.end_with(span, &[("node", u64::from(u))]);
        if steps as usize > n {
            break; // safety net; cannot add more nodes than exist
        }
    }

    Ok(GreedyOutcome {
        best: Some(region),
        steps,
        interrupted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cancel::CancelToken;
    use crate::query_graph::test_support::figure2_query_graph;

    #[test]
    fn params_validation() {
        assert!(GreedyParams::default().validate().is_ok());
        assert!(GreedyParams { mu: -0.1 }.validate().is_err());
        assert!(GreedyParams { mu: 1.5 }.validate().is_err());
        assert!(GreedyParams { mu: f64::NAN }.validate().is_err());
        assert!(GreedyParams { mu: 0.0 }.validate().is_ok());
        assert!(GreedyParams { mu: 1.0 }.validate().is_ok());
    }

    #[test]
    fn grows_a_feasible_region_from_the_heaviest_node() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        let outcome = run_greedy(
            &qg,
            &mut arena,
            &GreedyParams::default(),
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap();
        let region = outcome.best.unwrap();
        assert!(region.length <= 6.0 + 1e-9);
        assert!(region.weight > 0.0);
        // The seed (a 0.4-weight node) must be in the region.
        assert!(region
            .nodes(&arena)
            .iter()
            .any(|&v| qg.weight(v) >= 0.4 - 1e-12));
        assert!(outcome.steps >= 1);
    }

    #[test]
    fn respects_delta_across_settings() {
        for delta in [0.5, 1.0, 3.0, 6.0, 10.0, 50.0] {
            for mu in [0.0, 0.2, 0.5, 0.8, 1.0] {
                let (_n, qg) = figure2_query_graph(delta, 0.15);
                let mut arena = TupleArena::new();
                let outcome = run_greedy(
                    &qg,
                    &mut arena,
                    &GreedyParams { mu },
                    &CancelToken::none(),
                    &mut TraceCollector::disabled(),
                )
                .unwrap();
                let region = outcome.best.unwrap();
                assert!(
                    region.length <= delta + 1e-9,
                    "∆={delta}, µ={mu}: length {}",
                    region.length
                );
            }
        }
    }

    #[test]
    fn tiny_delta_returns_the_seed_alone() {
        let (_n, qg) = figure2_query_graph(0.1, 0.15);
        let mut arena = TupleArena::new();
        let outcome = run_greedy(
            &qg,
            &mut arena,
            &GreedyParams::default(),
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap();
        let region = outcome.best.unwrap();
        assert_eq!(region.node_count(), 1);
        assert_eq!(outcome.steps, 0);
        assert!((region.weight - 0.4).abs() < 1e-12);
    }

    #[test]
    fn huge_delta_eventually_covers_the_component() {
        let (_n, qg) = figure2_query_graph(1000.0, 0.15);
        let mut arena = TupleArena::new();
        let outcome = run_greedy(
            &qg,
            &mut arena,
            &GreedyParams::default(),
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap();
        let region = outcome.best.unwrap();
        assert_eq!(region.node_count(), 6);
        assert!((region.weight - 1.7).abs() < 1e-9);
    }

    #[test]
    fn greedy_is_usually_worse_than_or_equal_to_the_optimum() {
        // For ∆ = 6 the optimum is 1.1; Greedy must not exceed it (it returns a
        // feasible region) and typically falls short.
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        let outcome = run_greedy(
            &qg,
            &mut arena,
            &GreedyParams::default(),
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap();
        assert!(outcome.best.unwrap().weight <= 1.1 + 1e-9);
    }

    #[test]
    fn irrelevant_query_returns_none() {
        use lcmsr_geotext::collection::NodeWeights;
        use lcmsr_roadnet::subgraph::RegionView;
        let (network, _) = crate::query_graph::test_support::figure2();
        let view = RegionView::whole(&network);
        let qg = QueryGraph::build(&view, &NodeWeights::default(), 5.0, 0.5).unwrap();
        let mut arena = TupleArena::new();
        let outcome = run_greedy(
            &qg,
            &mut arena,
            &GreedyParams::default(),
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap();
        assert!(outcome.best.is_none());
    }

    #[test]
    fn excluding_the_best_seed_changes_the_region() {
        let (_n, qg) = figure2_query_graph(2.0, 0.15);
        let mut arena = TupleArena::new();
        let first = run_greedy(
            &qg,
            &mut arena,
            &GreedyParams::default(),
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap()
        .best
        .unwrap();
        let first_nodes: Vec<u32> = first.nodes(&arena).to_vec();
        let second = run_greedy_excluding(
            &qg,
            &mut arena,
            &GreedyParams::default(),
            &first_nodes,
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap()
        .best
        .unwrap();
        // The second region is seeded elsewhere.
        assert!(!first.same_nodes(&second, &arena));
    }

    #[test]
    fn mu_extremes_still_produce_valid_regions() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        let weight_only = run_greedy(
            &qg,
            &mut arena,
            &GreedyParams { mu: 0.0 },
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap()
        .best
        .unwrap();
        let length_only = run_greedy(
            &qg,
            &mut arena,
            &GreedyParams { mu: 1.0 },
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap()
        .best
        .unwrap();
        assert!(weight_only.length <= 6.0 + 1e-9);
        assert!(length_only.length <= 6.0 + 1e-9);
    }
}
