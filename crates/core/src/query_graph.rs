//! The query graph: the subgraph induced by `Q.Λ` with per-node query weights
//! and their integer scalings.
//!
//! All LCMSR algorithms operate on this structure.  Nodes and edges are
//! re-indexed into dense *local* ids (`u32`) so per-node state can live in flat
//! vectors even when the underlying network has millions of nodes; results are
//! translated back to global [`NodeId`]/[`EdgeId`]s when a [`crate::region::Region`]
//! is produced.
//!
//! The weight scaling of Section 4.1 is built in: `θ = α·σ_max/|V_Q|` and
//! `σ̂_v = ⌊σ_v/θ⌋` (Example 2 / Theorem 2).

use crate::error::{LcmsrError, Result};
use lcmsr_geotext::collection::NodeWeights;
use lcmsr_roadnet::edge::EdgeId;
use lcmsr_roadnet::epoch::EpochMap;
use lcmsr_roadnet::geo::Point;
use lcmsr_roadnet::node::NodeId;
use lcmsr_roadnet::subgraph::RegionView;

/// A local edge of the query graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QgEdge {
    /// First endpoint (local node id).
    pub a: u32,
    /// Second endpoint (local node id).
    pub b: u32,
    /// Road-segment length in metres.
    pub length: f64,
    /// The corresponding global edge id.
    pub global: EdgeId,
}

impl QgEdge {
    /// Given one endpoint, returns the other.
    #[inline]
    pub fn other(&self, from: u32) -> u32 {
        if from == self.a {
            self.b
        } else {
            self.a
        }
    }
}

/// The query graph: `Q.Λ`-restricted topology plus per-node weights `σ_v` and
/// scaled weights `σ̂_v`.
///
/// Adjacency is stored as a flat CSR (compressed sparse row) structure —
/// `adj_offsets[v]..adj_offsets[v+1]` indexes the `(neighbour, edge)` pairs of
/// node `v` inside one contiguous `adj_entries` array — so neighbour scans are
/// cache-friendly and the whole graph is a handful of flat allocations that a
/// [`QueryGraphBuilder`] can recycle across queries.
#[derive(Debug, Clone)]
pub struct QueryGraph {
    node_ids: Vec<NodeId>,
    node_points: Vec<Point>,
    edges: Vec<QgEdge>,
    /// CSR row offsets into `adj_entries`; length `node_count() + 1`.
    adj_offsets: Vec<u32>,
    /// CSR payload: `(neighbour, edge)` pairs, grouped by source node.
    adj_entries: Vec<(u32, u32)>,
    weights: Vec<f64>,
    scaled: Vec<u64>,
    theta: f64,
    alpha: f64,
    delta: f64,
    sigma_max: f64,
}

impl QueryGraph {
    /// An empty shell whose vectors seed a builder's first build.  Not a
    /// valid graph on its own (the CSR invariant `adj_offsets.len() ==
    /// node_count() + 1` does not hold), which is why this is private:
    /// [`QueryGraphBuilder::build`] populates every field before returning.
    fn empty() -> Self {
        QueryGraph {
            node_ids: Vec::new(),
            node_points: Vec::new(),
            edges: Vec::new(),
            adj_offsets: Vec::new(),
            adj_entries: Vec::new(),
            weights: Vec::new(),
            scaled: Vec::new(),
            theta: 0.0,
            alpha: 0.0,
            delta: 0.0,
            sigma_max: 0.0,
        }
    }

    /// Builds the query graph from a region view, the per-node query weights,
    /// the length constraint `delta` (metres) and the scaling parameter `alpha`.
    ///
    /// `alpha` must be positive; the paper uses values below 1 for APP and
    /// values in the hundreds for TGEN.
    ///
    /// This is the one-shot entry point; batched callers should hold a
    /// [`QueryGraphBuilder`] and let it recycle allocations across queries.
    pub fn build(
        view: &RegionView<'_>,
        node_weights: &NodeWeights,
        delta: f64,
        alpha: f64,
    ) -> Result<Self> {
        QueryGraphBuilder::new().build(view, node_weights, delta, alpha)
    }

    /// Recomputes the integer scaling with a new `alpha` (θ = α·σ_max/|V_Q|,
    /// σ̂_v = ⌊σ_v/θ⌋).  Used because APP and TGEN employ very different α values.
    pub fn rescale(&mut self, alpha: f64) -> Result<()> {
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(LcmsrError::InvalidParameter {
                name: "alpha",
                value: alpha,
                expected: "a positive finite number",
            });
        }
        self.alpha = alpha;
        self.theta = if self.sigma_max > 0.0 {
            alpha * self.sigma_max / self.node_count() as f64
        } else {
            0.0
        };
        let theta = self.theta;
        self.scaled.clear();
        self.scaled.extend(self.weights.iter().map(|&w| {
            if theta > 0.0 {
                // A tiny epsilon guards against 0.4/0.2 = 1.999999… style
                // floating-point artefacts at exact multiples of θ.
                (w / theta + 1e-9).floor() as u64
            } else {
                0
            }
        }));
        Ok(())
    }

    /// Number of nodes in the query region (`|V_Q|`).
    pub fn node_count(&self) -> usize {
        self.node_ids.len()
    }

    /// Number of edges in the query region (`|E_Q|`).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The length constraint `Q.∆` in metres.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The scaling parameter α currently in effect.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The scaling factor θ = α·σ_max/|V_Q| (0 when no node is relevant).
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The maximum original node weight σ_max in the query region.
    pub fn sigma_max(&self) -> f64 {
        self.sigma_max
    }

    /// The original weight σ_v of a local node.
    #[inline]
    pub fn weight(&self, node: u32) -> f64 {
        self.weights[node as usize]
    }

    /// The scaled weight σ̂_v of a local node.
    #[inline]
    pub fn scaled_weight(&self, node: u32) -> u64 {
        self.scaled[node as usize]
    }

    /// The global id of a local node.
    #[inline]
    pub fn global_node(&self, node: u32) -> NodeId {
        self.node_ids[node as usize]
    }

    /// The local id of a global node, if it lies in the query region.
    pub fn local_node(&self, node: NodeId) -> Option<u32> {
        // Linear probe avoided: node_ids is sorted (RegionView yields sorted ids).
        self.node_ids.binary_search(&node).ok().map(|i| i as u32)
    }

    /// Location of a local node.
    #[inline]
    pub fn point(&self, node: u32) -> Point {
        self.node_points[node as usize]
    }

    /// The local edges.
    pub fn edges(&self) -> &[QgEdge] {
        &self.edges
    }

    /// A local edge by id.
    #[inline]
    pub fn edge(&self, edge: u32) -> &QgEdge {
        &self.edges[edge as usize]
    }

    /// Neighbours of a local node as `(neighbour, edge)` pairs (a slice of the
    /// flat CSR adjacency array).
    #[inline]
    pub fn neighbors(&self, node: u32) -> &[(u32, u32)] {
        let start = self.adj_offsets[node as usize] as usize;
        let end = self.adj_offsets[node as usize + 1] as usize;
        &self.adj_entries[start..end]
    }

    /// Degree of a local node.
    #[inline]
    pub fn degree(&self, node: u32) -> usize {
        (self.adj_offsets[node as usize + 1] - self.adj_offsets[node as usize]) as usize
    }

    /// Iterator over all local node ids.
    pub fn node_indices(&self) -> impl Iterator<Item = u32> {
        0..self.node_ids.len() as u32
    }

    /// Local ids of nodes with a positive weight (the "relevant" nodes).
    pub fn relevant_nodes(&self) -> Vec<u32> {
        self.node_indices()
            .filter(|&v| self.weights[v as usize] > 0.0)
            .collect()
    }

    /// Sum of all node weights in the query region (upper bound on any region's weight).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Sum of all scaled node weights in the query region.
    pub fn total_scaled_weight(&self) -> u64 {
        self.scaled.iter().sum()
    }

    /// The node with the largest original weight, or `None` when no node is relevant.
    pub fn max_weight_node(&self) -> Option<u32> {
        if self.sigma_max <= 0.0 {
            return None;
        }
        self.node_indices().max_by(|&a, &b| {
            self.weights[a as usize]
                .partial_cmp(&self.weights[b as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// The maximum edge length in the query region (`τ_max`), or 0 for an edgeless region.
    pub fn max_edge_length(&self) -> f64 {
        self.edges.iter().map(|e| e.length).fold(0.0, f64::max)
    }

    /// The minimum edge length (`d_min`), or 0 for an edgeless region.
    pub fn min_edge_length(&self) -> f64 {
        self.edges
            .iter()
            .map(|e| e.length)
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
            .pipe_finite()
    }

    /// Lower bound `⌊|V_Q|/α⌋` of Lemma 5 (equal to the maximum scaled node weight).
    pub fn scaled_weight_lower_bound(&self) -> u64 {
        (self.node_count() as f64 / self.alpha).floor() as u64
    }

    /// Upper bound `|V_Q|·⌊|V_Q|/α⌋` of Lemma 5.
    pub fn scaled_weight_upper_bound(&self) -> u64 {
        self.node_count() as u64 * self.scaled_weight_lower_bound()
    }
}

/// Reusable workspace for building [`QueryGraph`]s.
///
/// Two things make a fresh `QueryGraph::build` allocation-heavy: the global→
/// local node-id map (formerly a per-query `HashMap`) and the dozen vectors
/// backing the graph itself.  The builder keeps both across calls:
///
/// * an [`EpochMap`] sized to the touched node-id band of `Q.Λ` maps global
///   node ids to dense local ids in O(1) per node with O(1) clearing,
/// * a pooled `QueryGraph` donates its spent vectors to the next build via
///   [`QueryGraphBuilder::recycle`].
///
/// Repeated `build`/`recycle` cycles over the same network therefore allocate
/// near-zero once the buffers have grown to the workload's high-water mark.
/// Each worker thread of a batched engine owns one builder.
#[derive(Debug, Clone, Default)]
pub struct QueryGraphBuilder {
    /// Global node index → dense local id for the current build.
    local: EpochMap,
    /// CSR fill cursors (reused between builds).
    cursor: Vec<u32>,
    /// Recycled graph whose allocations seed the next build.
    pool: Option<QueryGraph>,
}

impl QueryGraphBuilder {
    /// Creates an empty builder; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a spent graph's allocations to the pool for the next build.
    pub fn recycle(&mut self, graph: QueryGraph) {
        self.pool = Some(graph);
    }

    /// Current size of the global→local scratch table, in entries — after a
    /// build, the width of the node-id band it touched.  Scale benches use
    /// this to evidence that prepare memory is bounded by the query rect's
    /// cell cover rather than the network size.
    pub fn local_table_len(&self) -> usize {
        self.local.table_len()
    }

    /// Builds a query graph (see [`QueryGraph::build`]), reusing this
    /// builder's scratch space and any pooled allocations.
    pub fn build(
        &mut self,
        view: &RegionView<'_>,
        node_weights: &NodeWeights,
        delta: f64,
        alpha: f64,
    ) -> Result<QueryGraph> {
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(LcmsrError::InvalidParameter {
                name: "alpha",
                value: alpha,
                expected: "a positive finite number",
            });
        }
        if !(delta.is_finite() && delta > 0.0) {
            return Err(LcmsrError::InvalidDelta { delta });
        }
        if view.node_count() == 0 {
            return Err(LcmsrError::EmptyQueryRegion);
        }
        let graph = view.graph();
        let n = view.node_count();

        let mut qg = self.pool.take().unwrap_or_else(QueryGraph::empty);
        qg.node_ids.clear();
        qg.node_points.clear();
        qg.edges.clear();
        qg.adj_offsets.clear();
        qg.adj_entries.clear();
        qg.weights.clear();
        qg.scaled.clear();

        qg.node_ids.extend_from_slice(view.nodes());
        qg.node_points
            .extend(qg.node_ids.iter().map(|&id| graph.point(id)));
        qg.weights.extend(
            qg.node_ids
                .iter()
                .map(|&id| node_weights.weight(id).max(0.0)),
        );
        qg.sigma_max = qg.weights.iter().fold(0.0f64, |a, &b| a.max(b));
        qg.delta = delta;

        // Global → dense local ids via the O(1)-clear, lazily-sized scratch
        // table, rebased at the smallest member id so it spans the touched
        // node-id *band* of `Q.Λ`'s cell cover — not the id-space prefix, and
        // never the network.
        self.local
            .begin_at(qg.node_ids.first().map_or(0, |id| id.index()));
        for (i, &id) in qg.node_ids.iter().enumerate() {
            self.local.insert(id.index(), i as u32);
        }

        // Local edges plus CSR degree counts in one pass.
        qg.adj_offsets.resize(n + 1, 0);
        qg.edges.reserve(view.edge_count());
        for &eid in view.edges() {
            let e = graph.edge(eid);
            let a = self
                .local
                .get(e.a.index())
                .expect("view edge endpoint inside the view");
            let b = self
                .local
                .get(e.b.index())
                .expect("view edge endpoint inside the view");
            qg.edges.push(QgEdge {
                a,
                b,
                length: e.length,
                global: eid,
            });
            qg.adj_offsets[a as usize + 1] += 1;
            qg.adj_offsets[b as usize + 1] += 1;
        }
        for i in 1..=n {
            qg.adj_offsets[i] += qg.adj_offsets[i - 1];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&qg.adj_offsets[..n]);
        qg.adj_entries.resize(2 * qg.edges.len(), (0, 0));
        for (le, edge) in qg.edges.iter().enumerate() {
            let ca = &mut self.cursor[edge.a as usize];
            qg.adj_entries[*ca as usize] = (edge.b, le as u32);
            *ca += 1;
            let cb = &mut self.cursor[edge.b as usize];
            qg.adj_entries[*cb as usize] = (edge.a, le as u32);
            *cb += 1;
        }

        qg.rescale(alpha)?;
        Ok(qg)
    }
}

/// Small helper converting +∞ (no edges) to 0 for `min_edge_length`.
trait PipeFinite {
    fn pipe_finite(self) -> f64;
}

impl PipeFinite for f64 {
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared fixtures: the Figure-2 graph of the paper with its node weights.

    use super::*;
    use lcmsr_geotext::collection::NodeWeights;
    use lcmsr_roadnet::builder::GraphBuilder;
    use lcmsr_roadnet::graph::RoadNetwork;

    /// Builds the example graph of Figure 2 (6 nodes, 8 edges).  The figure
    /// prints the weight multiset {0.2, 0.2, 0.2, 0.3, 0.4, 0.4}; we assign
    /// v1=0.2, v2=0.2, v3=0.4, v4=0.4, v5=0.3, v6=0.2, the assignment under
    /// which the text's worked example holds: with Q.∆ = 6 the optimal region
    /// is R.V = {v2, v4, v5, v6} with weight 1.1 and length 5.9, and no other
    /// feasible region reaches weight 1.1.
    pub fn figure2() -> (RoadNetwork, NodeWeights) {
        let mut b = GraphBuilder::new();
        let v1 = b.add_node(Point::new(0.0, 2.0));
        let v2 = b.add_node(Point::new(2.0, 3.0));
        let v3 = b.add_node(Point::new(4.0, 3.0));
        let v4 = b.add_node(Point::new(5.0, 1.0));
        let v5 = b.add_node(Point::new(3.0, 0.0));
        let v6 = b.add_node(Point::new(1.5, 1.0));
        b.add_edge(v1, v2, 1.0).unwrap();
        b.add_edge(v2, v3, 3.1).unwrap();
        b.add_edge(v3, v4, 5.0).unwrap();
        b.add_edge(v4, v5, 2.8).unwrap();
        b.add_edge(v5, v6, 1.5).unwrap();
        b.add_edge(v6, v1, 3.2).unwrap();
        b.add_edge(v2, v6, 1.6).unwrap();
        b.add_edge(v3, v5, 3.4).unwrap();
        let network = b.build().unwrap();
        let mut weights = NodeWeights::default();
        let values = [0.2, 0.2, 0.4, 0.4, 0.3, 0.2];
        for (i, &w) in values.iter().enumerate() {
            weights.by_node.insert(NodeId(i as u32), w);
        }
        (network, weights)
    }

    /// Query graph over the whole Figure-2 graph with the given ∆ and α.
    pub fn figure2_query_graph(delta: f64, alpha: f64) -> (RoadNetwork, QueryGraph) {
        let (network, weights) = figure2();
        let view = RegionView::whole(&network);
        let qg = QueryGraph::build(&view, &weights, delta, alpha).unwrap();
        (network, qg)
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;

    #[test]
    fn builds_local_topology() {
        let (_network, qg) = figure2_query_graph(6.0, 0.15);
        assert_eq!(qg.node_count(), 6);
        assert_eq!(qg.edge_count(), 8);
        assert_eq!(qg.delta(), 6.0);
        // v2 (local 1) connects to v1, v3, v6.
        assert_eq!(qg.neighbors(1).len(), 3);
        assert_eq!(qg.global_node(0), NodeId(0));
        assert_eq!(qg.local_node(NodeId(3)), Some(3));
        assert_eq!(qg.local_node(NodeId(99)), None);
        assert_eq!(qg.max_edge_length(), 5.0);
        assert_eq!(qg.min_edge_length(), 1.0);
    }

    #[test]
    fn scaling_matches_example_2() {
        // Example 2: α = 0.15, whole graph → θ = 0.15·0.4/6 = 0.01, i.e. weights
        // are scaled 100×.
        let (_network, qg) = figure2_query_graph(6.0, 0.15);
        assert!((qg.theta() - 0.01).abs() < 1e-12);
        assert_eq!(qg.scaled_weight(1), 20); // v2: 0.2 → 20
        assert_eq!(qg.scaled_weight(2), 40); // v3: 0.4 → 40
        assert_eq!(qg.scaled_weight(4), 30); // v5: 0.3 → 30
        assert!((qg.sigma_max() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn rescale_changes_granularity() {
        let (_network, mut qg) = figure2_query_graph(6.0, 0.15);
        let fine = qg.scaled_weight(2);
        qg.rescale(3.0).unwrap();
        let coarse = qg.scaled_weight(2);
        assert!(coarse < fine);
        assert_eq!(qg.alpha(), 3.0);
        // θ = 3·0.4/6 = 0.2 → v3 (0.4) scales to 2, v5 (0.3) to 1, v2 (0.2) to 1.
        assert_eq!(coarse, 2);
        assert_eq!(qg.scaled_weight(4), 1);
        assert_eq!(qg.scaled_weight(1), 1);
        assert!(qg.rescale(0.0).is_err());
        assert!(qg.rescale(f64::NAN).is_err());
    }

    #[test]
    fn scaled_weights_never_exceed_originals_over_theta() {
        let (_network, qg) = figure2_query_graph(6.0, 0.5);
        for v in qg.node_indices() {
            let sigma = qg.weight(v);
            let scaled = qg.scaled_weight(v) as f64;
            // σ_v − θ < θ·σ̂_v ≤ σ_v (the inequality used in Theorem 2); the
            // tolerance absorbs the tiny flooring epsilon.
            assert!(qg.theta() * scaled <= sigma + 1e-6);
            assert!(sigma - qg.theta() < qg.theta() * scaled + 1e-6);
        }
    }

    #[test]
    fn lemma5_bounds() {
        let (_network, qg) = figure2_query_graph(6.0, 0.15);
        // ⌊|V_Q|/α⌋ = ⌊6/0.15⌋ = 40, which equals the max scaled node weight.
        assert_eq!(qg.scaled_weight_lower_bound(), 40);
        assert_eq!(qg.scaled_weight_upper_bound(), 240);
        let max_scaled = qg
            .node_indices()
            .map(|v| qg.scaled_weight(v))
            .max()
            .unwrap();
        assert_eq!(max_scaled, qg.scaled_weight_lower_bound());
    }

    #[test]
    fn helper_accessors() {
        let (_network, qg) = figure2_query_graph(6.0, 0.15);
        assert_eq!(qg.relevant_nodes().len(), 6);
        assert!((qg.total_weight() - 1.7).abs() < 1e-12);
        assert!(qg.total_scaled_weight() >= 160);
        // Max-weight node is v3 or v4 (both 0.4).
        let m = qg.max_weight_node().unwrap();
        assert!(m == 2 || m == 3);
        let e = qg.edge(0);
        assert_eq!(e.other(e.a), e.b);
        assert_eq!(e.other(e.b), e.a);
    }

    #[test]
    fn zero_weight_region_has_zero_theta() {
        let (network, _) = figure2();
        let view = RegionView::whole(&network);
        let empty_weights = NodeWeights::default();
        let qg = QueryGraph::build(&view, &empty_weights, 5.0, 0.5).unwrap();
        assert_eq!(qg.theta(), 0.0);
        assert_eq!(qg.sigma_max(), 0.0);
        assert!(qg.max_weight_node().is_none());
        assert!(qg.node_indices().all(|v| qg.scaled_weight(v) == 0));
        assert!(qg.relevant_nodes().is_empty());
    }

    #[test]
    fn csr_adjacency_matches_edge_list() {
        let (_network, qg) = figure2_query_graph(6.0, 0.15);
        for v in qg.node_indices() {
            assert_eq!(qg.neighbors(v).len(), qg.degree(v));
            for &(u, e) in qg.neighbors(v) {
                let edge = qg.edge(e);
                assert!(edge.a == v || edge.b == v);
                assert_eq!(edge.other(v), u);
            }
        }
        // Handshake: total CSR entries = 2·|E_Q|.
        let total: usize = qg.node_indices().map(|v| qg.degree(v)).sum();
        assert_eq!(total, 2 * qg.edge_count());
    }

    #[test]
    fn builder_reuse_produces_identical_graphs() {
        let (network, weights) = figure2();
        let view = RegionView::whole(&network);
        let mut builder = QueryGraphBuilder::new();
        for (delta, alpha) in [(6.0, 0.15), (2.0, 0.5), (10.0, 3.0), (6.0, 0.15)] {
            let fresh = QueryGraph::build(&view, &weights, delta, alpha).unwrap();
            let reused = builder.build(&view, &weights, delta, alpha).unwrap();
            assert_eq!(fresh.node_count(), reused.node_count());
            assert_eq!(fresh.edge_count(), reused.edge_count());
            for v in fresh.node_indices() {
                assert_eq!(fresh.neighbors(v), reused.neighbors(v));
                assert_eq!(fresh.weight(v), reused.weight(v));
                assert_eq!(fresh.scaled_weight(v), reused.scaled_weight(v));
                assert_eq!(fresh.global_node(v), reused.global_node(v));
            }
            assert_eq!(fresh.edges(), reused.edges());
            assert_eq!(fresh.theta(), reused.theta());
            builder.recycle(reused);
        }
    }

    #[test]
    fn builder_rejects_invalid_input_like_the_one_shot_path() {
        let (network, weights) = figure2();
        let view = RegionView::whole(&network);
        let mut builder = QueryGraphBuilder::new();
        assert!(builder.build(&view, &weights, 5.0, 0.0).is_err());
        assert!(builder.build(&view, &weights, -1.0, 0.5).is_err());
        // The builder still works after rejecting bad parameters.
        assert!(builder.build(&view, &weights, 5.0, 0.5).is_ok());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let (network, weights) = figure2();
        let view = RegionView::whole(&network);
        assert!(matches!(
            QueryGraph::build(&view, &weights, 5.0, 0.0),
            Err(LcmsrError::InvalidParameter { name: "alpha", .. })
        ));
        assert!(matches!(
            QueryGraph::build(&view, &weights, -1.0, 0.5),
            Err(LcmsrError::InvalidDelta { .. })
        ));
        let empty_view =
            RegionView::new(&network, lcmsr_roadnet::geo::Rect::new(1e6, 1e6, 2e6, 2e6));
        assert!(matches!(
            QueryGraph::build(&empty_view, &weights, 5.0, 0.5),
            Err(LcmsrError::EmptyQueryRegion)
        ));
    }
}
