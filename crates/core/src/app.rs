//! The APP approximation algorithm (Section 4.2, Algorithm 1).
//!
//! APP answers an LCMSR query in three steps:
//!
//! 1. scale node weights into integers (`θ = α·σ_max/|V_Q|`, built into
//!    [`QueryGraph`]),
//! 2. binary-search a node-weight quota `X` against a 3-approximate
//!    node-weighted k-MST oracle: find `X` such that the tree returned for `X`
//!    has length ≤ 3·Q.∆ while the tree for `(1+β)·X` is longer than 3·Q.∆
//!    (Lemmas 4 and 5, Function `binarySearch`),
//! 3. run the `findOptTree` dynamic program on the candidate tree to extract
//!    the best feasible region (Section 4.2.3).
//!
//! The overall approximation ratio is `(5 + ε)` (Theorem 4).

use crate::arena::TupleArena;
use crate::cancel::CancelToken;
use crate::error::{LcmsrError, Result};
use crate::kmst::{make_solver, KMstSolver, KMstSolverKind};
use crate::opt_tree::{find_opt_tree, OptTreeResult};
use crate::query_graph::QueryGraph;
use crate::region::RegionTuple;
use crate::trace::TraceCollector;
use serde::{Deserialize, Serialize};

/// Tuning parameters of APP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppParams {
    /// Scaling parameter α (paper default 0.5 on NY, 0.1 on USANW).
    pub alpha: f64,
    /// Binary-search parameter β (paper default 0.1).
    pub beta: f64,
    /// Which k-MST oracle to use.
    #[serde(skip)]
    pub solver: KMstSolverKind,
    /// Safety cap on binary-search iterations.
    pub max_iterations: usize,
}

impl Default for AppParams {
    fn default() -> Self {
        AppParams {
            alpha: 0.5,
            beta: 0.1,
            solver: KMstSolverKind::Garg,
            max_iterations: 64,
        }
    }
}

impl AppParams {
    /// Validates the parameters.
    pub fn validate(&self) -> Result<()> {
        if !(self.alpha.is_finite() && self.alpha > 0.0) {
            return Err(LcmsrError::InvalidParameter {
                name: "alpha",
                value: self.alpha,
                expected: "a positive finite number",
            });
        }
        if !(self.beta.is_finite() && self.beta > 0.0) {
            return Err(LcmsrError::InvalidParameter {
                name: "beta",
                value: self.beta,
                expected: "a positive finite number",
            });
        }
        if self.max_iterations == 0 {
            return Err(LcmsrError::InvalidParameter {
                name: "max_iterations",
                value: 0.0,
                expected: "at least 1",
            });
        }
        Ok(())
    }
}

/// One step of the quota binary search — the rows of Table 1 in the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinarySearchStep {
    /// Step counter (1-based).
    pub step: usize,
    /// Lower bound `L` before the step.
    pub lower: u64,
    /// Upper bound `U` before the step.
    pub upper: u64,
    /// The probed quota `X`.
    pub x: u64,
    /// Length of the tree returned for quota `X` (`None` if the quota is unattainable).
    pub tc_length: Option<f64>,
    /// The probed quota `(1+β)·X` (0 when not probed in this step).
    pub x_beta: u64,
    /// Length of the tree returned for quota `(1+β)·X` (`None` if not probed or unattainable).
    pub tprime_length: Option<f64>,
}

/// Outcome of one APP run.
#[derive(Debug, Clone)]
pub struct AppOutcome {
    /// The best feasible region found (local tuple), if any node is relevant.
    pub best: Option<RegionTuple>,
    /// The candidate tree produced by the binary search.
    pub candidate_tree: Option<RegionTuple>,
    /// The binary-search trace (Table 1).
    pub trace: Vec<BinarySearchStep>,
    /// Number of k-MST oracle invocations.
    pub kmst_calls: u64,
    /// Tuples materialised by `findOptTree` (0 when the tree was already feasible).
    pub dp_tuples: u64,
    /// Combine pairs `findOptTree` skipped via the frontier's length-budget
    /// `partition_point` (0 when the tree was already feasible).
    pub dp_pruned_pairs: u64,
    /// Tuples resident across the candidate tree's final arrays.
    pub frontier_tuples: u64,
    /// Largest single tuple array of the candidate tree.
    pub frontier_peak: u64,
    /// Array entries evicted by dominating inserts during the DP.
    pub dominance_evictions: u64,
    /// The tuple arrays of the candidate tree (present only when `findOptTree`
    /// ran; used by the top-k extension).
    pub tree_arrays: Option<OptTreeResult>,
    /// Whether any stage (binary search or DP) stopped early on cancellation.
    /// `best` is then the best feasible incumbent found before the interrupt.
    pub interrupted: bool,
}

/// Runs the quota binary search of Function `binarySearch` (Section 4.2.2),
/// returning the candidate tree and the trace.
///
/// Following Lemma 4, tree lengths are compared against `3·Q.∆` because the
/// oracle is a 3-approximation.
pub fn binary_search(
    graph: &QueryGraph,
    arena: &mut TupleArena,
    solver: &mut dyn KMstSolver,
    beta: f64,
    max_iterations: usize,
    ctl: &CancelToken,
    tracer: &mut TraceCollector,
) -> (Option<RegionTuple>, Vec<BinarySearchStep>, bool) {
    let mut trace = Vec::new();
    let three_delta = 3.0 * graph.delta();
    let mut lower = graph.scaled_weight_lower_bound().max(1);
    let mut upper = graph.scaled_weight_upper_bound().max(lower + 1);
    // The best (largest-quota) tree observed whose length stays within 3·Q.∆.
    let mut best_feasible: Option<RegionTuple> = None;

    for step in 1..=max_iterations {
        if upper <= lower {
            break;
        }
        // Poll once per probe; the oracle also polls internally, so an expiry
        // mid-solve surfaces here at the latest on the next probe.
        if ctl.is_cancelled() {
            return (best_feasible, trace, true);
        }
        let x = lower + (upper - lower) / 2;
        let span = tracer.start("bisect_step");
        tracer.attr(span, "x", x);
        let tc = solver.solve(graph, arena, x, ctl, tracer);
        let tc_length = tc.as_ref().map(|t| t.length);
        let mut entry = BinarySearchStep {
            step,
            lower,
            upper,
            x,
            tc_length,
            x_beta: 0,
            tprime_length: None,
        };
        match tc {
            None => {
                // Quota unattainable: treat as "too large".
                upper = x;
                trace.push(entry);
                tracer.end(span);
            }
            Some(tree) if tree.length > three_delta => {
                upper = x;
                trace.push(entry);
                tracer.end(span);
            }
            Some(tree) => {
                // Feasible under 3∆ — remember it, then probe (1+β)·X.
                if best_feasible
                    .as_ref()
                    .map_or(true, |b| tree.scaled > b.scaled)
                {
                    best_feasible = Some(tree);
                }
                let x_beta = (((x as f64) * (1.0 + beta)).ceil() as u64).max(x + 1);
                entry.x_beta = x_beta;
                let tprime = solver.solve(graph, arena, x_beta, ctl, tracer);
                entry.tprime_length = tprime.as_ref().map(|t| t.length);
                let stop = match &tprime {
                    None => true,
                    Some(t) => t.length > three_delta,
                };
                trace.push(entry);
                tracer.end_with(span, &[("x_beta", x_beta)]);
                if stop {
                    return (Some(tree), trace, false);
                }
                if x == lower {
                    // Cannot tighten further with integer quotas.
                    break;
                }
                lower = x;
            }
        }
        if upper.saturating_sub(lower) <= 1 {
            break;
        }
    }
    (best_feasible, trace, false)
}

/// Runs APP on a prepared query graph.
///
/// The graph must have been built (or rescaled) with the same `alpha` as
/// `params.alpha`; [`crate::engine::LcmsrEngine`] takes care of this.
pub fn run_app(
    graph: &QueryGraph,
    arena: &mut TupleArena,
    params: &AppParams,
    ctl: &CancelToken,
    tracer: &mut TraceCollector,
) -> Result<AppOutcome> {
    params.validate()?;
    if graph.sigma_max() <= 0.0 {
        // No relevant object in Q.Λ — the query has no answer.
        return Ok(AppOutcome {
            best: None,
            candidate_tree: None,
            trace: Vec::new(),
            kmst_calls: 0,
            dp_tuples: 0,
            dp_pruned_pairs: 0,
            frontier_tuples: 0,
            frontier_peak: 0,
            dominance_evictions: 0,
            tree_arrays: None,
            interrupted: false,
        });
    }
    let mut solver = make_solver(params.solver);
    let (candidate, trace, search_interrupted) = binary_search(
        graph,
        arena,
        solver.as_mut(),
        params.beta,
        params.max_iterations,
        ctl,
        tracer,
    );
    let kmst_calls = solver.invocations();
    let Some(candidate) = candidate else {
        // Fall back to the best single node (always feasible).
        let v = graph
            .node_indices()
            .max_by(|&a, &b| {
                graph
                    .weight(a)
                    .partial_cmp(&graph.weight(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty graph");
        let best = RegionTuple::singleton(arena, v, graph.weight(v), graph.scaled_weight(v));
        return Ok(AppOutcome {
            best: Some(best),
            candidate_tree: None,
            trace,
            kmst_calls,
            dp_tuples: 0,
            dp_pruned_pairs: 0,
            frontier_tuples: 0,
            frontier_peak: 0,
            dominance_evictions: 0,
            tree_arrays: None,
            interrupted: search_interrupted,
        });
    };
    // Algorithm 1, line 3: when the candidate tree already satisfies Q.∆ it is
    // returned directly; otherwise findOptTree extracts the best sub-region.
    if candidate.length < graph.delta() {
        return Ok(AppOutcome {
            best: Some(candidate),
            candidate_tree: Some(candidate),
            trace,
            kmst_calls,
            dp_tuples: 0,
            dp_pruned_pairs: 0,
            frontier_tuples: 0,
            frontier_peak: 0,
            dominance_evictions: 0,
            tree_arrays: None,
            interrupted: search_interrupted,
        });
    }
    let span = tracer.start("find_opt_tree");
    let dp = find_opt_tree(graph, arena, &candidate, ctl, tracer);
    tracer.end_with(
        span,
        &[("tuples", dp.tuples_generated), ("pruned", dp.pruned_pairs)],
    );
    let (frontier_tuples, frontier_peak, dominance_evictions) = dp.frontier_stats();
    Ok(AppOutcome {
        best: dp.best,
        candidate_tree: Some(candidate),
        trace,
        kmst_calls,
        dp_tuples: dp.tuples_generated,
        dp_pruned_pairs: dp.pruned_pairs,
        frontier_tuples,
        frontier_peak,
        dominance_evictions,
        interrupted: search_interrupted || dp.interrupted,
        tree_arrays: Some(dp),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_graph::test_support::figure2_query_graph;

    #[test]
    fn params_validation() {
        assert!(AppParams::default().validate().is_ok());
        assert!(AppParams {
            alpha: 0.0,
            ..AppParams::default()
        }
        .validate()
        .is_err());
        assert!(AppParams {
            beta: -0.1,
            ..AppParams::default()
        }
        .validate()
        .is_err());
        assert!(AppParams {
            max_iterations: 0,
            ..AppParams::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn app_finds_a_near_optimal_region_on_figure2() {
        // Exact optimum for ∆ = 6 is weight 1.1 ({v2,v4,v5,v6}).
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let mut arena = TupleArena::new();
        let outcome = run_app(
            &qg,
            &mut arena,
            &AppParams::default(),
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap();
        let best = outcome.best.expect("a region must be found");
        assert!(best.length <= 6.0 + 1e-9, "length {}", best.length);
        // Theorem 4 guarantees ≥ (1-α)/(5+5β)·opt ≈ 0.17; in practice APP does
        // far better on this instance — require at least half the optimum.
        assert!(best.weight >= 0.55, "weight {}", best.weight);
        assert!(outcome.kmst_calls > 0);
        assert!(!outcome.trace.is_empty());
    }

    #[test]
    fn app_respects_the_length_constraint_for_various_deltas() {
        for delta in [1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 20.0] {
            let (_n, qg) = figure2_query_graph(delta, 0.5);
            let mut arena = TupleArena::new();
            let outcome = run_app(
                &qg,
                &mut arena,
                &AppParams::default(),
                &CancelToken::none(),
                &mut TraceCollector::disabled(),
            )
            .unwrap();
            let best = outcome.best.expect("region expected");
            assert!(
                best.length <= delta + 1e-9,
                "delta {delta}: produced length {}",
                best.length
            );
            assert!(best.weight > 0.0);
        }
    }

    #[test]
    fn app_with_huge_delta_collects_everything() {
        let (_n, qg) = figure2_query_graph(1000.0, 0.15);
        let mut arena = TupleArena::new();
        let outcome = run_app(
            &qg,
            &mut arena,
            &AppParams::default(),
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap();
        let best = outcome.best.unwrap();
        assert_eq!(best.node_count(), 6);
        assert!((best.weight - 1.7).abs() < 1e-9);
    }

    #[test]
    fn app_on_irrelevant_query_returns_none() {
        use lcmsr_geotext::collection::NodeWeights;
        use lcmsr_roadnet::subgraph::RegionView;
        let (network, _) = crate::query_graph::test_support::figure2();
        let view = RegionView::whole(&network);
        let qg = QueryGraph::build(&view, &NodeWeights::default(), 5.0, 0.5).unwrap();
        let mut arena = TupleArena::new();
        let outcome = run_app(
            &qg,
            &mut arena,
            &AppParams::default(),
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap();
        assert!(outcome.best.is_none());
        assert_eq!(outcome.kmst_calls, 0);
    }

    #[test]
    fn trace_is_consistent_with_lemma_4() {
        let (_n, qg) = figure2_query_graph(2.0, 0.15);
        let params = AppParams::default();
        let mut arena = TupleArena::new();
        let outcome = run_app(
            &qg,
            &mut arena,
            &params,
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap();
        let three_delta = 3.0 * qg.delta();
        for step in &outcome.trace {
            assert!(step.lower <= step.x && step.x <= step.upper);
            if step.x_beta > 0 {
                assert!(step.x_beta > step.x);
                // (1+β)X was only probed because TC satisfied the 3∆ bound.
                assert!(step.tc_length.unwrap() <= three_delta + 1e-9);
            }
        }
        // The last probed step (if it stopped the search) has T'C longer than 3∆
        // or unattainable.
        if let Some(last) = outcome.trace.last() {
            if last.x_beta > 0 {
                if let Some(l) = last.tprime_length {
                    assert!(l > three_delta - 1e-9 || outcome.candidate_tree.is_some());
                }
            }
        }
    }

    #[test]
    fn density_solver_variant_also_works() {
        let (_n, qg) = figure2_query_graph(6.0, 0.15);
        let params = AppParams {
            solver: KMstSolverKind::Density,
            ..AppParams::default()
        };
        let mut arena = TupleArena::new();
        let outcome = run_app(
            &qg,
            &mut arena,
            &params,
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        )
        .unwrap();
        let best = outcome.best.unwrap();
        assert!(best.length <= 6.0 + 1e-9);
        assert!(best.weight >= 0.5);
    }

    #[test]
    fn binary_search_alone_returns_a_tree_within_3_delta_or_none() {
        let (_n, qg) = figure2_query_graph(3.0, 0.15);
        let mut arena = TupleArena::new();
        let mut solver = crate::kmst::garg::GargKMst::new();
        let (tree, trace, interrupted) = binary_search(
            &qg,
            &mut arena,
            &mut solver,
            0.1,
            64,
            &CancelToken::none(),
            &mut TraceCollector::disabled(),
        );
        assert!(!trace.is_empty());
        assert!(!interrupted);
        if let Some(t) = tree {
            assert!(t.length <= 3.0 * qg.delta() + 1e-9);
        }
    }
}
