//! Inverted lists over geo-textual objects.
//!
//! Following Section 3 of the paper, each grid cell maintains an inverted
//! index with (a) a vocabulary of the distinct words appearing in the cell's
//! objects and (b) a postings list per word holding `(object, wto(t))` pairs,
//! where `wto(t) = w_{o.ψ,t} / W_{o.ψ}` is the precomputed normalised term
//! weight.  The postings lists are stored in a paged [`BPlusTree`] keyed by
//! term id, standing in for the paper's disk-based B⁺-tree.

use crate::btree::BPlusTree;
use crate::object::{GeoTextObject, ObjectId};
use crate::vocab::{TermId, Vocabulary};
use crate::vsm::{object_norm, tf_weight};
use serde::{Deserialize, Serialize};

/// One posting: an object containing the term, with its precomputed term weight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Posting {
    /// The object whose description contains the term.
    pub object: ObjectId,
    /// Precomputed normalised term weight `wto(t)` of the term in that object.
    pub weight: f64,
}

/// A postings list: all objects containing one term, in insertion order.
pub type PostingsList = Vec<Posting>;

/// An inverted index over a set of objects (typically the objects of one grid cell).
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    /// Term → postings, stored in a paged B⁺-tree (simulated disk index).
    postings: BPlusTree<TermId, PostingsList>,
    /// Number of objects indexed.
    object_count: usize,
}

impl Default for InvertedIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl InvertedIndex {
    /// Creates an empty inverted index.
    pub fn new() -> Self {
        InvertedIndex {
            postings: BPlusTree::new(),
            object_count: 0,
        }
    }

    /// Number of indexed objects.
    pub fn object_count(&self) -> usize {
        self.object_count
    }

    /// Number of distinct terms with a postings list.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }

    /// Total pages read from the simulated disk index so far.
    pub fn pages_read(&self) -> u64 {
        self.postings.pages_read()
    }

    /// Indexes one object: computes `wto(t)` for each of its terms and appends
    /// a posting to each term's list.  Terms are interned into `vocabulary`.
    ///
    /// Objects with an empty description are ignored (they can never match a
    /// query), mirroring the paper's assumption that indexed objects carry text.
    pub fn add_object(&mut self, vocabulary: &mut Vocabulary, object: &GeoTextObject) {
        if object.is_empty() {
            return;
        }
        let norm = object_norm(object);
        debug_assert!(norm > 0.0);
        for (term, &tf) in &object.terms {
            let id = vocabulary.intern(term);
            let weight = tf_weight(tf) / norm;
            let mut list = self.postings.get(&id).cloned().unwrap_or_default();
            list.push(Posting {
                object: object.id,
                weight,
            });
            self.postings.insert(id, list);
        }
        self.object_count += 1;
    }

    /// Indexes one object whose terms were **already interned** into
    /// `vocabulary` (e.g. by a prior [`Vocabulary::register_document`] pass),
    /// so the vocabulary is only read.  This is the building block of the
    /// sharded parallel grid build: many shards index disjoint object sets
    /// concurrently against one shared vocabulary.
    ///
    /// Produces postings bit-identical to [`InvertedIndex::add_object`]: term
    /// ids were assigned by the registration pass, and weights depend only on
    /// the object itself.  A term missing from the vocabulary (a contract
    /// breach) is skipped — unobservable, since queries resolve terms through
    /// the same vocabulary and can never reference an unregistered term.
    pub fn add_object_preinterned(&mut self, vocabulary: &Vocabulary, object: &GeoTextObject) {
        if object.is_empty() {
            return;
        }
        let norm = object_norm(object);
        debug_assert!(norm > 0.0);
        for (term, &tf) in &object.terms {
            let Some(id) = vocabulary.lookup(term) else {
                debug_assert!(false, "term {term:?} was not pre-interned");
                continue;
            };
            let weight = tf_weight(tf) / norm;
            let mut list = self.postings.get(&id).cloned().unwrap_or_default();
            list.push(Posting {
                object: object.id,
                weight,
            });
            self.postings.insert(id, list);
        }
        self.object_count += 1;
    }

    /// Returns the postings list of a term, if any object contains it.
    pub fn postings(&self, term: TermId) -> Option<&PostingsList> {
        self.postings.get(&term)
    }

    /// Returns `(object, wto)` pairs for every object containing at least one of
    /// the given terms, with one entry per (object, term) occurrence.
    pub fn postings_for_terms<'a>(
        &'a self,
        terms: &'a [TermId],
    ) -> impl Iterator<Item = (TermId, Posting)> + 'a {
        terms.iter().flat_map(move |&t| {
            self.postings(t)
                .map(|list| list.iter().map(move |p| (t, *p)).collect::<Vec<_>>())
                .unwrap_or_default()
        })
    }

    /// Accumulates, per object, the Equation-2 partial sums
    /// `Σ_{t ∈ Q.ψ ∩ o.ψ} w_{Q.ψ,t} · wto(t)` for the supplied query terms and
    /// their IDF weights.  The caller divides by the query norm `W_{Q.ψ}`.
    pub fn accumulate_scores(
        &self,
        query_terms: &[(TermId, f64)],
    ) -> std::collections::BTreeMap<ObjectId, f64> {
        let mut acc = std::collections::BTreeMap::new();
        for &(term, idf) in query_terms {
            if idf == 0.0 {
                continue;
            }
            if let Some(list) = self.postings(term) {
                for p in list {
                    *acc.entry(p.object).or_insert(0.0) += idf * p.weight;
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vsm::QueryVector;
    use lcmsr_roadnet::geo::Point;

    fn sample() -> (Vocabulary, InvertedIndex, Vec<GeoTextObject>) {
        let mut vocab = Vocabulary::new();
        let objects = vec![
            GeoTextObject::from_keywords(0u64, Point::new(0.0, 0.0), ["restaurant", "italian"]),
            GeoTextObject::from_keywords(
                1u64,
                Point::new(1.0, 0.0),
                ["restaurant", "pizza", "pizza"],
            ),
            GeoTextObject::from_keywords(2u64, Point::new(2.0, 0.0), ["cafe", "coffee"]),
            GeoTextObject::from_keywords(3u64, Point::new(3.0, 0.0), Vec::<String>::new()),
        ];
        // Register documents first so IDF reflects the corpus, then index.
        for o in &objects {
            if !o.is_empty() {
                vocab.register_document(o.terms.keys().map(String::as_str));
            }
        }
        let mut idx = InvertedIndex::new();
        for o in &objects {
            idx.add_object(&mut vocab, o);
        }
        (vocab, idx, objects)
    }

    #[test]
    fn indexes_objects_and_terms() {
        let (vocab, idx, _) = sample();
        assert_eq!(idx.object_count(), 3); // the empty object is skipped
        assert_eq!(idx.term_count(), 5);
        let restaurant = vocab.lookup("restaurant").unwrap();
        let list = idx.postings(restaurant).unwrap();
        assert_eq!(list.len(), 2);
        assert!(list.iter().all(|p| p.weight > 0.0 && p.weight <= 1.0));
        let missing = vocab.lookup("museum");
        assert!(missing.is_none());
    }

    #[test]
    fn postings_weights_match_vsm() {
        let (vocab, idx, objects) = sample();
        let pizza = vocab.lookup("pizza").unwrap();
        let list = idx.postings(pizza).unwrap();
        assert_eq!(list.len(), 1);
        let expected = crate::vsm::object_term_weight(&objects[1], "pizza");
        assert!((list[0].weight - expected).abs() < 1e-12);
        assert_eq!(list[0].object, ObjectId(1));
    }

    #[test]
    fn accumulate_scores_matches_direct_scoring() {
        let (vocab, idx, objects) = sample();
        let q = QueryVector::new(&vocab, &["restaurant", "pizza"]);
        let query_terms: Vec<(TermId, f64)> = q
            .terms
            .iter()
            .filter_map(|t| t.id.map(|id| (id, t.weight)))
            .collect();
        let acc = idx.accumulate_scores(&query_terms);
        for o in objects.iter().filter(|o| !o.is_empty()) {
            let direct = q.score_object(o);
            let via_index = acc.get(&o.id).copied().unwrap_or(0.0) / q.norm;
            assert!(
                (direct - via_index).abs() < 1e-12,
                "{:?}: direct {direct} vs index {via_index}",
                o.id
            );
        }
        // The cafe object does not match and must be absent from the accumulator.
        assert!(!acc.contains_key(&ObjectId(2)));
    }

    #[test]
    fn postings_for_terms_flattens_lists() {
        let (vocab, idx, _) = sample();
        let terms = vec![
            vocab.lookup("restaurant").unwrap(),
            vocab.lookup("cafe").unwrap(),
        ];
        let pairs: Vec<(TermId, Posting)> = idx.postings_for_terms(&terms).collect();
        assert_eq!(pairs.len(), 3); // 2 restaurant + 1 cafe
    }

    #[test]
    fn zero_idf_terms_are_skipped() {
        let (mut vocab, idx, _) = sample();
        let ghost = vocab.intern("ghost");
        let acc = idx.accumulate_scores(&[(ghost, 0.0)]);
        assert!(acc.is_empty());
    }

    #[test]
    fn preinterned_indexing_matches_the_interning_path() {
        let (vocab, idx, objects) = sample();
        let mut pre = InvertedIndex::new();
        for o in &objects {
            pre.add_object_preinterned(&vocab, o);
        }
        assert_eq!(pre.object_count(), idx.object_count());
        assert_eq!(pre.term_count(), idx.term_count());
        for term in ["restaurant", "italian", "pizza", "cafe", "coffee"] {
            let id = vocab.lookup(term).unwrap();
            let a = idx.postings(id).unwrap();
            let b = pre.postings(id).unwrap();
            assert_eq!(a.len(), b.len(), "{term}");
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.object, y.object);
                assert_eq!(x.weight.to_bits(), y.weight.to_bits());
            }
        }
    }

    #[test]
    fn io_counter_reflects_lookups() {
        let (vocab, idx, _) = sample();
        let before = idx.pages_read();
        let _ = idx.postings(vocab.lookup("cafe").unwrap());
        assert!(idx.pages_read() > before);
    }
}
